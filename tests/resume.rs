//! Crash-safe resumable sweeps end to end: an interrupted journaled sweep
//! resumed with `resume: true` must produce final JSON byte-identical to
//! an uninterrupted run without re-executing journaled cells; a hung cell
//! must be cancelled at its wall-clock deadline as a structured row while
//! its siblings complete; and a damaged journal must degrade gracefully
//! (corrupt records skipped, fingerprint mismatches starting fresh).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use virec::core::CoreConfig;
use virec::sim::experiment::{CellData, CellOutcome, Executor, ExperimentSpec};
use virec::sim::journal::journal_path;
use virec::sim::runner::RunOptions;
use virec::sim::{builder, JournalConfig, SimError};
use virec::workloads::{kernels, Layout};

/// A fresh per-test journal directory under the system temp dir.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("virec_resume_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp journal dir");
    dir
}

/// The kill-and-resume grid: a deterministically panicking cell, a custom
/// metrics cell, and two real simulations. `runs` counts executions of the
/// panicking cell so the resume can prove it replayed the journaled row
/// instead of re-running it.
fn mixed_spec(name: &str, runs: &Arc<AtomicUsize>) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(name);
    let runs = Arc::clone(runs);
    spec.custom("boom", move |_| {
        runs.fetch_add(1, Ordering::SeqCst);
        panic!("deterministic explosion");
    });
    spec.custom("metrics", |_| {
        Ok(CellData::metrics([("alpha", 1.5), ("beta", -2.0)]))
    });
    let build = builder(kernels::spatter::gather, 256, Layout::for_core(0));
    let opts = RunOptions::default();
    spec.single("virec", build.clone(), CoreConfig::virec(4, 32), &opts);
    spec.single("banked", build, CoreConfig::banked(4), &opts);
    spec
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = temp_dir("identity");
    let clean_runs = Arc::new(AtomicUsize::new(0));
    let baseline = Executor::new(1).run(&mixed_spec("resume_identity", &clean_runs));
    assert_eq!(clean_runs.load(Ordering::SeqCst), 1);

    // Interrupt after two completed cells (the same drain path a SIGINT
    // takes, made deterministic): "boom" and "metrics" land in the
    // journal, the two simulations never run.
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: false,
    };
    let interrupted = Executor::new(1)
        .with_interrupt_after(2)
        .run_journaled(&mixed_spec("resume_identity", &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(interrupted.interrupted);
    assert_eq!(interrupted.skipped(), 2);
    assert_eq!(runs.load(Ordering::SeqCst), 1);
    let jpath = journal_path(&dir, "resume_identity");
    assert!(jpath.exists(), "an interrupted sweep must keep its journal");

    // Resume: the panicking cell's FAILED row replays from the journal
    // (the counter must not move), only the two simulations execute, and
    // the final JSON is byte-identical to the uninterrupted baseline.
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: true,
    };
    let resumed = Executor::new(1)
        .run_journaled(&mixed_spec("resume_identity", &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(!resumed.interrupted);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "journaled cells must replay, not re-run"
    );
    assert_eq!(
        baseline.to_json(),
        resumed.to_json(),
        "resumed JSON must be byte-identical to an uninterrupted run"
    );
    assert!(!jpath.exists(), "a completed sweep must remove its journal");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_cell_is_cancelled_at_the_deadline_while_siblings_complete() {
    let mut spec = ExperimentSpec::new("deadline_sweep");
    // An infinite loop that only exits through the cooperative
    // cancellation point — exactly the shape of a hung simulation.
    spec.custom("hang", |ctx| loop {
        ctx.check()?;
        std::thread::yield_now();
    });
    spec.custom("sibling", |_| Ok(CellData::metrics([("cycles", 7.0)])));

    let res = Executor::new(2).with_deadline_ms(50).run(&spec);
    match &res.cell("hang").outcome {
        CellOutcome::Failed { kind, error, .. } => {
            assert_eq!(*kind, "deadline");
            assert!(
                error.contains("deadline") && error.contains("expired"),
                "got: {error}"
            );
        }
        other => panic!("the hung cell must fail with a deadline: {other:?}"),
    }
    assert!(
        res.run("sibling").is_some() || res.cell("sibling").data().is_some(),
        "siblings must be unaffected by one hung cell"
    );
    assert_eq!(res.failed(), 1);
    assert_eq!(res.skipped(), 0, "a deadline is a row, not an interruption");
    assert!(!res.interrupted);
}

#[test]
fn deadline_errors_are_typed_from_custom_cells() {
    // The ctx.check() path must surface the typed error, not a panic.
    let mut spec = ExperimentSpec::new("deadline_typed");
    spec.custom("hang", |ctx| loop {
        ctx.check()?;
    });
    let res = Executor::new(1).with_deadline_ms(20).run(&spec);
    match &res.cell("hang").outcome {
        CellOutcome::Failed { kind, .. } => assert_eq!(*kind, "deadline"),
        other => panic!("expected a deadline failure: {other:?}"),
    }
    // And the standalone error type agrees.
    let err = SimError::Deadline {
        elapsed_ms: 25,
        limit_ms: 20,
        diag: virec::sim::RunDiagnostics::placeholder("hang"),
    };
    assert!(err.deadline_expired());
    assert_eq!(err.kind(), "deadline");
}

#[test]
fn corrupt_journal_records_are_skipped_on_resume() {
    let dir = temp_dir("corrupt");
    let runs = Arc::new(AtomicUsize::new(0));
    let baseline = Executor::new(1).run(&mixed_spec("resume_corrupt", &runs));

    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: false,
    };
    let interrupted = Executor::new(1)
        .with_interrupt_after(2)
        .run_journaled(&mixed_spec("resume_corrupt", &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(interrupted.interrupted);

    // Simulate a crash mid-append: one truncated record and one line of
    // garbage at the tail of the journal.
    let jpath = journal_path(&dir, "resume_corrupt");
    let mut text = std::fs::read_to_string(&jpath).expect("journal exists");
    text.push_str("{\"key\": \"virec\", \"status\": \"ok\", \"da");
    text.push_str("\nnot json at all\n");
    std::fs::write(&jpath, text).expect("rewrite journal");

    // The resume must skip the damaged tail (re-running those cells) and
    // still converge to the uninterrupted result.
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: true,
    };
    let resumed = Executor::new(1)
        .run_journaled(&mixed_spec("resume_corrupt", &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(!resumed.interrupted);
    assert_eq!(baseline.to_json(), resumed.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_journal_is_refused_and_the_sweep_starts_fresh() {
    let dir = temp_dir("mismatch");

    // Journal an interrupted sweep of one grid...
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: false,
    };
    let interrupted = Executor::new(1)
        .with_interrupt_after(1)
        .run_journaled(&mixed_spec("resume_shape", &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(interrupted.interrupted);

    // ...then resume under the same name with a different grid: the
    // fingerprint must not match, and every cell must execute fresh.
    let mut other = ExperimentSpec::new("resume_shape");
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    other.custom("different", move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
        Ok(CellData::metrics([("x", 1.0)]))
    });
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: true,
    };
    let res = Executor::new(1)
        .run_journaled(&other, Some(&cfg))
        .expect("journal dir is writable");
    assert!(res.all_ok());
    assert_eq!(executed.load(Ordering::SeqCst), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_header_falls_back_to_a_fresh_start() {
    let dir = temp_dir("corrupt_header");
    let runs = Arc::new(AtomicUsize::new(0));
    let baseline = Executor::new(1).run(&mixed_spec("resume_header", &runs));

    // A crash during journal creation (or on-disk damage) can leave the
    // header line truncated. The body may even hold well-formed records —
    // but without a trusted header nothing can be attributed to this spec.
    let jpath = journal_path(&dir, "resume_header");
    std::fs::write(&jpath, "{\"journal\":\"vi").expect("write damaged journal");

    // Resume must warn, discard the damaged file, run every cell fresh,
    // and converge to the uninterrupted result — not error out.
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: true,
    };
    let res = Executor::new(1)
        .run_journaled(&mixed_spec("resume_header", &runs), Some(&cfg))
        .expect("a damaged header must not fail the sweep");
    assert!(!res.interrupted);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "every cell must execute fresh when the header is unreadable"
    );
    assert_eq!(baseline.to_json(), res.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_from_a_different_problem_size_is_refused() {
    let dir = temp_dir("meta_mismatch");

    // Identical cell keys, but the spec declares it ran at n=512...
    let spec_at = |n: u64, runs: &Arc<AtomicUsize>| {
        let mut spec = mixed_spec("resume_meta", runs);
        spec.set_meta("n", n);
        spec
    };
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: false,
    };
    let interrupted = Executor::new(1)
        .with_interrupt_after(2)
        .run_journaled(&spec_at(512, &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(interrupted.interrupted);
    assert_eq!(runs.load(Ordering::SeqCst), 1);

    // ...so a resume at n=4096 must not replay its rows: the journaled
    // numbers describe a different problem size under the same keys.
    let cfg = JournalConfig {
        dir: dir.clone(),
        resume: true,
    };
    let res = Executor::new(1)
        .run_journaled(&spec_at(4096, &runs), Some(&cfg))
        .expect("journal dir is writable");
    assert!(!res.interrupted);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        2,
        "the journaled cell must re-execute, not replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
