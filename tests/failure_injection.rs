//! Failure injection: the verification machinery must *fail* when state is
//! corrupted — otherwise the hundreds of green differential tests would
//! prove nothing.

use virec::core::{CoreConfig, RegRegion};
use virec::isa::{reg::names::X4, FlatMem};
use virec::mem::{Fabric, FabricConfig};
use virec::sim::offload::offload;
use virec::sim::runner::verify_against_golden;
use virec::workloads::{kernels, Layout};

/// Runs gather to completion and returns (core, mem) without verification.
fn run_unverified(cfg: CoreConfig, n: u64) -> (virec::core::Core, FlatMem) {
    let w = kernels::spatter::gather(n, Layout::for_core(0));
    let mut mem = FlatMem::new(0, virec::workloads::layout::mem_size(1));
    let region: RegRegion = offload(&mut mem, &w, cfg.nthreads);
    let mut core =
        virec::core::Core::new(cfg, w.program().clone(), region, w.layout.code_base, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(now < 50_000_000);
    }
    core.drain(&mut mem);
    (core, mem)
}

#[test]
fn clean_run_verifies() {
    let (core, mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "register")]
fn corrupted_register_is_detected() {
    let (core, mut mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    // Flip a bit in thread 2's drained x4 (the loop bound — always live).
    let region = core.region();
    let addr = region.reg_addr(2, X4);
    let v = mem.read_u64(addr);
    mem.write_u64(addr, v ^ 1);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "data segment diverged")]
fn corrupted_data_segment_is_detected() {
    let (core, mut mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    // Corrupt one byte of the gather output array.
    let out = w.layout.data_base + 2 * 256 * 8;
    let v = mem.read_u64(out);
    mem.write_u64(out, v.wrapping_add(1));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "diverged")]
fn wrong_thread_count_is_detected() {
    // Verifying against a different partitioning must fail: the golden run
    // computes different per-thread sums.
    let (core, mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 3, &core, &mem);
}
