//! Failure injection: the verification machinery must *fail* when state is
//! corrupted — otherwise the hundreds of green differential tests would
//! prove nothing.
//!
//! The first half corrupts drained state by hand and expects the golden
//! checker to panic (through the thin `verify_against_golden` wrapper).
//! The second half drives the deterministic [`virec::sim::FaultPlan`]
//! machinery: seeded mid-run corruption of VRMU tag-store entries and
//! rollback-queue slots, a stuck-fill livelock, and the graceful-sweep
//! harness that turns failures into structured rows.

use virec::core::{CoreConfig, RegRegion};
use virec::isa::{reg::names::X4, FlatMem, Instr, Program};
use virec::mem::{Fabric, FabricConfig};
use virec::sim::experiment::{builder, CellOutcome, Executor, ExperimentSpec};
use virec::sim::offload::offload;
use virec::sim::runner::{
    try_run_single, try_verify_against_golden, verify_against_golden, RunOptions,
};
use virec::sim::{
    run_campaign, FaultClass, FaultEvent, FaultPlan, FaultSite, InjectionOutcome, SimError,
};
use virec::workloads::{kernels, Layout, Workload};

/// Runs gather to completion and returns (core, mem) without verification.
fn run_unverified(cfg: CoreConfig, n: u64) -> (virec::core::Core, FlatMem) {
    let w = kernels::spatter::gather(n, Layout::for_core(0));
    let mut mem = FlatMem::new(0, virec::workloads::layout::mem_size(1));
    let region: RegRegion = offload(&mut mem, &w, cfg.nthreads);
    let mut core =
        virec::core::Core::new(cfg, w.program().clone(), region, w.layout.code_base, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(now < 50_000_000);
    }
    core.drain(&mut mem);
    (core, mem)
}

#[test]
fn clean_run_verifies() {
    let (core, mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "register")]
fn corrupted_register_is_detected() {
    let (core, mut mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    // Flip a bit in thread 2's drained x4 (the loop bound — always live).
    let region = core.region();
    let addr = region.reg_addr(2, X4);
    let v = mem.read_u64(addr);
    mem.write_u64(addr, v ^ 1);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "data segment diverged")]
fn corrupted_data_segment_is_detected() {
    let (core, mut mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    // Corrupt one byte of the gather output array.
    let out = w.layout.data_base + 2 * 256 * 8;
    let v = mem.read_u64(out);
    mem.write_u64(out, v.wrapping_add(1));
    verify_against_golden(&w, 4, &core, &mem);
}

#[test]
#[should_panic(expected = "diverged")]
fn wrong_thread_count_is_detected() {
    // Verifying against a different partitioning must fail: the golden run
    // computes different per-thread sums.
    let (core, mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    verify_against_golden(&w, 3, &core, &mem);
}

// ---------------------------------------------------------------------------
// Seeded FaultPlan campaigns: deterministic mid-run corruption of live
// microarchitectural state, classified against the golden checker and the
// clean run's architectural digest.
// ---------------------------------------------------------------------------

fn gather() -> Workload {
    kernels::spatter::gather(256, Layout::for_core(0))
}

#[test]
fn tag_store_campaign_has_no_silent_escapes() {
    let w = gather();
    let report = run_campaign(
        CoreConfig::virec(4, 32),
        &w,
        24,
        0xBEEF_0001,
        &[FaultSite::TagValue],
    );
    assert!(report.all_detected(), "silent escape: {}", report.summary());
    assert!(
        report.all_recovered(),
        "unrecovered detection: {}",
        report.summary()
    );
    let caught = report.count(InjectionOutcome::Detected)
        + report.count(InjectionOutcome::Recovered)
        + report.count(InjectionOutcome::Crashed);
    assert!(
        caught >= 1,
        "no tag-store fault ever landed: {}",
        report.summary()
    );
}

#[test]
fn rollback_queue_campaign_has_no_silent_escapes() {
    let w = gather();
    let report = run_campaign(
        CoreConfig::virec(4, 32),
        &w,
        24,
        0xBEEF_0002,
        &[FaultSite::RollbackSlot],
    );
    assert!(report.all_detected(), "silent escape: {}", report.summary());
    assert!(
        report.all_recovered(),
        "unrecovered detection: {}",
        report.summary()
    );
}

#[test]
fn banked_campaign_has_no_silent_escapes() {
    let w = gather();
    let report = run_campaign(
        CoreConfig::banked(4),
        &w,
        24,
        0xBEEF_0003,
        &FaultSite::NON_VRMU,
    );
    assert!(report.all_detected(), "silent escape: {}", report.summary());
    assert!(
        report.all_recovered(),
        "unrecovered detection: {}",
        report.summary()
    );
    let caught = report.count(InjectionOutcome::Detected)
        + report.count(InjectionOutcome::Recovered)
        + report.count(InjectionOutcome::Crashed);
    assert!(caught >= 1, "no fault ever landed: {}", report.summary());
}

#[test]
fn stuck_fill_surfaces_as_livelock() {
    // A lost BSI fill leaves a tag-store entry unreadable and unevictable:
    // the owning thread can never decode past it, commits stop, and the
    // watchdog must flag a livelock (not a budget overrun) with a dump.
    let w = gather();
    let opts = RunOptions {
        livelock_cycles: 20_000,
        faults: FaultPlan::single(FaultEvent {
            cycle: 2_000,
            site: FaultSite::StuckFill,
            index: 0,
            bit: 0,
            class: FaultClass::Transient,
        }),
        ..RunOptions::default()
    };
    match try_run_single(CoreConfig::virec(4, 32), &w, &opts) {
        Err(SimError::FaultDetected { faults, cause, .. }) => {
            assert!(!faults.is_empty());
            match *cause {
                SimError::Livelock {
                    stalled_cycles,
                    ref dump,
                    ..
                } => {
                    assert!(stalled_cycles >= 20_000);
                    assert!(!dump.is_empty(), "livelock must dump pipeline state");
                }
                ref other => panic!("expected livelock, got {other}"),
            }
        }
        Err(other) => panic!("expected a detected fault, got {other}"),
        Ok(_) => panic!("a stuck fill must not complete"),
    }
}

#[test]
fn golden_run_stuck_is_typed() {
    // A golden interpreter that never halts must surface as a typed
    // GoldenRunStuck at the derived step cap, not spin forever.
    let (core, mem) = run_unverified(CoreConfig::virec(4, 32), 256);
    let w = gather();
    let spin = Workload::from_parts(
        "spin",
        1,
        w.layout,
        Program::new("spin", vec![Instr::B { target: 0 }]),
        Box::new(|_| {}),
        Box::new(|_, _| Vec::new()),
    );
    match try_verify_against_golden(&spin, 4, &core, &mem, core.stats().cycles) {
        Err(SimError::GoldenRunStuck {
            thread, step_cap, ..
        }) => {
            assert_eq!(thread, 0);
            assert!(step_cap >= 100_000);
        }
        other => panic!("expected GoldenRunStuck, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Graceful sweeps: one failing configuration becomes a structured row and
// its siblings still complete.
// ---------------------------------------------------------------------------

#[test]
fn sweep_continues_past_a_failing_config() {
    let build = builder(kernels::spatter::gather, 256, Layout::for_core(0));
    let opts = RunOptions::default();

    // A config whose budget is hopeless even after the relaxed retry,
    // declared next to a healthy sibling and run on the parallel executor.
    let mut starved = CoreConfig::virec(4, 32);
    starved.max_cycles = 100;
    let mut spec = ExperimentSpec::new("failure_sweep");
    spec.single("starved", build.clone(), starved, &opts);
    spec.single("healthy", build, CoreConfig::virec(4, 32), &opts);
    let res = Executor::new(2).run(&spec);

    match &res.cell("starved").outcome {
        CellOutcome::Failed { kind, retried, .. } => {
            assert_eq!(*kind, "cycle_budget");
            assert!(retried, "budget failures are retried once before failing");
        }
        other => panic!("a 100-cycle budget cannot complete gather: {other:?}"),
    }

    // Its sibling still ran and verified.
    assert!(
        res.run("healthy").is_some(),
        "the sweep must continue past a failure"
    );
    assert_eq!(res.failed(), 1);
    assert!(!res.all_ok());
    assert_eq!(res.failures().len(), 1);
}

#[test]
fn budget_retry_rescues_a_slow_config() {
    // A budget that is too small by less than the default retry factor
    // must be rescued by the single relaxed retry and report success.
    let w = gather();
    let clean = try_run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default())
        .expect("clean gather completes");
    let mut tight = CoreConfig::virec(4, 32);
    tight.max_cycles = clean.cycles - 1; // fails; 4x relaxation succeeds
    let mut spec = ExperimentSpec::new("retry_sweep");
    spec.single(
        "tight",
        builder(kernels::spatter::gather, 256, Layout::for_core(0)),
        tight,
        &RunOptions::default(),
    );
    let res = Executor::new(1).run(&spec);
    match res.run("tight") {
        Some(r) => assert_eq!(r.cycles, clean.cycles),
        None => panic!("retry should have rescued the run: {:?}", res.failures()),
    }
}
