//! End-to-end acceptance of the in-situ protection model: injection
//! campaigns routed through the SEC-DED/parity coverage map must never let
//! an effectful fault escape silently, single-bit upsets on protected word
//! storage must be corrected in place, detected-uncorrectable upsets must
//! recover from an architectural checkpoint at a fraction of the cost of
//! full re-execution, and double-bit bursts must defeat correction without
//! ever defeating detection.

use virec::core::CoreConfig;
use virec::mem::FabricConfig;
use virec::sim::runner::default_checkpoint_interval;
use virec::sim::{
    run_campaign_with, CampaignOptions, CampaignReport, FaultClass, FaultSite, InjectionOutcome,
    ProtectionConfig,
};
use virec::workloads::{kernels, Layout};

const N: u64 = 512;
const INJECTIONS: usize = 64;
const SEED: u64 = 0xF00D_5EED;

fn protected_campaign(cfg: CoreConfig, sites: &[FaultSite], multi_fault: bool) -> CampaignReport {
    let workload = kernels::spatter::gather(N, Layout::for_core(0));
    let campaign = CampaignOptions {
        protection: ProtectionConfig::secded(),
        multi_fault,
        checkpoint_interval: default_checkpoint_interval(),
        class: FaultClass::Transient,
        ras: None,
        fabric: FabricConfig::default(),
    };
    run_campaign_with(cfg, &workload, INJECTIONS, SEED, sites, &campaign)
}

/// The headline single-fault acceptance run: full SEC-DED coverage, no
/// silent escapes, live corrections, and checkpoint recovery strictly
/// cheaper than re-running the workload — on both register organizations.
#[test]
fn secded_campaign_corrects_and_recovers_cheaply() {
    let configs: [(CoreConfig, &[FaultSite]); 2] = [
        (CoreConfig::virec(4, 32), &FaultSite::ALL),
        (CoreConfig::banked(4), &FaultSite::NON_VRMU),
    ];
    for (cfg, sites) in configs {
        let report = protected_campaign(cfg, sites, false);
        let engine = report.engine.clone();
        assert_eq!(
            report.count(InjectionOutcome::Silent),
            0,
            "{engine}: a protected campaign must have no silent escapes"
        );
        assert!(
            report.count(InjectionOutcome::Corrected) > 0,
            "{engine}: single-bit upsets on SEC-DED words must correct in place"
        );
        assert!(
            report.count(InjectionOutcome::CheckpointRecovered) > 0,
            "{engine}: detected-uncorrectable upsets must restore a checkpoint"
        );
        let replay = report
            .mean_replay_cycles()
            .expect("checkpoint recoveries must record their replay cost");
        assert!(
            replay < report.clean_cycles as f64,
            "{engine}: mean replay {replay} cycles must beat full re-execution \
             ({} cycles)",
            report.clean_cycles
        );
    }
}

/// Double-bit bursts in one word defeat SEC-DED correction by design; the
/// campaign must still detect every one — through the decoder, the
/// checkpoint restore path, or the golden checker — with zero silent
/// escapes and zero bogus "corrections".
#[test]
fn double_bit_bursts_never_escape_silently() {
    let report = protected_campaign(CoreConfig::virec(4, 32), &FaultSite::SECDED_WORDS, true);
    assert_eq!(report.count(InjectionOutcome::Silent), 0);
    assert_eq!(
        report.count(InjectionOutcome::Corrected),
        0,
        "a double-bit burst must never classify as corrected"
    );
    // Every burst that actually landed was either repaired mid-run from a
    // checkpoint or flagged uncorrectable and re-executed.
    for rec in &report.records {
        assert!(
            matches!(
                rec.outcome,
                InjectionOutcome::CheckpointRecovered
                    | InjectionOutcome::DetectedUncorrectable
                    | InjectionOutcome::NotApplied
                    | InjectionOutcome::Masked
            ),
            "burst seed {} classified {:?}",
            rec.seed,
            rec.outcome
        );
    }
    assert!(
        report.count(InjectionOutcome::CheckpointRecovered)
            + report.count(InjectionOutcome::DetectedUncorrectable)
            > 0,
        "the burst campaign must actually exercise the uncorrectable path"
    );
}

/// Without checkpoints, a detected-uncorrectable word fault cannot be
/// repaired mid-run: it must surface as `DetectedUncorrectable` (recovered
/// by full re-execution) — never silently, never as a correction.
#[test]
fn uncorrectable_without_checkpoints_falls_back_to_reexecution() {
    let workload = kernels::spatter::gather(N, Layout::for_core(0));
    let campaign = CampaignOptions {
        protection: ProtectionConfig::secded(),
        multi_fault: true,
        checkpoint_interval: 0,
        class: FaultClass::Transient,
        ras: None,
        fabric: FabricConfig::default(),
    };
    let report = run_campaign_with(
        CoreConfig::virec(4, 32),
        &workload,
        24,
        SEED,
        &FaultSite::SECDED_WORDS,
        &campaign,
    );
    assert_eq!(report.count(InjectionOutcome::Silent), 0);
    assert_eq!(report.count(InjectionOutcome::CheckpointRecovered), 0);
    assert!(report.count(InjectionOutcome::DetectedUncorrectable) > 0);
    assert!(report.all_detected() && report.all_recovered());
}
