//! Property-based differential testing: random (but well-formed) programs
//! are run through the full ViReC core and must match the golden
//! interpreter's final register values and memory image.
//!
//! The generator produces a loop with a fixed trip count whose body is a
//! random mix of ALU operations, masked loads, and masked stores. Memory
//! operands are constrained to a window inside the data segment by masking
//! an index register before every access, so every generated program is
//! memory-safe by construction while still producing highly irregular
//! access and register-reuse patterns.

use proptest::prelude::*;
use virec::core::{Core, CoreConfig, PolicyKind, RegRegion};
use virec::isa::reg::names::*;
use virec::isa::{Asm, ExecOutcome, FlatMem, Interpreter, Program, Reg, ThreadCtx};
use virec::mem::{Fabric, FabricConfig};

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const DATA_WINDOW: i64 = 0x3FF; // 1023 -> 8KiB window of u64 slots
const CODE_BASE: u64 = 0x4000_0000;

/// One random body operation.
#[derive(Clone, Debug)]
enum Op {
    Alu { kind: u8, dst: u8, a: u8, b: u8 },
    AluImm { kind: u8, dst: u8, a: u8, imm: i16 },
    Load { dst: u8, idx_src: u8 },
    Store { src: u8, idx_src: u8 },
    CmpSel { dst: u8, a: u8, b: u8 },
}

/// Registers usable by generated code (x2 is the reserved data base).
const GP: [Reg; 10] = [X0, X1, X3, X4, X5, X6, X7, X8, X9, X10];
/// Scratch register for masked indices.
const IDX: Reg = X11;
/// Loop counter.
const CNT: Reg = X12;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..10, 0u8..10, 0u8..10).prop_map(|(kind, dst, a, b)| Op::Alu {
            kind,
            dst,
            a,
            b
        }),
        (0u8..6, 0u8..10, 0u8..10, any::<i16>()).prop_map(|(kind, dst, a, imm)| Op::AluImm {
            kind,
            dst,
            a,
            imm
        }),
        (0u8..10, 0u8..10).prop_map(|(dst, idx_src)| Op::Load { dst, idx_src }),
        (0u8..10, 0u8..10).prop_map(|(src, idx_src)| Op::Store { src, idx_src }),
        (0u8..10, 0u8..10, 0u8..10).prop_map(|(dst, a, b)| Op::CmpSel { dst, a, b }),
    ]
}

fn build_program(ops: &[Op], iters: u8) -> Program {
    let mut asm = Asm::new("prop");
    asm.mov_imm(CNT, iters as i64 + 1);
    asm.label("loop");
    for op in ops {
        match *op {
            Op::Alu { kind, dst, a, b } => {
                let (d, a, b) = (GP[dst as usize], GP[a as usize], GP[b as usize]);
                match kind {
                    0 => asm.add(d, a, b),
                    1 => asm.sub(d, a, b),
                    2 => asm.eor(d, a, b),
                    3 => asm.and(d, a, b),
                    4 => asm.orr(d, a, b),
                    _ => asm.mul(d, a, b),
                }
            }
            Op::AluImm { kind, dst, a, imm } => {
                let (d, a) = (GP[dst as usize], GP[a as usize]);
                match kind {
                    0 => asm.addi(d, a, imm as i64),
                    1 => asm.subi(d, a, imm as i64),
                    2 => asm.andi(d, a, imm as i64),
                    3 => asm.lsli(d, a, (imm as i64).rem_euclid(8)),
                    4 => asm.lsri(d, a, (imm as i64).rem_euclid(8)),
                    _ => asm.mov_imm(d, imm as i64),
                }
            }
            Op::Load { dst, idx_src } => {
                asm.andi(IDX, GP[idx_src as usize], DATA_WINDOW);
                asm.ldr_idx(GP[dst as usize], X2, IDX, 3);
            }
            Op::Store { src, idx_src } => {
                asm.andi(IDX, GP[idx_src as usize], DATA_WINDOW);
                asm.str_idx(GP[src as usize], X2, IDX, 3);
            }
            Op::CmpSel { dst, a, b } => {
                asm.cmp(GP[a as usize], GP[b as usize]);
                asm.csel(
                    GP[dst as usize],
                    GP[a as usize],
                    GP[b as usize],
                    virec::isa::Cond::Lt,
                );
            }
        }
    }
    asm.subi(CNT, CNT, 1);
    asm.cbnz(CNT, "loop");
    asm.halt();
    asm.assemble()
}

fn initial_ctx(tid: usize, seed: u64) -> Vec<(Reg, u64)> {
    let mut regs: Vec<(Reg, u64)> = GP
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            (
                r,
                seed.wrapping_mul(i as u64 + 1)
                    .wrapping_add(tid as u64 * 7919),
            )
        })
        .collect();
    regs.push((X2, DATA_BASE + tid as u64 * 0x4000)); // disjoint 16KiB windows
    regs
}

fn run_differential(ops: Vec<Op>, iters: u8, seed: u64, phys_regs: usize, policy: PolicyKind) {
    let nthreads = 3usize;
    let program = build_program(&ops, iters);

    // Golden.
    let mut gold_mem = FlatMem::new(0, 0x40_000);
    let mut gold_ctxs = Vec::new();
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in initial_ctx(t, seed) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(&program, &mut gold_mem).run(&mut ctx, 10_000_000);
        assert!(matches!(out, ExecOutcome::Halted { .. }));
        gold_ctxs.push(ctx);
    }

    // Timed core.
    let mut mem = FlatMem::new(0, 0x40_000);
    let region = RegRegion::new(REGION_BASE, nthreads);
    for t in 0..nthreads {
        for (r, v) in initial_ctx(t, seed) {
            mem.write_u64(region.reg_addr(t, r), v);
        }
    }
    let mut cfg = CoreConfig::virec(nthreads, phys_regs);
    cfg.policy = policy;
    let mut core = Core::new(cfg, program, region, CODE_BASE, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0u64;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(now < 50_000_000, "random program wedged the core");
    }
    core.drain(&mut mem);

    for (t, gctx) in gold_ctxs.iter().enumerate() {
        for r in Reg::allocatable() {
            prop_assert_eq_impl(core.arch_reg(t, r, &mem), gctx.get(r), t, r);
        }
    }
    assert_eq!(
        &mem.bytes()[DATA_BASE as usize..],
        &gold_mem.bytes()[DATA_BASE as usize..],
        "memory image diverged"
    );
}

fn prop_assert_eq_impl(got: u64, want: u64, t: usize, r: Reg) {
    assert_eq!(got, want, "thread {t} register {r} diverged");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_match_golden_on_tight_virec(
        ops in prop::collection::vec(op_strategy(), 4..24),
        iters in 1u8..12,
        seed in any::<u64>(),
    ) {
        // 12 physical registers for 3 threads: constant eviction pressure.
        run_differential(ops, iters, seed, 12, PolicyKind::Lrc);
    }

    #[test]
    fn random_programs_match_golden_across_policies(
        ops in prop::collection::vec(op_strategy(), 4..16),
        iters in 1u8..8,
        seed in any::<u64>(),
        policy_idx in 0usize..7,
    ) {
        run_differential(ops, iters, seed, 14, PolicyKind::ALL[policy_idx]);
    }
}
