//! End-to-end accounting tests for the streaming task service: every
//! submitted task must resolve to exactly one outcome under faults,
//! quarantine/failover, and sustained overload — `completed + rejected +
//! failed == submitted`, with zero lost, duplicated, or silently corrupt
//! tasks, on both the ViReC and banked engines.

use virec::core::CoreConfig;
use virec::sim::serve::{default_mix, ServeConfig, ServeFaultPlan};
use virec::sim::{run_service, ProtectionConfig, ServeReport};

fn base_cfg(core: CoreConfig, ncores: usize, tasks: usize, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::streaming(ncores, core, tasks, seed);
    cfg.mix = default_mix(32);
    cfg.mean_interarrival = 512;
    cfg
}

/// The invariants every service run must uphold, faulty or not.
fn assert_conserved(r: &ServeReport) {
    assert_eq!(
        r.accounted(),
        r.submitted,
        "completed {} + rejected {}+{} + failed {} != submitted {}",
        r.completed,
        r.rejected_queue_full,
        r.rejected_quarantined,
        r.failed,
        r.submitted
    );
    assert_eq!(r.lost, 0, "a task never resolved to any outcome");
    assert_eq!(r.duplicated, 0, "a task resolved to two outcomes");
    assert_eq!(r.silent_corruptions, 0, "a corrupted result escaped");
}

/// The acceptance campaign: >= 64 injected faults with quarantine on.
/// Transients correct under SEC-DED; the sticky core accumulates
/// uncorrectable double-bit bursts, quarantines, and its in-flight task
/// fails over to a healthy core without being completed twice.
#[test]
fn fault_campaign_keeps_exactly_once_accounting() {
    for core in [CoreConfig::virec(2, 16), CoreConfig::banked(2)] {
        let mut cfg = base_cfg(core, 4, 160, 0xF00D_5EED);
        cfg.faults = ServeFaultPlan::campaign(64, 1);
        cfg.protection = ProtectionConfig::secded();
        let r = run_service(cfg).expect("campaign runs");
        assert_conserved(&r);
        assert!(
            r.faults_injected >= 64,
            "campaign realized only {} faults",
            r.faults_injected
        );
        assert!(r.faults_corrected > 0, "secded corrected nothing");
        assert_eq!(r.quarantined_cores, 1, "the sticky core must quarantine");
        assert!(
            r.failovers >= 1,
            "quarantine with work in flight fails over"
        );
        assert!(
            r.completed + r.failed >= r.submitted - r.rejected_queue_full,
            "every admitted task ran"
        );
        // SLO metrics are well-formed on a faulty run too.
        assert!(r.p50() > 0 && r.p50() <= r.p99() && r.p99() <= r.p999());
        assert!(r.availability() > 0.0 && r.availability() < 1.0);
    }
}

/// Sustained 2x overload: the bounded queue sheds with a typed reason and
/// the service still terminates with full accounting — never a deadlock,
/// never a panic.
#[test]
fn double_rate_overload_sheds_typed_and_terminates() {
    let mut cfg = base_cfg(CoreConfig::banked(2), 2, 120, 7);
    // ~2x capacity: two cores at ~900 cycles/task serve one task per
    // ~450 cycles; arrivals every ~225.
    cfg.mean_interarrival = 225;
    cfg.queue_depth = 4;
    let r = run_service(cfg).expect("overload run terminates");
    assert_conserved(&r);
    assert!(r.rejected_queue_full > 0, "overload must shed");
    assert_eq!(r.rejected_quarantined, 0);
    assert!(r.completed > 0, "the service still makes progress");
}

/// Every core goes sticky-bad with no protection-level correction: the
/// whole fleet quarantines, and the queue plus later arrivals drain with
/// `quarantined_capacity` rejections instead of hanging forever.
#[test]
fn fully_quarantined_fleet_drains_instead_of_deadlocking() {
    let mut cfg = base_cfg(CoreConfig::banked(2), 2, 60, 0xDEAD);
    cfg.faults = ServeFaultPlan {
        transient: 0,
        sticky_cores: 2,
        stuck_cores: 0,
        sticky_after: 2,
        link_faults: 0,
    };
    cfg.protection = ProtectionConfig::secded(); // double-bit: detected, uncorrectable
    cfg.quarantine_after = 2;
    let r = run_service(cfg).expect("drains");
    assert_conserved(&r);
    assert_eq!(r.quarantined_cores, 2, "every core must quarantine");
    assert!(
        r.rejected_quarantined > 0,
        "tasks after total quarantine must shed typed"
    );
}

/// Same seed, same config: byte-identical accounting and latency tape,
/// even through a fault campaign with retries and failover.
#[test]
fn faulty_runs_are_deterministic() {
    let mk = || {
        let mut cfg = base_cfg(CoreConfig::virec(2, 16), 3, 80, 0xA11CE);
        cfg.faults = ServeFaultPlan::campaign(24, 1);
        cfg.protection = ProtectionConfig::secded();
        run_service(cfg).expect("runs")
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.summary(), b.summary());
}
