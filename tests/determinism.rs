//! Reproducibility: the simulator is fully deterministic — identical
//! configurations must give identical cycle counts and statistics, and
//! multi-core systems must verify against the golden model.

use virec::core::CoreConfig;
use virec::mem::FabricConfig;
use virec::sim::runner::{run_single, RunOptions};
use virec::sim::{System, SystemConfig};
use virec::workloads::{kernels, Layout};

#[test]
fn identical_runs_are_bit_identical() {
    let w = kernels::spatter::gather(1024, Layout::for_core(0));
    let cfg = CoreConfig::virec(8, 32);
    let a = run_single(cfg, &w, &RunOptions::default());
    let b = run_single(cfg, &w, &RunOptions::default());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.instructions, b.stats.instructions);
    assert_eq!(a.stats.rf_hits, b.stats.rf_hits);
    assert_eq!(a.stats.rf_misses, b.stats.rf_misses);
    assert_eq!(a.stats.context_switches, b.stats.context_switches);
    assert_eq!(a.stats.dcache.misses, b.stats.dcache.misses);
}

#[test]
fn system_runs_are_deterministic_and_verified() {
    let build = || {
        let mut core = CoreConfig::virec(4, 32);
        core.max_cycles = 500_000_000; // system budget derives from the cores
        let cfg = SystemConfig {
            ncores: 4,
            core,
            fabric: FabricConfig::default(),
        };
        System::new(cfg, kernels::spatter::gather, 512).run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.cycles, b.cycles);
    for (x, y) in a.per_core.iter().zip(&b.per_core) {
        assert_eq!(x.instructions, y.instructions);
        assert_eq!(x.context_switches, y.context_switches);
    }
}

#[test]
fn eight_core_system_with_ten_threads_verifies() {
    // The largest configuration of Figure 11 (shrunk problem size).
    let mut core = CoreConfig::virec(10, 64);
    core.max_cycles = 1_000_000_000;
    let cfg = SystemConfig {
        ncores: 8,
        core,
        fabric: FabricConfig::default(),
    };
    let r = System::new(cfg, kernels::spatter::gather, 256).run();
    assert_eq!(r.per_core.len(), 8);
    assert!(r.cycles > 0);
}
