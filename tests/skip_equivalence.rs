//! Differential proof of the event-driven scheduler's headline invariant:
//! the wakeup-scheduled loop and the dense cycle-by-cycle loop produce
//! **byte-identical** statistics, architectural digests, and reports —
//! across every context engine, the whole workload suite, a seeded
//! fault-injection campaign with checkpointing, and a full serve run.
//!
//! The dense loop is selected per run via `RunOptions::dense_loop` (the
//! `VIREC_NO_SKIP=1` environment variable forces it globally); the
//! event-driven loop is the default everywhere else in the tree, so these
//! tests are the only place both loops run side by side on the same input.

use virec::core::CoreConfig;
use virec::sim::runner::{try_run_single, RunOptions, RunResult};
use virec::sim::serve::{default_mix, ServeConfig, ServeFaultPlan};
use virec::sim::{
    run_service, FaultClass, FaultPlan, FaultSite, ProtectionConfig, RasConfig, SimError, System,
    SystemConfig,
};
use virec::workloads::{kernels, suite, Layout};

const N: u64 = 256;

/// Same options, dense loop forced.
fn densified(opts: &RunOptions) -> RunOptions {
    RunOptions {
        dense_loop: true,
        ..opts.clone()
    }
}

/// Field-by-field identity on everything deterministic in a [`RunResult`]
/// (`checkpoint_clone_ns` is wall-clock and deliberately excluded).
fn assert_identical(label: &str, dense: &RunResult, skip: &RunResult) {
    assert_eq!(dense.cycles, skip.cycles, "{label}: cycles diverged");
    assert_eq!(dense.stats, skip.stats, "{label}: stats diverged");
    assert_eq!(
        dense.arch_digest, skip.arch_digest,
        "{label}: arch digest diverged"
    );
    assert_eq!(
        dense.faults_applied, skip.faults_applied,
        "{label}: applied faults diverged"
    );
    assert_eq!(dense.ecc, skip.ecc, "{label}: ecc counters diverged");
    assert_eq!(dense.ras, skip.ras, "{label}: ras counters diverged");
}

#[test]
fn all_engines_all_workloads_byte_identical() {
    for w in suite(N, Layout::for_core(0)) {
        let configs = [
            CoreConfig::virec(4, 16),
            CoreConfig::virec(8, 12), // starved RF: maximal spill/fill traffic
            CoreConfig::banked(4),
            CoreConfig::software(3),
            CoreConfig::nsf(4, 16),
            CoreConfig::prefetch_full(4, w.active_context_size()),
        ];
        for cfg in configs {
            let opts = RunOptions::default();
            let skip = try_run_single(cfg, &w, &opts)
                .unwrap_or_else(|e| panic!("{}: event-driven run failed: {e}", w.name));
            let dense = try_run_single(cfg, &w, &densified(&opts))
                .unwrap_or_else(|e| panic!("{}: dense run failed: {e}", w.name));
            assert_identical(&format!("{} / {:?}", w.name, cfg.engine), &dense, &skip);
            assert!(skip.cycles > 0 && skip.stats.instructions > 0);
        }
    }
}

/// Flattens an outcome to a comparable string: full field identity for
/// successes, the (deterministic) display rendering for typed failures.
fn outcome_key(r: &Result<RunResult, SimError>) -> String {
    match r {
        Ok(res) => format!(
            "ok cycles={} digest={:#x} stats={:?} faults={:?} ecc={:?} ras={:?}",
            res.cycles, res.arch_digest, res.stats, res.faults_applied, res.ecc, res.ras
        ),
        Err(e) => format!("err {e}"),
    }
}

#[test]
fn seeded_fault_campaign_byte_identical() {
    // 64 seeded injections over live microarchitectural state, each run
    // under both loops with checkpointing enabled — detection cycle,
    // recovery/replay accounting, and final digests must all agree.
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    let cfg = CoreConfig::virec(4, 32);
    let clean = try_run_single(cfg, &w, &RunOptions::default()).expect("clean run");
    let window = (clean.cycles / 10, clean.cycles * 9 / 10);
    let sites = [
        FaultSite::TagValue,
        FaultSite::RollbackSlot,
        FaultSite::DramLine,
    ];
    for i in 0..64u64 {
        let opts = RunOptions {
            livelock_cycles: clean.cycles * 4,
            faults: FaultPlan::seeded(0x5EED_7E57 ^ i, 1, window, &sites),
            protection: ProtectionConfig::secded(),
            checkpoint_interval: 4096,
            checkpoint_depth: 4,
            ..RunOptions::default()
        };
        let skip = try_run_single(cfg, &w, &opts);
        let dense = try_run_single(cfg, &w, &densified(&opts));
        assert_eq!(
            outcome_key(&dense),
            outcome_key(&skip),
            "injection {i} diverged between loops"
        );
    }
}

/// The PR-8 fault classes through both loops: intermittent duty-cycled
/// upsets and permanent stuck-at cells, with the full RAS machinery live —
/// patrol-scrubber wakeups capping the skip horizon, CE-bucket predictive
/// retirement, demand retirement + migration, and degraded-mode fencing.
/// Every scrub read and every retirement must land on the same cycle in
/// both loops or the digests (and the RasStats identity) catch it.
#[test]
fn persistent_fault_classes_with_scrubber_byte_identical() {
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    let classes = [
        FaultClass::Intermittent {
            period: 500,
            repeats: 6,
        },
        FaultClass::StuckAt { period: 400 },
    ];
    let engines = [
        (CoreConfig::virec(4, 32), &FaultSite::PERMANENT[..]),
        (CoreConfig::banked(4), &FaultSite::PERMANENT_NON_VRMU[..]),
    ];
    for (cfg, sites) in engines {
        let clean = try_run_single(cfg, &w, &RunOptions::default()).expect("clean run");
        let window = (clean.cycles / 10, clean.cycles * 9 / 10);
        for class in classes {
            for i in 0..16u64 {
                let opts = RunOptions {
                    livelock_cycles: clean.cycles * 8,
                    faults: FaultPlan::seeded_class(0x8A5_0BAD ^ i, 1, window, sites, class),
                    protection: ProtectionConfig::secded(),
                    checkpoint_interval: 4096,
                    checkpoint_depth: 4,
                    ras: Some(RasConfig::default()),
                    ..RunOptions::default()
                };
                let skip = try_run_single(cfg, &w, &opts);
                let dense = try_run_single(cfg, &w, &densified(&opts));
                assert_eq!(
                    outcome_key(&dense),
                    outcome_key(&skip),
                    "{:?} injection {i} ({class:?}) diverged between loops",
                    cfg.engine
                );
            }
        }
    }
}

/// A RAS-enabled run with no faults at all still schedules patrol-scrub
/// wakeups; the skip loop must honor them (consuming the same fabric
/// bandwidth at the same cycles) without perturbing the workload.
#[test]
fn idle_scrubber_wakeups_byte_identical() {
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    for cfg in [CoreConfig::virec(4, 16), CoreConfig::banked(4)] {
        let opts = RunOptions {
            ras: Some(RasConfig {
                scrub_interval: 300, // deliberately off-cadence vs the skip horizon
                ..RasConfig::default()
            }),
            ..RunOptions::default()
        };
        let skip = try_run_single(cfg, &w, &opts).expect("event-driven run");
        let dense = try_run_single(cfg, &w, &densified(&opts)).expect("dense run");
        assert_identical(&format!("scrub-only / {:?}", cfg.engine), &dense, &skip);
        assert!(skip.ras.scrub_reads > 0, "the patrol scrubber never ran");
    }
}

#[test]
fn system_run_byte_identical() {
    let cfg = SystemConfig {
        ncores: 3,
        core: CoreConfig::virec(4, 32),
        fabric: Default::default(),
    };
    let run = |dense: bool| {
        let mut sys = System::new(cfg, kernels::spatter::gather, 192);
        sys.set_dense_loop(dense);
        sys.try_run().expect("system run completes")
    };
    let skip = run(false);
    let dense = run(true);
    assert_eq!(dense.cycles, skip.cycles, "system cycles diverged");
    assert_eq!(dense.per_core, skip.per_core, "per-core stats diverged");
    assert_eq!(
        format!("{:?}", dense.fabric),
        format!("{:?}", skip.fabric),
        "fabric stats diverged"
    );
}

#[test]
fn serve_run_byte_identical() {
    // A faulty, protected, deadline-bearing service run: arrivals, SLO
    // shedding, quarantine, failover, epochs, and latency percentiles all
    // ride on the shared clock the skip loop fast-forwards.
    let run = |dense: bool| {
        let mut cfg = ServeConfig::streaming(3, CoreConfig::virec(2, 16), 48, 0xD1FF_5EED);
        cfg.mix = default_mix(32);
        cfg.mean_interarrival = 512;
        cfg.faults = ServeFaultPlan::campaign(8, 1);
        cfg.protection = ProtectionConfig::secded();
        cfg.deadline_cycles = 400_000;
        cfg.dense_loop = dense;
        run_service(cfg).expect("serve run completes")
    };
    let skip = run(false);
    let dense = run(true);
    // ServeReport has no wall-clock fields: the debug rendering covers
    // every counter, latency sample, and epoch snapshot.
    assert_eq!(
        format!("{dense:?}"),
        format!("{skip:?}"),
        "serve reports diverged"
    );
    assert!(skip.completed > 0, "serve run must do real work");
}

/// Serve with permanent (stuck-at) cores and the RAS layer live: repair
/// completions are exact-cycle events the skip loop must wake for, and the
/// millicore availability tape has to match the dense loop to the cycle.
#[test]
fn serve_repairs_and_fencing_byte_identical() {
    let run = |dense: bool| {
        let mut cfg = ServeConfig::streaming(4, CoreConfig::virec(2, 16), 64, 0xF00D_5EED);
        cfg.mix = default_mix(32);
        cfg.mean_interarrival = 512;
        cfg.faults = ServeFaultPlan::stuck(3);
        cfg.protection = ProtectionConfig::secded();
        cfg.ras = Some(RasConfig {
            spare_rows: 1, // pool runs dry: exercise fencing, not just repair
            ..RasConfig::default()
        });
        cfg.dense_loop = dense;
        run_service(cfg).expect("serve run completes")
    };
    let skip = run(false);
    let dense = run(true);
    assert_eq!(
        format!("{dense:?}"),
        format!("{skip:?}"),
        "serve reports diverged"
    );
    assert!(skip.repairs >= 1, "the spare pool never repaired");
    assert!(skip.fenced_cores >= 1, "a dry pool must fence");
    assert_eq!(skip.lost, 0);
    assert_eq!(skip.duplicated, 0);
}

/// Mesh NoC topologies through both loops, defect-free: per-hop arrivals,
/// express cut-through reservations, and credit returns are all exact-cycle
/// events the skip loop must reproduce — including the fabric's NoC
/// counters, which `assert_identical` does not cover.
#[test]
fn mesh_topologies_byte_identical() {
    use virec::mem::{FabricConfig, FabricTopology};
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    for (cols, rows) in [(2usize, 2usize), (4, 2)] {
        for cfg in [CoreConfig::virec(4, 16), CoreConfig::banked(4)] {
            let opts = RunOptions {
                fabric: FabricConfig {
                    topology: FabricTopology::Mesh { cols, rows },
                    ..FabricConfig::default()
                },
                ..RunOptions::default()
            };
            let label = format!("mesh{cols}x{rows} / {:?}", cfg.engine);
            let skip = try_run_single(cfg, &w, &opts)
                .unwrap_or_else(|e| panic!("{label}: event-driven run failed: {e}"));
            let dense = try_run_single(cfg, &w, &densified(&opts))
                .unwrap_or_else(|e| panic!("{label}: dense run failed: {e}"));
            assert_identical(&label, &dense, &skip);
            assert_eq!(dense.fabric, skip.fabric, "{label}: fabric stats diverged");
            assert!(
                skip.fabric.noc_hops > 0,
                "{label}: traffic must cross the mesh"
            );
        }
    }
}

/// Seeded NoC link-fault campaigns (transient upsets and stuck-at links,
/// RAS live for the persistent class) through both loops on 2x2 and 4x2
/// meshes: every CRC catch, retransmission backoff, leaky-bucket
/// retirement, and route-around recompute must land on the same cycle.
#[test]
fn mesh_link_fault_campaigns_byte_identical() {
    use virec::mem::{FabricConfig, FabricTopology};
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    let cfg = CoreConfig::virec(4, 32);
    for (cols, rows) in [(2usize, 2usize), (4, 2)] {
        let fabric = FabricConfig {
            topology: FabricTopology::Mesh { cols, rows },
            ..FabricConfig::default()
        };
        let clean = try_run_single(
            cfg,
            &w,
            &RunOptions {
                fabric,
                ..RunOptions::default()
            },
        )
        .expect("clean mesh run");
        let window = (clean.cycles / 10, clean.cycles * 9 / 10);
        let classes = [FaultClass::Transient, FaultClass::StuckAt { period: 400 }];
        for class in classes {
            for i in 0..8u64 {
                let opts = RunOptions {
                    livelock_cycles: clean.cycles * 8,
                    fabric,
                    faults: FaultPlan::seeded_class(
                        0x90C_11FE ^ i,
                        1,
                        window,
                        &[FaultSite::NocLink],
                        class,
                    ),
                    protection: ProtectionConfig::secded(),
                    checkpoint_interval: 4096,
                    checkpoint_depth: 4,
                    ras: matches!(class, FaultClass::StuckAt { .. }).then(RasConfig::default),
                    ..RunOptions::default()
                };
                let skip = try_run_single(cfg, &w, &opts);
                let dense = try_run_single(cfg, &w, &densified(&opts));
                assert_eq!(
                    outcome_key(&dense),
                    outcome_key(&skip),
                    "mesh{cols}x{rows} injection {i} ({class:?}) diverged between loops"
                );
            }
        }
    }
}

/// A faulty serve run on the mesh: dispatch-clocked link upsets, CRC
/// retransmissions, link retirement, and the link-loss capacity scaling in
/// the availability tape must all match the dense loop byte for byte.
#[test]
fn mesh_serve_link_faults_byte_identical() {
    use virec::mem::{FabricConfig, FabricTopology};
    let run = |dense: bool| {
        let mut cfg = ServeConfig::streaming(4, CoreConfig::banked(2), 32, 0xF00D_5EED);
        cfg.mix = default_mix(32);
        cfg.mean_interarrival = 512;
        cfg.fabric = FabricConfig {
            topology: FabricTopology::Mesh { cols: 2, rows: 2 },
            ..FabricConfig::default()
        };
        cfg.faults = ServeFaultPlan::links(9);
        cfg.ras = Some(RasConfig::default());
        cfg.dense_loop = dense;
        run_service(cfg).expect("mesh serve run completes")
    };
    let skip = run(false);
    let dense = run(true);
    assert_eq!(
        format!("{dense:?}"),
        format!("{skip:?}"),
        "mesh serve reports diverged"
    );
    assert!(
        skip.fabric.noc_retransmissions >= 1,
        "upsets must retransmit"
    );
    assert!(
        skip.fabric.noc_links_retired >= 1,
        "the flaky link must retire"
    );
    assert_eq!(skip.lost, 0);
    assert_eq!(skip.silent_corruptions, 0);
}
