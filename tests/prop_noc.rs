//! Property-based tests for the mesh NoC (DESIGN §4k), driven through the
//! public [`virec::mem::Fabric`] API over arbitrary mesh shapes and
//! request mixes:
//!
//! 1. **XY delivery** — on a defect-free mesh, every submitted request
//!    completes (reaches the memory controller and its response returns),
//!    the network drains, and the watchdog never fires.
//! 2. **Route-around liveness** — after retiring an arbitrary bounded set
//!    of links (each absorbed as a reroute or a fence), every request
//!    still completes: the adaptive tables never livelock traffic, and
//!    the link census stays consistent.
//! 3. **Credit conservation** — at every cycle, the buffer credits held
//!    equal the flits in flight (each flit holds exactly one), and both
//!    drain to zero when the network empties.

use proptest::prelude::*;
use virec::mem::{Fabric, FabricConfig, FabricTopology};

fn mesh_fabric(cols: usize, rows: usize) -> Fabric {
    Fabric::new(FabricConfig {
        topology: FabricTopology::Mesh { cols, rows },
        ..FabricConfig::default()
    })
}

/// Submits every request (staggered a few cycles apart), then ticks until
/// all complete, checking credit conservation at every cycle. Returns the
/// final cycle.
fn drive(fabric: &mut Fabric, reqs: &[(usize, u64, bool)]) -> u64 {
    let mut now = 0u64;
    let mut pending = Vec::new();
    for (i, &(port, addr, is_write)) in reqs.iter().enumerate() {
        for _ in 0..(i % 5) {
            now += 1;
            fabric.tick(now);
        }
        pending.push(fabric.submit(now, port, addr & !63, is_write));
    }
    while !pending.is_empty() {
        now += 1;
        fabric.tick(now);
        assert_eq!(
            fabric.noc_credits_held().expect("mesh fabric"),
            fabric.noc_in_network().expect("mesh fabric") as u32,
            "cycle {now}: credits diverged from flits in flight"
        );
        assert!(
            fabric.noc_fault().is_none(),
            "watchdog fired: {:?}",
            fabric.noc_fault()
        );
        pending.retain(|&t| {
            if fabric.is_done(t, now) {
                fabric.retire(t);
                false
            } else {
                true
            }
        });
        assert!(
            now < 300_000,
            "requests never drained ({} left)",
            pending.len()
        );
    }
    now
}

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=4, 1usize..=3)
}

fn reqs() -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    prop::collection::vec((0usize..12, 0u64..0x1_0000, any::<bool>()), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: XY routing delivers every request on a defect-free
    /// mesh of any shape, and the network drains completely.
    #[test]
    fn xy_delivers_every_request(dims in dims(), reqs in reqs()) {
        let (cols, rows) = dims;
        let mut fabric = mesh_fabric(cols, rows);
        drive(&mut fabric, &reqs);
        prop_assert_eq!(fabric.noc_in_network(), Some(0));
        prop_assert_eq!(fabric.noc_credits_held(), Some(0));
        prop_assert!(fabric.stats().noc_hops > 0);
        prop_assert_eq!(fabric.stats().noc_crc_detected, 0, "defect-free run saw a CRC hit");
    }

    /// Invariant 2: with up to 4 arbitrary links retired (rerouted or
    /// fenced), traffic still delivers — no livelock, no watchdog — and
    /// the link census partitions the population.
    #[test]
    fn route_around_never_livelocks(
        dims in dims(),
        retire in prop::collection::vec(0usize..24, 0..=4),
        reqs in reqs(),
    ) {
        let (cols, rows) = dims;
        let mut fabric = mesh_fabric(cols, rows);
        for &l in &retire {
            fabric.retire_link(l).expect("mesh fabric retires links");
        }
        let h = fabric.link_health().expect("mesh fabric");
        prop_assert_eq!(h.healthy + h.retired + h.fenced, h.total, "census must partition");
        drive(&mut fabric, &reqs);
        prop_assert_eq!(fabric.noc_in_network(), Some(0));
    }

    /// Invariant 3: credits equal flits in flight at every cycle (checked
    /// inside `drive`) and both drain to zero — even when links sit
    /// retired or fenced and traffic detours through shared paths.
    #[test]
    fn credits_conserve_under_detours(
        dims in dims(),
        retire in prop::collection::vec(0usize..8, 0..=2),
        reqs in reqs(),
    ) {
        let (cols, rows) = dims;
        let mut fabric = mesh_fabric(cols, rows);
        for &l in &retire {
            fabric.retire_link(l);
        }
        drive(&mut fabric, &reqs);
        prop_assert_eq!(fabric.noc_credits_held(), Some(0));
        prop_assert_eq!(fabric.noc_in_network(), Some(0));
    }
}
