//! The flagship correctness test: every workload in the suite, on every
//! context engine, must produce bit-identical architectural state to the
//! golden interpreter. Register values really flow through the ViReC
//! spill/fill machinery, so this exercises the tag store, rollback queue,
//! BSI, pinning, and the CSL end to end.

use virec::core::{CoreConfig, PolicyKind};
use virec::sim::runner::{run_prefetch_exact, run_single, RunOptions};
use virec::workloads::{suite, Layout};

const N: u64 = 256;

fn opts() -> RunOptions {
    RunOptions::default() // verify = true
}

#[test]
fn all_workloads_banked() {
    for w in suite(N, Layout::for_core(0)) {
        run_single(CoreConfig::banked(4), &w, &opts());
    }
}

#[test]
fn all_workloads_virec_full_context() {
    for w in suite(N, Layout::for_core(0)) {
        let regs = (4 * w.active_context_size()).max(12);
        run_single(CoreConfig::virec(4, regs), &w, &opts());
    }
}

#[test]
fn all_workloads_virec_starved_rf() {
    // The hardest case: 8 threads share a minimal RF — maximal spill/fill
    // traffic and constant eviction pressure.
    for w in suite(N, Layout::for_core(0)) {
        run_single(CoreConfig::virec(8, 12), &w, &opts());
    }
}

#[test]
fn all_workloads_all_policies() {
    for w in suite(N, Layout::for_core(0)) {
        for policy in PolicyKind::ALL {
            let mut cfg = CoreConfig::virec(4, 14);
            cfg.policy = policy;
            run_single(cfg, &w, &opts());
        }
    }
}

#[test]
fn all_workloads_nsf() {
    for w in suite(N, Layout::for_core(0)) {
        run_single(CoreConfig::nsf(4, 16), &w, &opts());
    }
}

#[test]
fn all_workloads_software() {
    for w in suite(N, Layout::for_core(0)) {
        run_single(CoreConfig::software(3), &w, &opts());
    }
}

#[test]
fn all_workloads_prefetch_full() {
    for w in suite(N, Layout::for_core(0)) {
        run_single(
            CoreConfig::prefetch_full(4, w.active_context_size()),
            &w,
            &opts(),
        );
    }
}

#[test]
fn all_workloads_prefetch_exact() {
    for w in suite(N, Layout::for_core(0)) {
        run_prefetch_exact(4, w.active_context_size(), &w, Default::default());
    }
}

#[test]
fn all_workloads_future_work_extensions() {
    // Group evictions and switch prefetching move extra register values
    // through the spill/fill machinery — they must stay bit-exact too.
    for w in suite(N, Layout::for_core(0)) {
        let mut cfg = CoreConfig::virec(6, 16);
        cfg.group_evict = 3;
        cfg.switch_prefetch = true;
        run_single(cfg, &w, &opts());
    }
}

#[test]
fn thread_count_sweep_on_gather() {
    let w = virec::workloads::kernels::spatter::gather(512, Layout::for_core(0));
    for threads in [1usize, 2, 3, 5, 7, 10] {
        let regs = (threads * 8).max(12);
        run_single(CoreConfig::virec(threads, regs), &w, &opts());
        run_single(CoreConfig::banked(threads), &w, &opts());
    }
}
