//! End-to-end: kernels compiled by `virec-cc` (at various register
//! budgets) run on the full ViReC core and must match the IR interpreter —
//! the complete §4.2 story, from register-allocation knob to near-memory
//! execution.

use virec::cc::ir::{BinOp, Cmp, Function, Operand, Stmt};
use virec::cc::{compile, Compiled};
use virec::core::{Core, CoreConfig, RegRegion};
use virec::isa::{FlatMem, Reg};
use virec::mem::{Fabric, FabricConfig};

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const FRAME_BASE: u64 = 0x8000;
const CODE_BASE: u64 = 0x4000_0000;

/// The gather kernel as IR: params t0=data, t1=idx, t2=n, t3=start,
/// t4=step. Σ data[idx[i]] for i = start, start+step, … < n.
fn gather_ir() -> Function {
    Function {
        name: "gather_cc".into(),
        params: vec![0, 1, 2, 3, 4],
        body: vec![
            Stmt::def_const(5, 0), // sum
            Stmt::def_copy(6, 3),  // i = start
            Stmt::While {
                cond: (Operand::Temp(6), Cmp::Lt, Operand::Temp(2)),
                body: vec![
                    Stmt::Load {
                        dst: 7,
                        base: 1,
                        index: Operand::Temp(6),
                    },
                    Stmt::Load {
                        dst: 8,
                        base: 0,
                        index: Operand::Temp(7),
                    },
                    Stmt::def_bin(5, BinOp::Add, Operand::Temp(5), Operand::Temp(8)),
                    Stmt::def_bin(6, BinOp::Add, Operand::Temp(6), Operand::Temp(4)),
                ],
            },
            Stmt::Return {
                value: Operand::Temp(5),
            },
        ],
    }
}

fn init_mem(mem: &mut FlatMem, n: u64) {
    for i in 0..n {
        mem.write_u64(DATA_BASE + i * 8, i * 17);
        mem.write_u64(DATA_BASE + n * 8 + i * 8, (i * 13) % n);
    }
}

/// Runs the compiled kernel on `nthreads` ViReC hardware threads and
/// returns each thread's x0 (the return value).
fn run_on_core(c: &Compiled, n: u64, nthreads: usize, phys_regs: usize) -> Vec<u64> {
    let mut mem = FlatMem::new(0, 0x100_000);
    init_mem(&mut mem, n);
    let region = RegRegion::new(REGION_BASE, nthreads);
    for t in 0..nthreads {
        let args = [DATA_BASE, DATA_BASE + n * 8, n, t as u64, nthreads as u64];
        for (i, &v) in args.iter().enumerate() {
            mem.write_u64(region.reg_addr(t, Reg::new(i as u8)), v);
        }
        // Per-thread spill frame.
        mem.write_u64(
            region.reg_addr(t, c.frame_reg),
            FRAME_BASE + t as u64 * 0x100,
        );
    }
    let cfg = CoreConfig::virec(nthreads, phys_regs);
    let mut core = Core::new(cfg, c.program.clone(), region, CODE_BASE, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(now < 50_000_000);
    }
    core.drain(&mut mem);
    (0..nthreads)
        .map(|t| core.arch_reg(t, Reg::new(0), &mem))
        .collect()
}

/// Reference answer straight from the IR interpreter.
fn golden(n: u64, nthreads: usize) -> Vec<u64> {
    let f = gather_ir();
    (0..nthreads)
        .map(|t| {
            let mut mem = FlatMem::new(0, 0x100_000);
            init_mem(&mut mem, n);
            virec::cc::ir::interpret(
                &f,
                &[DATA_BASE, DATA_BASE + n * 8, n, t as u64, nthreads as u64],
                &mut mem,
                10_000_000,
            )
            .value
        })
        .collect()
}

#[test]
fn compiled_gather_matches_ir_at_every_budget() {
    let n = 256;
    let nthreads = 4;
    let want = golden(n, nthreads);
    for budget in [2usize, 4, 8, 14] {
        let c = compile(&gather_ir(), budget).expect("compiles");
        let got = run_on_core(&c, n, nthreads, 48);
        assert_eq!(got, want, "budget {budget} diverged on the core");
    }
}

#[test]
fn graph_coloring_beats_linear_scan_at_tight_budgets() {
    use virec::cc::AllocStrategy;
    use virec::core::CoreConfig;
    use virec::sim::runner::{try_run_single, RunOptions};
    use virec::workloads::{gather_cc, Layout};

    let n = 256u64;
    let nthreads = 4;
    // Core 0's layout puts the data segment at this file's DATA_BASE and
    // the adapter seeds the same data/index values as init_mem, so the
    // golden answers line up.
    let layout = Layout::for_core(0);
    let want = golden(n, nthreads);

    for budget in [2usize, 3] {
        let g = gather_cc(n, layout, budget, AllocStrategy::GraphColor).unwrap();
        let l = gather_cc(n, layout, budget, AllocStrategy::LinearScan).unwrap();

        // Loop-depth-weighted spill costs keep hot temps in registers:
        // strictly fewer static reloads at tight budgets.
        assert!(
            g.compiled.spill_loads < l.compiled.spill_loads,
            "budget {budget}: graph {} reloads vs linear {}",
            g.compiled.spill_loads,
            l.compiled.spill_loads
        );
        assert!(g.compiled.spill_stores <= l.compiled.spill_stores);

        // Both allocations compute the same architectural answer.
        assert_eq!(run_on_core(&g.compiled, n, nthreads, 48), want);
        assert_eq!(run_on_core(&l.compiled, n, nthreads, 48), want);

        // Under the event-driven harness (with golden verification on),
        // the event-driven and dense loops agree byte-for-byte on the
        // architectural digest, and fewer reloads show up as cycles.
        let rg = try_run_single(
            CoreConfig::virec(nthreads, 32),
            &g.workload,
            &RunOptions::default(),
        )
        .unwrap();
        let rg_dense = try_run_single(
            CoreConfig::virec(nthreads, 32),
            &g.workload,
            &RunOptions {
                dense_loop: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(rg.arch_digest, rg_dense.arch_digest);
        let rl = try_run_single(
            CoreConfig::virec(nthreads, 32),
            &l.workload,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(
            rg.cycles < rl.cycles,
            "budget {budget}: graph {} cycles vs linear {}",
            rg.cycles,
            rl.cycles
        );
    }
}

#[test]
fn budget_controls_active_context() {
    // §4.2's effect on the paper's key metric: a lower register budget
    // shrinks the active (inner-loop) register context, at the cost of
    // extra spill instructions inside the loop.
    let big = compile(&gather_ir(), 14).unwrap();
    let small = compile(&gather_ir(), 4).unwrap();
    let ctx_of = |c: &Compiled| {
        virec::isa::analysis::RegisterUsage::analyze(&c.program).active_context_size()
    };
    let (big_ctx, small_ctx) = (ctx_of(&big), ctx_of(&small));
    assert!(
        small_ctx <= big_ctx,
        "4-register budget should not enlarge the active context \
         ({small_ctx} vs {big_ctx})"
    );
    assert!(small.spilled > 0);
    assert!(big.spilled == 0);
}

#[test]
fn tight_budget_costs_cycles_on_the_core() {
    let n = 512;
    let nthreads = 4;
    let run_cycles = |budget: usize| {
        let c = compile(&gather_ir(), budget).unwrap();
        let mut mem = FlatMem::new(0, 0x100_000);
        init_mem(&mut mem, n);
        let region = RegRegion::new(REGION_BASE, nthreads);
        for t in 0..nthreads {
            let args = [DATA_BASE, DATA_BASE + n * 8, n, t as u64, nthreads as u64];
            for (i, &v) in args.iter().enumerate() {
                mem.write_u64(region.reg_addr(t, Reg::new(i as u8)), v);
            }
            mem.write_u64(
                region.reg_addr(t, c.frame_reg),
                FRAME_BASE + t as u64 * 0x100,
            );
        }
        let cfg = CoreConfig::banked(nthreads);
        let mut core = Core::new(cfg, c.program.clone(), region, CODE_BASE, (0, 1));
        let mut fabric = Fabric::new(FabricConfig::default());
        let mut now = 0u64;
        while !core.done() {
            fabric.tick(now);
            core.tick(now, &mut fabric, &mut mem);
            now += 1;
            assert!(now < 50_000_000);
        }
        now
    };
    let generous = run_cycles(14);
    let starved = run_cycles(2);
    assert!(
        starved > generous,
        "spill code must cost cycles: {starved} vs {generous}"
    );
}
