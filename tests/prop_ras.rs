//! Property-based tests for the RAS layer's two stateful kernels: the
//! spare-row remap table ([`virec::mem::RemapTable`]) and the leaky-bucket
//! CE tracker ([`virec::sim::CeTracker`]).
//!
//! Four invariants, each over arbitrary operation sequences:
//!
//! 1. **No aliasing** — a remapped row never resolves onto a live row id
//!    or another spare; spares are pairwise distinct.
//! 2. **Round-trip stability** — once retired, a row's resolved location
//!    never changes, and data migrated to a spare at retirement time is
//!    still readable through the table after any later retirements.
//! 3. **Exhaustion degrades, never drops** — every retirement resolves to
//!    *somewhere* (spare or fence); the pool spends exactly
//!    `min(distinct_rows, pool)` spares and fences the rest.
//! 4. **The CE bucket never fires below threshold** — `observe` reports a
//!    retirement exactly when an independently-modeled leaky bucket
//!    reaches the threshold, and never when a region has seen fewer than
//!    `threshold` observations in total.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use virec::mem::{RemapTable, RetireOutcome, FENCE_ROW, SPARE_ROW_BASE};
use virec::sim::CeTracker;

/// Demand row keys stay tiny so collisions (idempotent re-retirement) are
/// common and far below [`SPARE_ROW_BASE`].
fn keys() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..32, 1..64)
}

proptest! {
    /// Invariant 1: resolved spare ids are pairwise distinct, disjoint
    /// from every demand key and from the fence row; healthy rows do not
    /// resolve at all.
    #[test]
    fn remapped_rows_never_alias_live_rows(seq in keys(), pool in 0u32..8) {
        let mut t = RemapTable::new(pool);
        for &k in &seq {
            t.retire(k);
        }
        for &k in &seq {
            let r = t.resolve(k).expect("retired rows must resolve");
            prop_assert!(
                r >= FENCE_ROW,
                "resolved id {r:#x} collides with demand row space"
            );
            prop_assert!(!seq.contains(&r));
            prop_assert!(r == FENCE_ROW || r >= SPARE_ROW_BASE);
        }
        // Distinct keys never share a spare.
        let mut by_key: HashMap<u64, u64> = HashMap::new();
        for &k in &seq {
            by_key.insert(k, t.resolve(k).unwrap());
        }
        let spared: Vec<u64> = by_key.values().copied().filter(|&r| r != FENCE_ROW).collect();
        let uniq: HashSet<u64> = spared.iter().copied().collect();
        prop_assert_eq!(spared.len(), uniq.len(), "two rows aliased one spare");
        // Healthy rows are untouched.
        for k in 32..40u64 {
            prop_assert_eq!(t.resolve(k), None);
        }
    }

    /// Invariant 2: retire → migrate → remap round-trips preserve data.
    /// A model store writes each row's payload at its resolved location
    /// when the row is retired onto a spare; after the whole sequence the
    /// payload is still readable through the (stable) table.
    #[test]
    fn data_survives_retirement_round_trips(seq in keys(), pool in 1u32..8) {
        let mut t = RemapTable::new(pool);
        let mut store: HashMap<u64, u64> = HashMap::new(); // resolved -> payload
        let mut pinned: HashMap<u64, u64> = HashMap::new(); // key -> resolved at retire time
        for &k in &seq {
            let out = t.retire(k);
            let loc = t.resolve(k).expect("just retired");
            match pinned.get(&k) {
                // Stability: re-retirement (checkpoint replay) cannot move it.
                Some(&prev) => prop_assert_eq!(prev, loc, "retired row moved"),
                None => {
                    pinned.insert(k, loc);
                    if matches!(out, RetireOutcome::Spared { .. }) {
                        // Migration: the row's payload lands on its spare.
                        store.insert(loc, 0xDA7A_0000 + k);
                    }
                }
            }
        }
        for (&k, &loc) in &pinned {
            prop_assert_eq!(t.resolve(k), Some(loc), "resolution drifted after later retirements");
            if loc != FENCE_ROW {
                prop_assert_eq!(store.get(&loc), Some(&(0xDA7A_0000 + k)), "migrated data lost");
            }
        }
    }

    /// Invariant 3: exhaustion always degrades. Every retirement gets a
    /// disposition, exactly `min(distinct, pool)` spares are spent, the
    /// remainder fence, and nothing is silently dropped from the table.
    #[test]
    fn exhaustion_always_degrades_never_drops(seq in keys(), pool in 0u32..8) {
        let mut t = RemapTable::new(pool);
        let mut outcomes: HashMap<u64, RetireOutcome> = HashMap::new();
        for &k in &seq {
            let out = t.retire(k);
            if let Some(prev) = outcomes.insert(k, out) {
                prop_assert_eq!(prev, out, "idempotent retire changed disposition");
            }
            prop_assert!(t.is_retired(k));
            prop_assert!(t.resolve(k).is_some(), "retired row dropped from the table");
        }
        let distinct = outcomes.len();
        let spared = outcomes
            .values()
            .filter(|o| matches!(o, RetireOutcome::Spared { .. }))
            .count();
        prop_assert_eq!(spared, distinct.min(pool as usize));
        prop_assert_eq!(t.spares_left() as usize, pool as usize - spared);
        prop_assert_eq!(t.retired(), distinct);
    }

    /// Invariant 4: the leaky bucket fires exactly at the threshold —
    /// never below it — against an independent reference model.
    #[test]
    fn ce_bucket_never_fires_below_threshold(
        obs in prop::collection::vec((0u64..4, 0u64..2_000), 1..128),
        threshold in 1u32..6,
        leak in prop_oneof![Just(0u64), 1u64..500],
    ) {
        let mut tracker = CeTracker::new(threshold, leak);
        // Deltas -> a monotone clock, as the runner guarantees.
        let mut model: HashMap<u64, (u32, u64)> = HashMap::new(); // key -> (level, last_leak)
        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut now = 0u64;
        for &(key, delta) in &obs {
            now += delta;
            let fired = tracker.observe(key, now);
            let (level, last_leak) = model.entry(key).or_insert((0, now));
            if leak > 0 && now > *last_leak {
                let periods = (now - *last_leak) / leak;
                *level = level.saturating_sub(periods as u32);
                *last_leak += periods * leak;
            }
            *level += 1;
            prop_assert_eq!(fired, *level >= threshold, "bucket diverged from model");
            let total = seen.entry(key).or_insert(0);
            *total += 1;
            if *total < threshold {
                prop_assert!(!fired, "fired below threshold: {} < {}", total, threshold);
            }
            prop_assert_eq!(tracker.level(key), *level);
        }
    }
}
