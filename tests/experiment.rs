//! The declarative experiment layer end to end: parallel execution must be
//! observably identical to serial execution (tables and JSON byte for
//! byte), failures must degrade to structured rows without taking sibling
//! cells down, and the budget-retry policy must be configurable.

use virec::bench::harness::{EngineSel, SuiteSweep};
use virec::core::{CoreConfig, EngineKind, PolicyKind};
use virec::sim::experiment::{
    builder, CellData, CellOutcome, Executor, ExperimentSpec, RetryPolicy,
};
use virec::sim::{RunDiagnostics, SimError};
use virec::workloads::{kernels, Layout};

fn small_sweep() -> SuiteSweep {
    SuiteSweep {
        name: "determinism_sweep".into(),
        workloads: vec!["gather".into(), "reduction".into(), "stride".into()],
        engines: vec![
            EngineSel::Banked,
            EngineSel::Virec(80),
            EngineSel::Virec(40),
            EngineSel::PrefetchExact,
        ],
        n: 256,
        threads: 4,
        retry: RetryPolicy::default(),
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let sweep = small_sweep();
    let spec = sweep.spec();
    let serial = Executor::new(1).run(&spec);
    let parallel = Executor::new(4).run(&spec);

    assert!(serial.all_ok(), "clean sweep: {:?}", serial.failures());
    assert_eq!(
        sweep.render(&serial),
        sweep.render(&parallel),
        "rendered tables must not depend on the worker count"
    );
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "result JSON must not depend on the worker count"
    );
    // Spot-check that results are keyed, not positional luck: every cell
    // agrees across executors.
    for cell in spec.cells() {
        assert_eq!(
            serial.cycles(&cell.key),
            parallel.cycles(&cell.key),
            "cell {} diverged between worker counts",
            cell.key
        );
    }
}

#[test]
fn failing_cell_degrades_without_aborting_siblings() {
    // One starved cell (a cycle budget no retry can rescue) in the middle
    // of healthy siblings, executed in parallel: it must surface as a
    // structured FAILED row while every sibling completes.
    let build = builder(kernels::spatter::gather, 256, Layout::for_core(0));
    let mut starved = CoreConfig::virec(4, 32);
    starved.max_cycles = 50;

    let mut spec = ExperimentSpec::new("degrade_sweep");
    let opts = Default::default();
    spec.single("before", build.clone(), CoreConfig::banked(4), &opts);
    spec.single("starved", build.clone(), starved, &opts);
    spec.single("after_a", build.clone(), CoreConfig::virec(4, 32), &opts);
    spec.single("after_b", build, CoreConfig::software(4), &opts);
    let res = Executor::new(4).run(&spec);

    assert_eq!(res.failed(), 1);
    match &res.cell("starved").outcome {
        CellOutcome::Failed { kind, .. } => assert_eq!(*kind, "cycle_budget"),
        other => panic!("a 50-cycle budget cannot complete gather: {other:?}"),
    }
    for key in ["before", "after_a", "after_b"] {
        assert!(res.run(key).is_some(), "sibling {key} must complete");
    }
    // The failure row is structured in the JSON, not just the table.
    let json = res.to_json();
    assert!(json.contains("\"status\": \"failed\""));
    assert!(json.contains("\"error_kind\": \"cycle_budget\""));
    assert_eq!(json.matches("\"status\": \"ok\"").count(), 3);
}

#[test]
fn retry_policy_is_configurable() {
    // Measure the clean run, then set a budget one cycle short of it.
    let w = kernels::spatter::gather(256, Layout::for_core(0));
    let clean =
        virec::sim::runner::try_run_single(CoreConfig::virec(4, 32), &w, &Default::default())
            .expect("clean gather completes");
    let mut tight = CoreConfig::virec(4, 32);
    tight.max_cycles = clean.cycles - 1;
    let build = builder(kernels::spatter::gather, 256, Layout::for_core(0));

    // Default policy (1 retry at 4x) rescues it...
    let mut spec = ExperimentSpec::new("retry_default");
    spec.single("tight", build.clone(), tight, &Default::default());
    let res = Executor::new(1).run(&spec);
    assert_eq!(res.run("tight").map(|r| r.cycles), Some(clean.cycles));

    // ...RetryPolicy::none() does not...
    let mut spec = ExperimentSpec::new("retry_none").with_retry(RetryPolicy::none());
    spec.single("tight", build.clone(), tight, &Default::default());
    let res = Executor::new(1).run(&spec);
    match &res.cell("tight").outcome {
        CellOutcome::Failed { kind, retried, .. } => {
            assert_eq!(*kind, "cycle_budget");
            assert!(!retried, "no-retry policy must not retry");
        }
        other => panic!("the tight budget should fail without a retry: {other:?}"),
    }

    // ...and a custom factor of 2 with one retry rescues it again.
    let mut spec = ExperimentSpec::new("retry_custom").with_retry(RetryPolicy {
        max_retries: 1,
        budget_factor: 2,
        ..RetryPolicy::default()
    });
    spec.single("tight", build, tight, &Default::default());
    let res = Executor::new(1).run(&spec);
    assert_eq!(res.run("tight").map(|r| r.cycles), Some(clean.cycles));
}

#[test]
fn panicking_custom_cell_becomes_a_failure_row() {
    let mut spec = ExperimentSpec::new("panic_sweep");
    spec.custom("boom", |_| panic!("cell exploded"));
    spec.custom("ok", |_| Ok(CellData::metrics([("cycles", 1.0)])));
    spec.custom("typed", |_| {
        Err(SimError::GoldenRunStuck {
            thread: 0,
            step_cap: 1,
            diag: Box::new(RunDiagnostics {
                workload: "unit".into(),
                engine: EngineKind::ViReC,
                policy: PolicyKind::Lrc,
                nthreads: 1,
                cycles: 1,
                instructions: 0,
                context_switches: 0,
                rf_misses: 0,
                last_commit_pc: vec![None],
            }),
        })
    });
    let res = Executor::new(3).run(&spec);

    assert_eq!(res.failed(), 2);
    match &res.cell("boom").outcome {
        CellOutcome::Failed { kind, error, .. } => {
            assert_eq!(*kind, "panic");
            assert!(error.contains("cell exploded"), "got: {error}");
        }
        other => panic!("the panicking cell must fail: {other:?}"),
    }
    match &res.cell("typed").outcome {
        CellOutcome::Failed { kind, .. } => assert_eq!(*kind, "golden_stuck"),
        other => panic!("the typed error must fail the cell: {other:?}"),
    }
    assert_eq!(res.cycles("ok"), Some(1));
}
