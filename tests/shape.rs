//! Qualitative "shape" tests: cheap versions of the paper's headline
//! results, asserted as orderings rather than absolute numbers. These run
//! on every `cargo test` so a regression in the simulator's physics is
//! caught immediately.

use virec::area::AreaModel;
use virec::core::{CoreConfig, PolicyKind};
use virec::sim::runner::{run_prefetch_exact, run_single, RunOptions};
use virec::workloads::{kernels, Layout};

fn opts() -> RunOptions {
    RunOptions::default()
}

fn gather(n: u64) -> virec::workloads::Workload {
    kernels::spatter::gather(n, Layout::for_core(0))
}

#[test]
fn multithreading_hides_memory_latency() {
    // §2: TLP is the latency-hiding lever for memory-intensive kernels.
    let w = gather(2048);
    let t1 = run_single(CoreConfig::banked(1), &w, &opts()).cycles;
    let t4 = run_single(CoreConfig::banked(4), &w, &opts()).cycles;
    let t8 = run_single(CoreConfig::banked(8), &w, &opts()).cycles;
    assert!(t4 * 2 < t1, "4 threads should at least halve runtime");
    assert!(t8 < t4, "8 threads should beat 4");
}

#[test]
fn virec_full_context_matches_banked_within_5_percent() {
    // Abstract: "ViReC achieves 95% of the performance of a banked
    // processor" with full context storage.
    let w = gather(2048);
    for threads in [4usize, 8] {
        let banked = run_single(CoreConfig::banked(threads), &w, &opts()).cycles as f64;
        let virec = run_single(CoreConfig::virec(threads, threads * 8), &w, &opts()).cycles as f64;
        assert!(
            banked / virec > 0.94,
            "{threads}t: ViReC-100% at {:.1}% of banked",
            100.0 * banked / virec
        );
    }
}

#[test]
fn virec_area_savings_hold_at_matched_performance() {
    let area = AreaModel::default();
    let savings = 1.0 - area.virec_core(64) / area.banked_core(8);
    assert!(savings > 0.35, "area savings {savings:.2} below 35%");
}

#[test]
fn performance_degrades_gracefully_with_context() {
    // Figure 9: smaller stored context -> monotonically lower performance,
    // but still a large fraction of banked.
    let w = gather(2048);
    let c40 = run_single(CoreConfig::virec(8, 26), &w, &opts()).cycles;
    let c60 = run_single(CoreConfig::virec(8, 39), &w, &opts()).cycles;
    let c80 = run_single(CoreConfig::virec(8, 52), &w, &opts()).cycles;
    let c100 = run_single(CoreConfig::virec(8, 64), &w, &opts()).cycles;
    assert!(
        c100 <= c80 && c80 <= c60 && c60 <= c40,
        "{c40} {c60} {c80} {c100}"
    );
    assert!(
        (c40 as f64) < 2.0 * c100 as f64,
        "40% context should stay within 2x of full context"
    );
}

#[test]
fn lrc_beats_plru_and_tracks_mrt_lru() {
    // Figure 12 orderings at high contention.
    let w = gather(2048);
    let run_policy = |p: PolicyKind| {
        let mut cfg = CoreConfig::virec(8, 26); // 40% context
        cfg.policy = p;
        run_single(cfg, &w, &opts())
    };
    let lrc = run_policy(PolicyKind::Lrc);
    let mrt_plru = run_policy(PolicyKind::MrtPlru);
    let plru = run_policy(PolicyKind::Plru);
    let mrt_lru = run_policy(PolicyKind::MrtLru);
    assert!(
        lrc.cycles < plru.cycles,
        "LRC ({}) must beat PLRU ({})",
        lrc.cycles,
        plru.cycles
    );
    assert!(
        mrt_plru.cycles < plru.cycles,
        "thread awareness must beat plain PLRU"
    );
    // "LRC performs within 0.3% of MRT-LRU" — allow 3% here at small n.
    let ratio = lrc.cycles as f64 / mrt_lru.cycles as f64;
    assert!(
        ratio < 1.03,
        "LRC should track perfect MRT-LRU (ratio {ratio:.3})"
    );
    assert!(
        lrc.stats.rf_hit_rate() > plru.stats.rf_hit_rate(),
        "LRC hit rate must exceed PLRU"
    );
}

#[test]
fn full_context_prefetch_is_worst() {
    // Figure 9: "prefetching the full context is almost always worse than a
    // caching approach, regardless of the size of ViReC".
    let w = gather(2048);
    let pf = run_single(CoreConfig::prefetch_full(8, 8), &w, &opts()).cycles;
    let virec40 = run_single(CoreConfig::virec(8, 26), &w, &opts()).cycles;
    assert!(
        pf > virec40,
        "pf_full {pf} must lose to ViReC-40% {virec40}"
    );
}

#[test]
fn exact_prefetch_beats_small_but_loses_to_large_virec() {
    // Figure 9: exact prefetch wins under high contention (vs 40% context)
    // but loses once ViReC can retain 80% of the contexts.
    let w = gather(4096);
    let pe = run_prefetch_exact(8, 8, &w, Default::default()).cycles;
    let virec40 = run_single(CoreConfig::virec(8, 26), &w, &opts()).cycles;
    let virec80 = run_single(CoreConfig::virec(8, 52), &w, &opts()).cycles;
    assert!(
        pe < virec40,
        "exact prefetch {pe} should beat ViReC-40% {virec40}"
    );
    assert!(
        virec80 < pe,
        "ViReC-80% {virec80} should beat exact prefetch {pe}"
    );
}

#[test]
fn software_switching_is_far_worse_than_hardware() {
    let w = gather(1024);
    let sw = run_single(CoreConfig::software(4), &w, &opts()).cycles;
    let banked = run_single(CoreConfig::banked(4), &w, &opts()).cycles;
    assert!(
        sw > 2 * banked,
        "software switching ({sw}) should be several times slower than banked ({banked})"
    );
}

#[test]
fn virec_beats_nsf() {
    // §6.1: ViReC improves over the NSF via LRC + BSI + pinning.
    let w = gather(2048);
    let virec = run_single(CoreConfig::virec(8, 52), &w, &opts()).cycles;
    let nsf = run_single(CoreConfig::nsf(8, 52), &w, &opts()).cycles;
    assert!(virec < nsf, "ViReC {virec} must beat NSF {nsf}");
}

#[test]
fn more_threads_with_smaller_context_win_when_latency_unhidden() {
    // §2: "a configuration with 32 registers that supports 4 threads at
    // 100% context can run 8 threads at 40% context with a speedup".
    let w = gather(4096);
    let four_full = run_single(CoreConfig::virec(4, 32), &w, &opts()).cycles;
    let eight_small = run_single(CoreConfig::virec(8, 32), &w, &opts()).cycles;
    assert!(
        eight_small < four_full,
        "8t x 40% ({eight_small}) should beat 4t x 100% ({four_full})"
    );
}

#[test]
fn smaller_dcache_hurts_virec_more_than_banked() {
    // Figure 13: pinned register lines contend for dcache capacity.
    let w = kernels::meabo::meabo(2048, Layout::for_core(0));
    let ratio = |size: usize| {
        let mut cv = CoreConfig::virec(8, 52);
        cv.dcache.size_bytes = size;
        let mut cb = CoreConfig::banked(8);
        cb.dcache.size_bytes = size;
        let v = run_single(cv, &w, &opts()).cycles as f64;
        let b = run_single(cb, &w, &opts()).cycles as f64;
        v / b
    };
    let small = ratio(2 * 1024);
    let large = ratio(16 * 1024);
    assert!(
        small > large,
        "ViReC/banked slowdown must grow as the dcache shrinks ({small:.3} vs {large:.3})"
    );
}

#[test]
fn spatter_patterns_order_by_locality() {
    // Spatter's point: dcache behaviour is driven by the index pattern.
    use virec::workloads::kernels::spatter::{gather_with_pattern, SpatterPattern};
    let n = 4096;
    let miss_rate = |p: SpatterPattern| {
        let w = gather_with_pattern(n, Layout::for_core(0), p);
        let r = run_single(CoreConfig::banked(4), &w, &opts());
        r.stats.dcache.miss_rate()
    };
    let stride1 = miss_rate(SpatterPattern::UniformStride(1));
    let ms1 = miss_rate(SpatterPattern::Ms1 { run: 8, gap: 56 });
    let random = miss_rate(SpatterPattern::UniformRandom);
    assert!(
        stride1 < random,
        "sequential gather ({stride1:.3}) must miss less than random ({random:.3})"
    );
    assert!(
        ms1 <= random + 0.02,
        "mostly-stride-1 ({ms1:.3}) should not exceed random ({random:.3})"
    );
}

#[test]
fn rrip_class_policies_unsuited_to_register_caching() {
    // §7: "Other policies [33, 44] sample cache sets to determine whether
    // cache items are recency-friendly or averse... which does not work for
    // registers as the reuse distance depends on the instruction and
    // context switch behavior." SRRIP must lose to LRC decisively.
    let w = gather(2048);
    let run_policy = |p: PolicyKind| {
        let mut cfg = CoreConfig::virec(8, 26);
        cfg.policy = p;
        run_single(cfg, &w, &opts())
    };
    let lrc = run_policy(PolicyKind::Lrc);
    let srrip = run_policy(PolicyKind::Srrip);
    assert!(
        lrc.cycles < srrip.cycles,
        "LRC ({}) must beat SRRIP ({})",
        lrc.cycles,
        srrip.cycles
    );
    assert!(
        lrc.stats.rf_hit_rate() > srrip.stats.rf_hit_rate() + 0.05,
        "re-reference prediction should clearly trail thread-aware policies"
    );
}
