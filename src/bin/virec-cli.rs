//! `virec-cli` — run ViReC simulations from the command line.
//!
//! ```text
//! virec-cli list
//! virec-cli run --workload gather --n 4096 --engine virec --threads 8 --regs 52
//! virec-cli run --workload spmv --engine banked --threads 4
//! virec-cli sweep --jobs 4 --workloads gather,spmv --engines banked,virec40,virec80
//! virec-cli area --threads 8 --regs 64
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;
use virec::area::AreaModel;
use virec::bench::harness::{self, EngineSel, SuiteSweep};
use virec::bench::tune::{pareto_front, pick_for_area, tune_sweep, TuneConfig};
use virec::cc::{regalloc, AllocStrategy};
use virec::core::{CoreConfig, EngineKind, PolicyKind};
use virec::mem::{FabricConfig, FabricTopology};
use virec::sim::experiment::{Executor, RetryPolicy};
use virec::sim::runner::default_checkpoint_interval;
use virec::sim::runner::{try_run_prefetch_exact, try_run_single, RunOptions};
use virec::sim::{
    interrupt_tokens, parse_sites, run_campaign_with, run_service, CampaignOptions, FaultClass,
    FaultPlan, FaultSite, InjectionOutcome, JournalConfig, ProtectionConfig, RasConfig,
    ServeConfig, ServeFaultPlan,
};
use virec::verify::{
    broken_fixture, broken_spill_report, lint_everything, lint_program, tv_compiled_budgets,
    LintConfig,
};
use virec::workloads::{by_name, suite_names, Layout};

fn usage() -> ExitCode {
    eprintln!(
        "virec-cli — ViReC near-memory multithreading simulator

USAGE:
    virec-cli list
    virec-cli run      --workload <name> [--n <elems>] [--engine <e>]
                       [--threads <t>] [--regs <r>] [--policy <p>] [--no-verify]
                       [--group-evict <g>] [--switch-prefetch] [--max-cycles <c>]
                       [--topology crossbar|mesh<C>x<R>]
    virec-cli sweep    [--jobs <j>] [--workloads <w1,w2,..>] [--n <elems>]
                       [--threads <t>] [--engines <e1,e2,..>] [--json <dir>]
                       [--max-retries <k>] [--budget-factor <f>] [--budget-cap <c>]
                       [--resume] [--deadline <ms>]
    virec-cli campaign [--workload <name>] [--n <elems>] [--engine virec|banked]
                       [--threads <t>] [--regs <r>] [--faults <k>] [--seed <s>]
                       [--protection none|parity|secded] [--multi-fault]
                       [--sites <s1,s2,..>] [--topology crossbar|mesh<C>x<R>]
                       [--fault-class transient|intermittent|stuck-at]
    virec-cli ras      [--workload <name>] [--n <elems>] [--engine virec|banked]
                       [--threads <t>] [--regs <r>] [--faults <k>] [--seed <s>]
                       [--fault-class intermittent|stuck-at]
                       [--scrub-interval <c>] [--spare-rows <k>] [--spare-ways <k>]
                       [--ce-threshold <k>] [--protection parity|secded]
    virec-cli serve    [--cores <c>] [--tasks <k>] [--rate <tasks/Mcycle>]
                       [--engine virec|banked] [--threads <t>] [--regs <r>]
                       [--n <elems>] [--queue-depth <d>] [--deadline <cycles>]
                       [--quarantine-after <k>] [--protection none|parity|secded]
                       [--faults <k>] [--sticky-cores <k>] [--stuck-cores <k>]
                       [--spare-rows <k>] [--seed <s>] [--no-verify]
                       [--topology crossbar|mesh<C>x<R>] [--link-faults <k>]
    virec-cli noc      [--workload <name>] [--n <elems>] [--threads <t>]
                       [--faults <k>] [--seed <s>]
                       [--topology mesh<C>x<R>]
    virec-cli lint     [--n <elems>] [--broken-fixture]
    virec-cli tv       [--broken-fixture]
    virec-cli tune     [--n <elems>] [--threads <t>] [--strategy graph|linear]
                       [--budgets <b1,b2,..>] [--capacities <c1,c2,..>]
                       [--area-budget <mm2>]
    virec-cli area     [--threads <t>] [--regs <r>]

ENGINES:  virec (default) | banked | software | prefetch_full | prefetch_exact | nsf
POLICIES: lrc (default) | mrt-plru | plru | lru | mrt-lru | fifo | random
SWEEP ENGINES: banked | software | virec<pct> | nsf<pct> | pf_full | pf_exact
    (e.g. virec80; the first engine is the normalization baseline)

Sweeps journal completed cells to <json-dir>/<name>.journal.jsonl. An
interrupted sweep (Ctrl-C, or a cell hitting --deadline is just a FAILED
row) exits 130; re-run the same command with --resume to replay journaled
cells and execute only the remainder."
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Boolean flags.
        if matches!(
            key,
            "no-verify" | "switch-prefetch" | "resume" | "broken-fixture" | "multi-fault"
        ) {
            out.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(val) = args.get(i + 1) else {
            return Err(format!("--{key} needs a value"));
        };
        out.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(out)
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "lrc" => PolicyKind::Lrc,
        "mrt-plru" | "mrtplru" => PolicyKind::MrtPlru,
        "plru" => PolicyKind::Plru,
        "lru" => PolicyKind::Lru,
        "mrt-lru" | "mrtlru" => PolicyKind::MrtLru,
        "fifo" => PolicyKind::Fifo,
        "random" => PolicyKind::Random,
        _ => return None,
    })
}

/// Parses the shared `--topology` flag into a fabric config (crossbar when
/// absent, so every legacy invocation is byte-identical).
fn parse_fabric(flags: &HashMap<String, String>) -> Result<FabricConfig, String> {
    let mut fabric = FabricConfig::default();
    if let Some(t) = flags.get("topology") {
        fabric.topology = t
            .parse::<FabricTopology>()
            .map_err(|e| format!("--topology: {e}"))?;
    }
    Ok(fabric)
}

fn cmd_run(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let Some(wname) = get("workload") else {
        eprintln!("error: --workload is required (see `virec-cli list`)");
        return ExitCode::from(2);
    };
    let n: u64 = get("n").map_or(Ok(4096), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(8), str::parse).unwrap_or(0);
    if n == 0 || threads == 0 {
        eprintln!("error: invalid --n or --threads");
        return ExitCode::from(2);
    }
    let Some(workload) = by_name(wname, n, Layout::for_core(0)) else {
        eprintln!("error: unknown workload {wname:?}; see `virec-cli list`");
        return ExitCode::from(2);
    };
    let default_regs = (threads * workload.active_context_size()).max(12);
    let regs: usize = get("regs")
        .map_or(Ok(default_regs), str::parse)
        .unwrap_or(0);
    if regs == 0 {
        eprintln!("error: invalid --regs");
        return ExitCode::from(2);
    }

    let engine = get("engine").unwrap_or("virec");
    let mut cfg = match engine {
        "virec" => CoreConfig::virec(threads, regs),
        "banked" => CoreConfig::banked(threads),
        "software" => CoreConfig::software(threads),
        "prefetch_full" => CoreConfig::prefetch_full(threads, workload.active_context_size()),
        "prefetch_exact" => CoreConfig::prefetch_exact(threads, workload.active_context_size()),
        "nsf" => CoreConfig::nsf(threads, regs),
        other => {
            eprintln!("error: unknown engine {other:?}");
            return ExitCode::from(2);
        }
    };
    if let Some(p) = get("policy") {
        let Some(p) = parse_policy(p) else {
            eprintln!("error: unknown policy {p:?}");
            return ExitCode::from(2);
        };
        cfg.policy = p;
    }
    if let Some(g) = get("group-evict") {
        cfg.group_evict = g.parse().unwrap_or(1);
    }
    if get("switch-prefetch").is_some() {
        cfg.switch_prefetch = true;
    }
    if let Some(c) = get("max-cycles") {
        let Ok(c) = c.parse() else {
            eprintln!("error: invalid --max-cycles");
            return ExitCode::from(2);
        };
        cfg.max_cycles = c;
    }
    let fabric = match parse_fabric(&flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = RunOptions {
        verify: get("no-verify").is_none(),
        fabric,
        ..RunOptions::default()
    };

    let result = if cfg.engine == EngineKind::PrefetchExact {
        try_run_prefetch_exact(
            threads,
            workload.active_context_size(),
            &workload,
            opts.fabric,
        )
    } else {
        try_run_single(cfg, &workload, &opts)
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            // One structured line: machine-greppable kind, then the full
            // error (which carries the diagnostics summary).
            eprintln!("error[{}]: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };

    println!("workload          : {} (n={n})", workload.name);
    println!(
        "engine            : {engine}, {threads} threads, {regs} regs, policy {:?}",
        cfg.policy
    );
    print!("{}", result.stats.report());
    ExitCode::SUCCESS
}

/// `virec-cli sweep` — a workloads × engines grid on the parallel
/// experiment executor. Tables and JSON are byte-identical for any
/// `--jobs`; a failed cell degrades to a FAILED row without aborting its
/// siblings, but does fail the exit status (for CI smoke use).
fn cmd_sweep(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let n: u64 = get("n").map_or(Ok(1024), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(8), str::parse).unwrap_or(0);
    let jobs: usize = get("jobs")
        .map_or_else(|| Ok(harness::jobs()), str::parse)
        .unwrap_or(0);
    if n == 0 || threads == 0 || jobs == 0 {
        eprintln!("error: invalid --n, --threads or --jobs");
        return ExitCode::from(2);
    }
    let workloads: Vec<String> = match get("workloads") {
        None => suite_names().iter().map(|s| s.to_string()).collect(),
        Some(list) => {
            let names: Vec<String> = list.split(',').map(str::to_string).collect();
            for name in &names {
                if by_name(name, 64, Layout::for_core(0)).is_none() {
                    eprintln!("error: unknown workload {name:?}; see `virec-cli list`");
                    return ExitCode::from(2);
                }
            }
            names
        }
    };
    let engine_list = get("engines").unwrap_or("banked,virec40,virec80");
    let mut engines = Vec::new();
    for s in engine_list.split(',') {
        let Some(e) = EngineSel::parse(s) else {
            eprintln!("error: unknown sweep engine {s:?} (see usage)");
            return ExitCode::from(2);
        };
        engines.push(e);
    }
    let defaults = RetryPolicy::default();
    let retry = RetryPolicy {
        // `--budget-retries` is the pre-generalization spelling; keep it
        // as an alias so existing scripts stay valid.
        max_retries: get("max-retries")
            .or_else(|| get("budget-retries"))
            .map_or(Ok(defaults.max_retries), str::parse)
            .unwrap_or(u32::MAX),
        budget_factor: get("budget-factor")
            .map_or(Ok(defaults.budget_factor), str::parse)
            .unwrap_or(0),
        scale_cap: get("budget-cap")
            .map_or(Ok(defaults.scale_cap), str::parse)
            .unwrap_or(0),
    };
    if retry.max_retries == u32::MAX || retry.budget_factor == 0 || retry.scale_cap == 0 {
        eprintln!("error: invalid --max-retries, --budget-factor or --budget-cap");
        return ExitCode::from(2);
    }

    // Resume/deadline come from the environment too (VIREC_RESUME,
    // VIREC_DEADLINE_MS, VIREC_INTERRUPT_AFTER); explicit flags win.
    let mut ctl = harness::SweepControl::from_env_and_args();
    if get("resume").is_some() {
        ctl.resume = true;
    }
    if let Some(ms) = get("deadline") {
        let Ok(ms) = ms.parse() else {
            eprintln!("error: invalid --deadline");
            return ExitCode::from(2);
        };
        ctl.deadline_ms = ms;
    }

    let sweep = SuiteSweep {
        name: "sweep".into(),
        workloads,
        engines,
        n,
        threads,
        retry,
    };
    let spec = sweep.spec();
    let start = Instant::now();
    let (drain, abort) = interrupt_tokens();
    let mut exec = Executor::new(jobs)
        .with_interrupts(drain, abort)
        .with_deadline_ms(ctl.deadline_ms);
    if let Some(k) = ctl.interrupt_after {
        exec = exec.with_interrupt_after(k);
    }
    let dir = get("json")
        .map(std::path::PathBuf::from)
        .or_else(harness::results_dir);
    let journal = dir.as_ref().map(|d| JournalConfig {
        dir: d.clone(),
        resume: ctl.resume,
    });
    let res = match exec.run_journaled(&spec, journal.as_ref()) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("[sweep] cell journal unavailable ({e}); running without crash-safety");
            exec.run(&spec)
        }
    };
    eprintln!(
        "[sweep] {} cell(s) on {} worker(s) in {:.2?}",
        spec.len(),
        jobs,
        start.elapsed()
    );
    if res.interrupted {
        eprintln!(
            "[sweep] interrupted: {} cell(s) not run; journal retained — re-run the same \
             command with --resume to pick up where this sweep left off",
            res.skipped()
        );
        return ExitCode::from(130);
    }
    print!("{}", sweep.render(&res));
    if let Some(dir) = dir {
        match res.write_json(&dir) {
            Ok(path) => eprintln!("[sweep] wrote {}", path.display()),
            Err(e) => eprintln!("[sweep] could not write results JSON: {e}"),
        }
    }
    res.print_failures();
    if res.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_campaign(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let wname = get("workload").unwrap_or("gather");
    let n: u64 = get("n").map_or(Ok(1024), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(4), str::parse).unwrap_or(0);
    let faults: usize = get("faults").map_or(Ok(64), str::parse).unwrap_or(0);
    let seed: u64 = get("seed").map_or(Ok(0xF00D_5EED), str::parse).unwrap_or(0);
    if n == 0 || threads == 0 || faults == 0 || seed == 0 {
        eprintln!("error: invalid --n, --threads, --faults or --seed");
        return ExitCode::from(2);
    }
    let Some(workload) = by_name(wname, n, Layout::for_core(0)) else {
        eprintln!("error: unknown workload {wname:?}; see `virec-cli list`");
        return ExitCode::from(2);
    };
    let regs: usize = get("regs")
        .map_or(
            Ok((threads * workload.active_context_size()).max(12)),
            |s| s.parse(),
        )
        .unwrap_or(0);
    let engine = get("engine").unwrap_or("virec");
    let (cfg, engine_sites) = match engine {
        "virec" => (CoreConfig::virec(threads, regs), &FaultSite::ALL[..]),
        "banked" => (CoreConfig::banked(threads), &FaultSite::NON_VRMU[..]),
        other => {
            eprintln!("error: campaign supports virec|banked, not {other:?}");
            return ExitCode::from(2);
        }
    };
    let fabric = match parse_fabric(&flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mesh = fabric.topology != FabricTopology::Crossbar;
    // --sites narrows the injection surface; sites the chosen engine does
    // not have (VRMU structures on banked) are rejected, not ignored. The
    // transport site exists on any engine — but only when the fabric has
    // links to corrupt.
    let site_exists =
        |s: &FaultSite| engine_sites.contains(s) || (*s == FaultSite::NocLink && mesh);
    let sites: Vec<FaultSite> = match get("sites") {
        None => engine_sites.to_vec(),
        Some(list) => match parse_sites(list) {
            Ok(requested) => {
                if let Some(bad) = requested.iter().find(|s| !site_exists(s)) {
                    if *bad == FaultSite::NocLink {
                        eprintln!(
                            "error: site noc-link needs a mesh fabric \
                             (pass --topology mesh<C>x<R>)"
                        );
                    } else {
                        eprintln!("error: site {bad} does not exist on the {engine} engine");
                    }
                    return ExitCode::from(2);
                }
                requested
            }
            Err(e) => {
                eprintln!("error: --sites: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let protection: ProtectionConfig = match get("protection").unwrap_or("none").parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: --protection: {e}");
            return ExitCode::from(2);
        }
    };
    let class: FaultClass = match get("fault-class").unwrap_or("transient").parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: --fault-class: {e}");
            return ExitCode::from(2);
        }
    };
    let campaign = CampaignOptions {
        protection,
        multi_fault: get("multi-fault").is_some(),
        // Mid-run recovery only makes sense with a detector in front of it.
        checkpoint_interval: if protection.is_none() {
            0
        } else {
            default_checkpoint_interval()
        },
        class,
        // Persistent defects are only survivable with the RAS layer; a
        // transient campaign keeps the historical no-RAS machine.
        ras: class.is_persistent().then(RasConfig::default),
        fabric,
    };

    // Crashed outcomes unwind through a panic; keep the report as the
    // only output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_campaign_with(cfg, &workload, faults, seed, &sites, &campaign)
    }));
    std::panic::set_hook(prev);
    let Ok(report) = report else {
        eprintln!("error[campaign]: the clean reference run failed");
        return ExitCode::FAILURE;
    };
    println!("{}", report.summary());
    if class.is_persistent() {
        println!("{}", report.ras_summary());
    }
    for rec in &report.records {
        match rec.outcome {
            InjectionOutcome::Silent => {
                println!("  SILENT escape: seed {} faults {:?}", rec.seed, rec.faults);
            }
            InjectionOutcome::Detected => {
                println!(
                    "  unrecovered detection: seed {} faults {:?}",
                    rec.seed, rec.faults
                );
            }
            _ => {}
        }
    }
    if !report.all_detected() {
        eprintln!("error[silent_fault]: an effectful fault escaped every checker");
        return ExitCode::FAILURE;
    }
    if !report.all_recovered() {
        eprintln!("error[unrecovered]: a detected injection did not recover on re-execution");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `virec-cli ras` — one protected run under a seeded persistent-fault
/// plan with the RAS layer on, reporting what the scrubber, CE tracker,
/// and spare pools did. A clean reference run sizes the injection window
/// and provides the digest the degraded machine must still reproduce.
fn cmd_ras(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let wname = get("workload").unwrap_or("gather");
    let n: u64 = get("n").map_or(Ok(1024), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(4), str::parse).unwrap_or(0);
    let faults: usize = get("faults").map_or(Ok(8), str::parse).unwrap_or(0);
    let seed: u64 = get("seed").map_or(Ok(0xF00D_5EED), str::parse).unwrap_or(0);
    if n == 0 || threads == 0 || faults == 0 || seed == 0 {
        eprintln!("error: invalid --n, --threads, --faults or --seed");
        return ExitCode::from(2);
    }
    let Some(workload) = by_name(wname, n, Layout::for_core(0)) else {
        eprintln!("error: unknown workload {wname:?}; see `virec-cli list`");
        return ExitCode::from(2);
    };
    let regs: usize = get("regs")
        .map_or(
            Ok((threads * workload.active_context_size()).max(12)),
            |s| s.parse(),
        )
        .unwrap_or(0);
    let engine = get("engine").unwrap_or("virec");
    let (cfg, sites) = match engine {
        "virec" => (CoreConfig::virec(threads, regs), &FaultSite::PERMANENT[..]),
        "banked" => (
            CoreConfig::banked(threads),
            &FaultSite::PERMANENT_NON_VRMU[..],
        ),
        other => {
            eprintln!("error: ras supports virec|banked, not {other:?}");
            return ExitCode::from(2);
        }
    };
    let class: FaultClass = match get("fault-class").unwrap_or("stuck-at").parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: --fault-class: {e}");
            return ExitCode::from(2);
        }
    };
    if !class.is_persistent() {
        eprintln!("error: the ras demo wants a persistent class (intermittent or stuck-at)");
        return ExitCode::from(2);
    }
    let mut rc = RasConfig::default();
    for (key, slot) in [
        ("scrub-interval", &mut rc.scrub_interval),
        ("ce-leak-interval", &mut rc.ce_leak_interval),
    ] {
        if let Some(v) = flags.get(key) {
            let Ok(v) = v.parse() else {
                eprintln!("error: invalid --{key}");
                return ExitCode::from(2);
            };
            *slot = v;
        }
    }
    for (key, slot) in [
        ("spare-rows", &mut rc.spare_rows),
        ("spare-ways", &mut rc.spare_ways),
        ("ce-threshold", &mut rc.ce_threshold),
    ] {
        if let Some(v) = flags.get(key) {
            let Ok(v) = v.parse() else {
                eprintln!("error: invalid --{key}");
                return ExitCode::from(2);
            };
            *slot = v;
        }
    }
    // RAS needs a detector in front of it: default to SEC-DED.
    let protection: ProtectionConfig = match get("protection").unwrap_or("secded").parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: --protection: {e}");
            return ExitCode::from(2);
        }
    };

    let clean = match try_run_single(cfg, &workload, &RunOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: clean reference run failed: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };
    let opts = RunOptions {
        faults: FaultPlan::seeded_class(seed, faults, (0, clean.cycles), sites, class),
        protection,
        checkpoint_interval: default_checkpoint_interval(),
        ras: Some(rc),
        ..RunOptions::default()
    };
    let r = match try_run_single(cfg, &workload, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "ras demo          : {} on {wname} (n={n}), {faults} {class} fault(s), seed {seed:#x}",
        engine
    );
    println!(
        "cycles            : clean {} vs ras {} ({:+.1}%)",
        clean.cycles,
        r.cycles,
        100.0 * (r.cycles as f64 / clean.cycles as f64 - 1.0)
    );
    println!("scrub reads       : {}", r.ras.scrub_reads);
    println!("ce observations   : {}", r.ras.ce_observations);
    println!(
        "retirements       : {} predictive, {} demand",
        r.ras.predictive_retirements, r.ras.demand_retirements
    );
    println!(
        "degraded regions  : {} (spares exhausted or unmaskable)",
        r.ras.degraded_regions
    );
    println!("migrated lines    : {}", r.ras.migrated_lines);
    println!("suppressed asserts: {}", r.ras.suppressed_assertions);
    for f in &r.faults_applied {
        println!("  {f}");
    }
    if r.arch_digest != clean.arch_digest {
        eprintln!("error[silent_fault]: degraded run diverged from the clean digest");
        return ExitCode::FAILURE;
    }
    println!(
        "arch digest       : {:#018x} (matches clean run)",
        r.arch_digest
    );
    ExitCode::SUCCESS
}

/// `virec-cli serve` — the fault-tolerant streaming task service: a seeded
/// arrival process dispatched onto a multi-core system through the bounded
/// admission queue, with retry, quarantine/failover, and typed shedding.
/// Exits nonzero when any task is lost, any task resolves twice, or any
/// completed task's state digest disagrees with the golden reference.
fn cmd_serve(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let cores: usize = get("cores").map_or(Ok(4), str::parse).unwrap_or(0);
    let tasks: usize = get("tasks").map_or(Ok(128), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(4), str::parse).unwrap_or(0);
    let n: u64 = get("n").map_or(Ok(64), str::parse).unwrap_or(0);
    let seed: u64 = get("seed").map_or(Ok(0xF00D_5EED), str::parse).unwrap_or(0);
    if cores == 0 || tasks == 0 || threads == 0 || n == 0 || seed == 0 {
        eprintln!("error: invalid --cores, --tasks, --threads, --n or --seed");
        return ExitCode::from(2);
    }
    let engine = get("engine").unwrap_or("virec");
    let core = match engine {
        "virec" => {
            let ctx = by_name("gather", n, Layout::for_core(0))
                .expect("gather is a suite workload")
                .active_context_size();
            let regs: usize = get("regs")
                .map_or(Ok((threads * ctx).max(12)), str::parse)
                .unwrap_or(0);
            if regs == 0 {
                eprintln!("error: invalid --regs");
                return ExitCode::from(2);
            }
            CoreConfig::virec(threads, regs)
        }
        "banked" => CoreConfig::banked(threads),
        other => {
            eprintln!("error: serve supports virec|banked, not {other:?}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = ServeConfig::streaming(cores, core, tasks, seed);
    cfg.mix = virec::sim::serve::default_mix(n);
    cfg.verify = get("no-verify").is_none();
    match parse_fabric(&flags) {
        Ok(f) => cfg.fabric = f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    // --rate is in tasks per million cycles; the service wants the mean
    // inter-arrival gap in cycles.
    if let Some(r) = get("rate") {
        let Ok(rate) = r.parse::<f64>() else {
            eprintln!("error: invalid --rate");
            return ExitCode::from(2);
        };
        if rate <= 0.0 {
            eprintln!("error: --rate must be positive");
            return ExitCode::from(2);
        }
        cfg.mean_interarrival = ((1.0e6 / rate) as u64).max(1);
    }
    if let Some(d) = get("queue-depth") {
        cfg.queue_depth = d.parse().unwrap_or(0);
    }
    if let Some(d) = get("deadline") {
        let Ok(d) = d.parse() else {
            eprintln!("error: invalid --deadline");
            return ExitCode::from(2);
        };
        cfg.deadline_cycles = d;
    }
    if let Some(q) = get("quarantine-after") {
        let Ok(q) = q.parse() else {
            eprintln!("error: invalid --quarantine-after");
            return ExitCode::from(2);
        };
        cfg.quarantine_after = q;
    }
    match get("protection").unwrap_or("none").parse() {
        Ok(p) => cfg.protection = p,
        Err(e) => {
            eprintln!("error: --protection: {e}");
            return ExitCode::from(2);
        }
    }
    let transient: usize = get("faults")
        .map_or(Ok(0), str::parse)
        .unwrap_or(usize::MAX);
    let sticky: usize = get("sticky-cores")
        .map_or(Ok(0), str::parse)
        .unwrap_or(usize::MAX);
    let stuck: usize = get("stuck-cores")
        .map_or(Ok(0), str::parse)
        .unwrap_or(usize::MAX);
    let link_faults: usize = get("link-faults")
        .map_or(Ok(0), str::parse)
        .unwrap_or(usize::MAX);
    if transient == usize::MAX
        || sticky == usize::MAX
        || stuck == usize::MAX
        || link_faults == usize::MAX
    {
        eprintln!("error: invalid --faults, --sticky-cores, --stuck-cores or --link-faults");
        return ExitCode::from(2);
    }
    if link_faults > 0 && cfg.fabric.topology == FabricTopology::Crossbar {
        eprintln!("error: --link-faults needs a mesh fabric (pass --topology mesh<C>x<R>)");
        return ExitCode::from(2);
    }
    cfg.faults = ServeFaultPlan::campaign(transient, sticky);
    cfg.faults.stuck_cores = stuck;
    cfg.faults.link_faults = link_faults;
    if stuck > 0 {
        // Stuck-at defects are only survivable with the RAS layer on.
        let mut rc = RasConfig::default();
        if let Some(v) = get("spare-rows") {
            let Ok(v) = v.parse() else {
                eprintln!("error: invalid --spare-rows");
                return ExitCode::from(2);
            };
            rc.spare_rows = v;
        }
        cfg.ras = Some(rc);
    }

    let report = match run_service(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary());
    if let Some(f) = &report.last_failure {
        eprintln!("[serve] last attempt failure: {f}");
    }
    if report.lost > 0 || report.duplicated > 0 || report.silent_corruptions > 0 {
        eprintln!(
            "error[accounting]: lost={} duplicated={} silent_corruptions={}",
            report.lost, report.duplicated, report.silent_corruptions
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `virec-cli noc` — the mesh-NoC resilience demo, four legs on one mesh:
/// a transient `noc-link` campaign (every wire upset CRC-caught and
/// retransmitted), a stuck-at campaign (the RAS layer predictively retires
/// the flaky link and routes around it), one instrumented single run
/// reporting the fabric's transport counters, and a faulty serve run whose
/// link loss shows up in availability while no task is lost.
fn cmd_noc(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let wname = get("workload").unwrap_or("gather");
    let n: u64 = get("n").map_or(Ok(512), str::parse).unwrap_or(0);
    let threads: usize = get("threads").map_or(Ok(4), str::parse).unwrap_or(0);
    let faults: usize = get("faults").map_or(Ok(32), str::parse).unwrap_or(0);
    let seed: u64 = get("seed").map_or(Ok(0xF00D_5EED), str::parse).unwrap_or(0);
    if n == 0 || threads == 0 || faults == 0 || seed == 0 {
        eprintln!("error: invalid --n, --threads, --faults or --seed");
        return ExitCode::from(2);
    }
    let Some(workload) = by_name(wname, n, Layout::for_core(0)) else {
        eprintln!("error: unknown workload {wname:?}; see `virec-cli list`");
        return ExitCode::from(2);
    };
    let mut fabric = match parse_fabric(&flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if fabric.topology == FabricTopology::Crossbar {
        fabric.topology = FabricTopology::Mesh { cols: 2, rows: 2 };
    }
    let regs = (threads * workload.active_context_size()).max(12);
    let cfg = CoreConfig::virec(threads, regs);
    let sites = [FaultSite::NocLink];
    println!(
        "noc demo          : virec on {wname} (n={n}), {} fabric, seed {seed:#x}",
        fabric.topology
    );

    // Leg 1 — transient wire upsets: the per-hop CRC catches every one and
    // the retransmission delivers a clean flit; no checker ever fires.
    let transient = CampaignOptions {
        fabric,
        ..CampaignOptions::default()
    };
    let report = run_campaign_with(cfg, &workload, faults, seed, &sites, &transient);
    println!("{}", report.summary());
    if !report.all_detected() || !report.all_recovered() {
        eprintln!("error[noc]: a transient link upset escaped the CRC layer");
        return ExitCode::FAILURE;
    }

    // Leg 2 — stuck-at links under the full RAS stack: the CE leaky bucket
    // retires the marginal link before it can do worse.
    let stuck = CampaignOptions {
        class: FaultClass::StuckAt {
            period: FaultClass::DEFAULT_PERIOD,
        },
        ras: Some(RasConfig::default()),
        fabric,
        ..CampaignOptions::protected()
    };
    let report = run_campaign_with(cfg, &workload, faults, seed, &sites, &stuck);
    println!("{}", report.summary());
    println!("{}", report.ras_summary());
    if !report.all_detected() || !report.all_recovered() {
        eprintln!("error[noc]: a stuck-at link fault was not contained");
        return ExitCode::FAILURE;
    }

    // Leg 3 — one instrumented run: hammer the first mesh link with a
    // stuck-at defect and report exactly what the transport layer did.
    let clean_opts = RunOptions {
        fabric,
        ..RunOptions::default()
    };
    let clean = match try_run_single(cfg, &workload, &clean_opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: clean reference run failed: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };
    let opts = RunOptions {
        faults: FaultPlan::single(virec::sim::FaultEvent {
            cycle: (clean.cycles / 4).max(1),
            site: FaultSite::NocLink,
            index: 0,
            bit: 0,
            class: FaultClass::StuckAt { period: 200 },
        }),
        protection: ProtectionConfig::secded(),
        checkpoint_interval: default_checkpoint_interval(),
        ras: Some(RasConfig::default()),
        fabric,
        ..RunOptions::default()
    };
    let r = match try_run_single(cfg, &workload, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "noc: hops={} crc_detected={} retransmissions={} links_retired={} links_fenced={}",
        r.fabric.noc_hops,
        r.fabric.noc_crc_detected,
        r.fabric.noc_retransmissions,
        r.fabric.noc_links_retired,
        r.fabric.noc_links_fenced,
    );
    for f in &r.faults_applied {
        println!("  {f}");
    }
    if r.arch_digest != clean.arch_digest {
        eprintln!("error[silent_fault]: the degraded mesh diverged from the clean digest");
        return ExitCode::FAILURE;
    }
    println!(
        "arch digest       : {:#018x} (matches clean run)",
        r.arch_digest
    );

    // Leg 4 — the streaming service on the same mesh under a link-wear
    // campaign: capacity shrinks with the lost links, accounting stays
    // exact.
    let mut scfg = ServeConfig::streaming(4, CoreConfig::banked(2), 32, seed);
    scfg.mix = virec::sim::serve::default_mix(n.min(64));
    scfg.fabric = fabric;
    scfg.faults = ServeFaultPlan::links(9);
    scfg.ras = Some(RasConfig::default());
    let report = match run_service(scfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind());
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary());
    if report.lost > 0 || report.duplicated > 0 || report.silent_corruptions > 0 {
        eprintln!(
            "error[accounting]: lost={} duplicated={} silent_corruptions={}",
            report.lost, report.duplicated, report.silent_corruptions
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `virec-cli lint` — the static-analysis gate: every built-in workload
/// kernel and every `virec-cc` output at every register budget must lint
/// clean. `--broken-fixture` lints a deliberately malformed program instead
/// (the CI negative control: it must exit nonzero with a stable
/// diagnostic).
fn cmd_lint(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    if get("broken-fixture").is_some() {
        let diags = lint_program(&broken_fixture(), &LintConfig::default());
        for d in &diags {
            println!("broken-fixture: {d}");
        }
        if diags.is_empty() {
            eprintln!("error: the broken fixture linted clean — the gate is not catching bugs");
        }
        // Nonzero either way: with diagnostics (the designed outcome) so
        // CI can assert the gate rejects malformed programs, and without
        // them because a gate that passes its negative control is broken.
        return ExitCode::FAILURE;
    }

    let n: u64 = get("n").map_or(Ok(256), str::parse).unwrap_or(0);
    if n == 0 {
        eprintln!("error: invalid --n");
        return ExitCode::from(2);
    }
    let lints = lint_everything(n);
    let mut dirty = 0usize;
    for l in &lints {
        if l.is_clean() {
            println!("lint: {:<22} clean", l.name);
        } else {
            dirty += 1;
            for d in &l.diagnostics {
                println!("lint: {:<22} {d}", l.name);
            }
        }
    }
    println!(
        "lint: {} program(s), {} with diagnostics",
        lints.len(),
        dirty
    );
    if dirty == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_tv(flags: HashMap<String, String>) -> ExitCode {
    if flags.contains_key("broken-fixture") {
        let r = broken_spill_report();
        for v in &r.violations {
            println!("broken-fixture: {v}");
        }
        if r.is_valid() {
            eprintln!(
                "error: the broken spill fixture validated clean — the gate is not \
                 catching miscompiles"
            );
        }
        // Nonzero either way, mirroring `lint --broken-fixture`.
        return ExitCode::FAILURE;
    }

    let reports = tv_compiled_budgets();
    let mut bad = 0usize;
    for r in &reports {
        if r.is_valid() {
            println!(
                "tv: {:<28} validated ({} concrete case(s))",
                r.name, r.cases_run
            );
        } else {
            bad += 1;
            for v in &r.violations {
                println!("tv: {:<28} {v}", r.name);
            }
        }
    }
    println!("tv: {} program(s), {} with violations", reports.len(), bad);
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_tune(flags: HashMap<String, String>) -> ExitCode {
    let get = |k: &str| flags.get(k).map(|s| s.as_str());
    let mut cfg = TuneConfig::default();
    if let Some(s) = get("n") {
        match s.parse() {
            Ok(n) if n > 0 => cfg.n = n,
            _ => {
                eprintln!("error: invalid --n");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(s) = get("threads") {
        match s.parse() {
            Ok(t) if t > 0 => cfg.nthreads = t,
            _ => {
                eprintln!("error: invalid --threads");
                return ExitCode::from(2);
            }
        }
    }
    match get("strategy") {
        None | Some("graph") => cfg.strategy = AllocStrategy::GraphColor,
        Some("linear") => cfg.strategy = AllocStrategy::LinearScan,
        Some(s) => {
            eprintln!("error: unknown strategy {s:?} (graph|linear)");
            return ExitCode::from(2);
        }
    }
    let parse_list = |s: &str| -> Result<Vec<usize>, String> {
        s.split(',')
            .map(|p| p.trim().parse::<usize>().map_err(|_| p.to_string()))
            .collect::<Result<_, _>>()
            .map_err(|p| format!("invalid list element {p:?}"))
    };
    if let Some(s) = get("budgets") {
        match parse_list(s) {
            Ok(b) if !b.is_empty() => cfg.budgets = b,
            _ => {
                eprintln!("error: invalid --budgets");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(s) = get("capacities") {
        match parse_list(s) {
            Ok(c) if !c.is_empty() => cfg.capacities = c,
            _ => {
                eprintln!("error: invalid --capacities");
                return ExitCode::from(2);
            }
        }
    }
    // Surface out-of-range budgets as the allocator's typed diagnostic
    // instead of a panic deep inside the sweep.
    for &b in &cfg.budgets {
        if let Err(e) = regalloc::pool(b) {
            eprintln!("error[alloc]: {e}");
            return ExitCode::from(2);
        }
    }

    let points = tune_sweep(&cfg);
    if points.is_empty() {
        eprintln!("error: no sweep point completed (capacities too small?)");
        return ExitCode::FAILURE;
    }
    println!(
        "tune: {} point(s) over budgets {:?} x capacities {:?} (strategy={}, n={}, threads={})",
        points.len(),
        cfg.budgets,
        cfg.capacities,
        cfg.strategy.name(),
        cfg.n,
        cfg.nthreads
    );
    for p in &points {
        println!(
            "tune: budget={:<2} capacity={:<3} cycles={:<9} area_mm2={:.4} spilled={} \
             spill_loads={} spill_stores={} ipc={:.3}",
            p.budget,
            p.capacity,
            p.cycles,
            p.area_mm2,
            p.spilled,
            p.spill_loads,
            p.spill_stores,
            p.ipc
        );
    }
    println!();
    for p in pareto_front(&points) {
        println!(
            "pareto: budget={} capacity={} cycles={} area_mm2={:.4} spill_loads={}",
            p.budget, p.capacity, p.cycles, p.area_mm2, p.spill_loads
        );
    }
    if let Some(s) = get("area-budget") {
        let Ok(envelope) = s.parse::<f64>() else {
            eprintln!("error: invalid --area-budget");
            return ExitCode::from(2);
        };
        match pick_for_area(&points, envelope) {
            Some(p) => println!(
                "pick: area envelope {envelope:.4} mm2 -> budget={} capacity={} \
                 ({} cycles, {:.4} mm2)",
                p.budget, p.capacity, p.cycles, p.area_mm2
            ),
            None => {
                eprintln!("error: no point fits the {envelope:.4} mm2 envelope");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_area(flags: HashMap<String, String>) -> ExitCode {
    let threads: usize = flags
        .get("threads")
        .map_or(Ok(8), |s| s.parse())
        .unwrap_or(8);
    let regs: usize = flags
        .get("regs")
        .map_or(Ok(64), |s| s.parse())
        .unwrap_or(64);
    let m = AreaModel::default();
    println!("area model (45 nm):");
    println!("  base core          : {:.3} mm²", m.base_core_mm2);
    println!(
        "  banked, {threads} banks     : {:.3} mm²",
        m.banked_core(threads)
    );
    println!(
        "  virec, {regs} regs      : {:.3} mm²  (RF {:.3} + tag {:.3} + logic {:.3})",
        m.virec_core(regs),
        m.rf_area(regs),
        m.tag_store_area(regs),
        m.vrmu_logic_area(regs)
    );
    println!(
        "  savings vs banked  : {:.1}%",
        100.0 * (1.0 - m.virec_core(regs) / m.banked_core(threads))
    );
    println!(
        "  RF delay           : virec {:.3} ns, banked {:.3} ns",
        m.virec_rf_delay(regs),
        m.banked_rf_delay(threads)
    );
    let e = virec::area::EccAreaModel::default();
    let r = virec::area::RasAreaModel::default();
    println!(
        "protected + RAS (secded, {} spare rows, {} spare ways, scrubber):",
        r.spare_rows, r.spare_ways
    );
    println!(
        "  virec ras bill     : {:.4} mm²  (spare ways {:.4} + remap {:.4} + scrub {:.4} + CE {:.4})",
        r.virec_overhead(&m, regs).total_mm2(),
        r.virec_overhead(&m, regs).spare_way_mm2,
        r.virec_overhead(&m, regs).remap_mm2,
        r.virec_overhead(&m, regs).scrubber_mm2,
        r.virec_overhead(&m, regs).trackers_mm2,
    );
    println!(
        "  banked ras bill    : {:.4} mm²",
        r.banked_overhead(&m, threads).total_mm2()
    );
    println!(
        "  savings vs banked  : {:.1}%  (both designs with ECC + RAS)",
        100.0 * (1.0 - r.virec_core(&m, &e, regs) / r.banked_core(&m, &e, threads))
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("available workloads:");
            for name in suite_names() {
                let w = by_name(name, 64, Layout::for_core(0)).expect("suite entry");
                println!(
                    "  {name:<15} active context = {:>2} registers, {} static instrs",
                    w.active_context_size(),
                    w.program().len()
                );
            }
            ExitCode::SUCCESS
        }
        "run" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_run(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "sweep" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_sweep(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "campaign" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_campaign(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "ras" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_ras(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "serve" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_serve(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "noc" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_noc(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "lint" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_lint(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "tv" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_tv(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "tune" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_tune(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        "area" => match parse_flags(&args[1..]) {
            Ok(flags) => cmd_area(flags),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        _ => usage(),
    }
}
