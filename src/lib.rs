#![warn(missing_docs)]

//! # ViReC — Virtual Register Context architecture simulator
//!
//! A from-scratch reproduction of *"ViReC: The Virtual Register Context
//! Architecture for Efficient Near-Memory Multithreading"* (ICPP 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — AArch64-flavoured mini-ISA, assembler, golden interpreter.
//! * [`mem`] — caches with register-line pinning, DDR5-like DRAM, crossbar.
//! * [`core`] — the in-order CGMT pipeline, the VRMU with the LRC policy,
//!   and all baseline context engines (banked, software, prefetching, NSF).
//! * [`workloads`] — the memory-intensive kernels of the paper's evaluation.
//! * [`sim`] — multi-core systems, task offload, the declarative
//!   experiment layer and its parallel executor.
//! * [`area`] — the analytic area/delay model (CACTI-like, 45 nm).
//! * [`cc`] — a mini-compiler with a configurable register budget (§4.2).
//! * [`verify`] — CFG/dataflow static analysis: the lint gate behind
//!   `virec-cli lint`, exact-liveness prefetch oracles, and LRC live-bit
//!   cross-checks.
//! * [`bench`] — the shared sweep harness behind the fig*/table* binaries
//!   and `virec-cli sweep`.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

pub use virec_area as area;
pub use virec_bench as bench;
pub use virec_cc as cc;
pub use virec_core as core;
pub use virec_isa as isa;
pub use virec_mem as mem;
pub use virec_sim as sim;
pub use virec_verify as verify;
pub use virec_workloads as workloads;
