//! Property-based compiler testing: random IR functions, compiled at random
//! register budgets, must agree with the IR interpreter on the returned
//! value and on every memory effect.

use proptest::prelude::*;
use virec_cc::compile;
use virec_cc::ir::{interpret, BinOp, Cmp, Function, Operand, Stmt};
use virec_isa::{ExecOutcome, FlatMem, Interpreter, Reg, ThreadCtx};

const DATA_BASE: u64 = 0x1000;
const FRAME_BASE: u64 = 0x8000;

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

/// A random straight-line body over temps `0..k`, with memory ops through
/// the param-0 base pointer masked to a safe window by construction
/// (indices come from `Const(0..64)`).
fn straight_line(len: usize) -> impl Strategy<Value = Vec<Stmt>> {
    // temps 0..5 are params; defs extend the defined set sequentially.
    prop::collection::vec((0u8..4, binop(), any::<u16>(), 0i64..64), 1..len).prop_map(|ops| {
        let mut defined = 5u32; // params 0..=4
        let mut body = Vec::new();
        for (kind, op, sel, idx) in ops {
            match kind {
                0 | 1 => {
                    // def: dst is a fresh temp (always defined onward).
                    let a = Operand::Temp(sel as u32 % defined);
                    let b = Operand::Temp((sel as u32 / 7) % defined);
                    body.push(Stmt::def_bin(defined, op, a, b));
                    defined += 1;
                }
                2 => {
                    // load from the base (param 0) at a bounded index.
                    body.push(Stmt::Load {
                        dst: defined,
                        base: 0,
                        index: Operand::Const(idx),
                    });
                    defined += 1;
                }
                _ => {
                    // store a defined temp at a bounded index.
                    body.push(Stmt::Store {
                        src: Operand::Temp(sel as u32 % defined),
                        base: 0,
                        index: Operand::Const(idx),
                    });
                }
            }
        }
        // Return the last defined temp.
        body.push(Stmt::Return {
            value: Operand::Temp(defined - 1),
        });
        body
    })
}

fn run_compiled(f: &Function, budget: usize, args: &[u64], mem: &mut FlatMem) -> u64 {
    let c = compile(f, budget).expect("compiles");
    let mut ctx = ThreadCtx::new();
    for (i, &v) in args.iter().enumerate() {
        ctx.set(Reg::new(i as u8), v);
    }
    ctx.set(c.frame_reg, FRAME_BASE);
    let out = Interpreter::new(&c.program, mem).run(&mut ctx, 10_000_000);
    assert!(matches!(out, ExecOutcome::Halted { .. }));
    ctx.get(Reg::new(0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn compiled_straight_line_matches_ir(
        body in straight_line(24),
        budget in 1usize..=17,
        seed in any::<u64>(),
    ) {
        let f = Function {
            name: "prop".into(),
            params: vec![0, 1, 2, 3, 4],
            body,
        };
        let args = [
            DATA_BASE,
            seed & 0xFFFF,
            seed >> 17,
            seed.rotate_left(9) & 0xFFFF,
            seed.rotate_right(23) & 0xFFFF,
        ];
        let mut ir_mem = FlatMem::new(0, 0x10_000);
        let want = interpret(&f, &args, &mut ir_mem, 1_000_000).value;

        let mut mc_mem = FlatMem::new(0, 0x10_000);
        let got = run_compiled(&f, budget, &args, &mut mc_mem);
        prop_assert_eq!(got, want, "return value diverged at budget {}", budget);
        // Memory effects identical outside the frame.
        prop_assert_eq!(
            &mc_mem.bytes()[..FRAME_BASE as usize],
            &ir_mem.bytes()[..FRAME_BASE as usize]
        );
    }

    #[test]
    fn compiled_counted_loop_matches_ir(
        iters in 1u8..30,
        op in binop(),
        budget in 1usize..=17,
        c0 in -50i64..50,
    ) {
        // acc = fold(op) over i in 0..iters starting from c0.
        let f = Function {
            name: "loop".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, c0),
                Stmt::def_const(1, 0),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(iters as i64)),
                    body: vec![
                        Stmt::def_bin(0, op, Operand::Temp(0), Operand::Temp(1)),
                        Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return { value: Operand::Temp(0) },
            ],
        };
        let mut ir_mem = FlatMem::new(0, 0x10_000);
        let want = interpret(&f, &[], &mut ir_mem, 1_000_000).value;
        let mut mc_mem = FlatMem::new(0, 0x10_000);
        let got = run_compiled(&f, budget, &[], &mut mc_mem);
        prop_assert_eq!(got, want);
    }
}
