//! Emission: allocated linear code → a `virec-isa` program.
//!
//! Temporaries living in frame slots are reloaded into scratch registers
//! before each use and written back after each definition — the ordinary
//! load/store spill code of §4.2.
//!
//! Every emitted machine instruction is tagged with an [`EmitTag`]
//! describing *why* it exists (a spill reload, a spill writeback, or the
//! translation of a specific virtual instruction). The tag stream is the
//! witness `virec-verify`'s translation validator replays against the
//! pre-allocation IR: it lets the checker pair each `Slot(n)` reload with
//! the stores that reach it and confine scratch registers to their
//! instruction group.

use crate::ir::{BinOp, Function};
use crate::lower::{lower, VIndex, VInst, VOp};
use crate::regalloc::{
    allocate_with, liveness_divergence, AllocError, AllocStrategy, Allocation, LivenessDivergence,
    Loc, FRAME_PTR, SCRATCH0, SCRATCH1, SCRATCH2,
};
use std::collections::HashMap;
use virec_isa::instr::Operand2;
use virec_isa::{AluOp, Asm, Instr, MemOffset, Program, Reg};

/// Compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Budget outside `1..=17`.
    BudgetOutOfRange(usize),
    /// More than 8 parameters.
    TooManyParams(usize),
}

impl From<AllocError> for CompileError {
    fn from(e: AllocError) -> CompileError {
        match e {
            AllocError::BudgetOutOfRange(b) => CompileError::BudgetOutOfRange(b),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BudgetOutOfRange(b) => {
                write!(f, "register budget {b} outside 1..=17")
            }
            CompileError::TooManyParams(n) => write!(f, "{n} parameters exceed the 8-register ABI"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Provenance of one emitted machine instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitTag {
    /// Spill reload: `temp` (resident in frame slot `slot`) loaded into a
    /// scratch register for the uses of virtual instruction `vinst`.
    Reload {
        /// Index into [`Compiled::vcode`].
        vinst: usize,
        /// The slot-resident temporary.
        temp: u32,
        /// Its frame slot.
        slot: u32,
    },
    /// Spill writeback: `temp`'s freshly computed value stored to its
    /// frame slot after virtual instruction `vinst`.
    Spill {
        /// Index into [`Compiled::vcode`].
        vinst: usize,
        /// The slot-resident temporary.
        temp: u32,
        /// Its frame slot.
        slot: u32,
    },
    /// Direct translation of virtual instruction `vinst`.
    Op {
        /// Index into [`Compiled::vcode`].
        vinst: usize,
    },
}

/// A compiled function.
#[derive(Debug)]
pub struct Compiled {
    /// The executable program (ends in `halt`; result in `x0`).
    pub program: Program,
    /// Frame slots the function needs (bytes = `8 * frame_slots`).
    pub frame_slots: u32,
    /// The frame-pointer register the caller must initialize (per thread).
    pub frame_reg: Reg,
    /// ABI registers carrying the parameters, in order.
    pub param_regs: Vec<Reg>,
    /// Temporaries that were spilled by the allocator.
    pub spilled: usize,
    /// The register budget the function was compiled with.
    pub budget: usize,
    /// The allocator strategy used.
    pub strategy: AllocStrategy,
    /// The lowered virtual code the program was emitted from (the
    /// translation validator's reference).
    pub vcode: Vec<VInst>,
    /// The allocation (temp → register/slot) the emitter consumed.
    pub alloc: Allocation,
    /// Per-machine-instruction provenance, parallel to `program`.
    pub emit_map: Vec<EmitTag>,
    /// Static spill reloads emitted (`ldr` from the frame).
    pub spill_loads: usize,
    /// Static spill writebacks emitted (`str` to the frame).
    pub spill_stores: usize,
    /// Warn-level diagnostics: temps whose flat live interval
    /// over-approximates CFG-exact liveness (what linear scan pays for).
    pub divergences: Vec<LivenessDivergence>,
}

fn alu_of(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Orr,
        BinOp::Xor => AluOp::Eor,
        BinOp::Shl => AluOp::Lsl,
        BinOp::Shr => AluOp::Lsr,
    }
}

/// Compiles `f` with `budget` allocatable registers (§4.2's knob) using
/// the default graph-coloring allocator.
pub fn compile(f: &Function, budget: usize) -> Result<Compiled, CompileError> {
    compile_with(f, budget, AllocStrategy::default())
}

/// Compiles `f` with an explicit allocation strategy.
pub fn compile_with(
    f: &Function,
    budget: usize,
    strategy: AllocStrategy,
) -> Result<Compiled, CompileError> {
    if f.params.len() > 8 {
        return Err(CompileError::TooManyParams(f.params.len()));
    }
    let low = lower(f);
    let alloc = allocate_with(&low.code, budget, strategy)?;
    let divergences = liveness_divergence(&low.code);

    let mut asm = Asm::new(&f.name);
    let mut tags: Vec<EmitTag> = Vec::new();

    /// Hands out the three spill-scratch registers in order.
    struct ScratchAlloc {
        next: usize,
    }
    impl ScratchAlloc {
        fn take(&mut self) -> Reg {
            let r = [SCRATCH0, SCRATCH1, SCRATCH2][self.next];
            self.next += 1;
            r
        }
    }

    for (vi, inst) in low.code.iter().enumerate() {
        // Per-instruction scratch assignment for slot-resident temps.
        let mut scratch_map: HashMap<u32, Reg> = HashMap::new();
        let mut salloc = ScratchAlloc { next: 0 };

        macro_rules! src_reg {
            ($t:expr) => {{
                let t: u32 = $t;
                match alloc.locs[&t] {
                    Loc::Reg(r) => r,
                    Loc::Slot(s) => {
                        if let Some(&r) = scratch_map.get(&t) {
                            r
                        } else {
                            let r = salloc.take();
                            scratch_map.insert(t, r);
                            asm.emit(Instr::Ldr {
                                dst: r,
                                base: FRAME_PTR,
                                offset: MemOffset::Imm(s as i64 * 8),
                                size: virec_isa::AccessSize::B8,
                            });
                            tags.push(EmitTag::Reload {
                                vinst: vi,
                                temp: t,
                                slot: s,
                            });
                            r
                        }
                    }
                }
            }};
        }

        // Destination register (scratch for slot-resident dsts) plus the
        // writeback emitted after the computation. The closure may emit
        // zero or more instructions; the tag stream is padded to match.
        macro_rules! with_dst {
            ($t:expr, $emit:expr) => {{
                let t: u32 = $t;
                let (reg, slot) = match alloc.locs[&t] {
                    Loc::Reg(r) => (r, None),
                    Loc::Slot(s) => {
                        let r = if let Some(&r) = scratch_map.get(&t) {
                            r
                        } else {
                            salloc.take()
                        };
                        (r, Some(s))
                    }
                };
                let before = asm.here();
                #[allow(clippy::redundant_closure_call)]
                ($emit)(reg);
                for _ in before..asm.here() {
                    tags.push(EmitTag::Op { vinst: vi });
                }
                if let Some(s) = slot {
                    asm.emit(Instr::Str {
                        src: reg,
                        base: FRAME_PTR,
                        offset: MemOffset::Imm(s as i64 * 8),
                        size: virec_isa::AccessSize::B8,
                    });
                    tags.push(EmitTag::Spill {
                        vinst: vi,
                        temp: t,
                        slot: s,
                    });
                }
            }};
        }

        macro_rules! op {
            () => {
                tags.push(EmitTag::Op { vinst: vi })
            };
        }

        match *inst {
            VInst::Param { dst, index } => {
                let abi = Reg::new(index as u8);
                with_dst!(dst, |r: Reg| {
                    if r != abi {
                        asm.mov(r, abi);
                    }
                });
            }
            VInst::MovImm { dst, imm } => {
                with_dst!(dst, |r: Reg| asm.mov_imm(r, imm));
            }
            VInst::Mov { dst, src } => {
                let s = src_reg!(src);
                with_dst!(dst, |r: Reg| {
                    if r != s {
                        asm.mov(r, s);
                    }
                });
            }
            VInst::Bin { op, dst, a, b } => {
                let ar = src_reg!(a);
                let rhs = match b {
                    VOp::Temp(t) => Operand2::Reg(src_reg!(t)),
                    VOp::Imm(i) => Operand2::Imm(i),
                };
                with_dst!(dst, |r: Reg| asm.emit(Instr::Alu {
                    op: alu_of(op),
                    dst: r,
                    src: ar,
                    rhs,
                }));
            }
            VInst::Load { dst, base, index } => {
                let br = src_reg!(base);
                let offset = match index {
                    VIndex::Temp(t) => MemOffset::RegShifted {
                        index: src_reg!(t),
                        shift: 3,
                    },
                    VIndex::ByteOff(o) => MemOffset::Imm(o),
                };
                with_dst!(dst, |r: Reg| asm.emit(Instr::Ldr {
                    dst: r,
                    base: br,
                    offset,
                    size: virec_isa::AccessSize::B8,
                }));
            }
            VInst::Store { src, base, index } => {
                let sr = src_reg!(src);
                let br = src_reg!(base);
                let offset = match index {
                    VIndex::Temp(t) => MemOffset::RegShifted {
                        index: src_reg!(t),
                        shift: 3,
                    },
                    VIndex::ByteOff(o) => MemOffset::Imm(o),
                };
                asm.emit(Instr::Str {
                    src: sr,
                    base: br,
                    offset,
                    size: virec_isa::AccessSize::B8,
                });
                op!();
            }
            VInst::Cmp { a, b } => {
                let ar = src_reg!(a);
                let rhs = match b {
                    VOp::Temp(t) => Operand2::Reg(src_reg!(t)),
                    VOp::Imm(i) => Operand2::Imm(i),
                };
                asm.emit(Instr::Cmp { src: ar, rhs });
                op!();
            }
            VInst::Bcc { cond, target } => {
                asm.bcc(cond, &format!("L{target}"));
                op!();
            }
            VInst::B { target } => {
                asm.b(&format!("L{target}"));
                op!();
            }
            VInst::Label(l) => asm.label(&format!("L{l}")),
            VInst::Ret { src } => {
                let s = src_reg!(src);
                if s != Reg::new(0) {
                    asm.mov(Reg::new(0), s);
                    op!();
                }
                asm.halt();
                op!();
            }
        }
    }

    let program = asm.assemble();
    debug_assert_eq!(tags.len(), program.len(), "emit map must cover program");
    let spill_loads = tags
        .iter()
        .filter(|t| matches!(t, EmitTag::Reload { .. }))
        .count();
    let spill_stores = tags
        .iter()
        .filter(|t| matches!(t, EmitTag::Spill { .. }))
        .count();

    Ok(Compiled {
        program,
        frame_slots: alloc.frame_slots,
        frame_reg: FRAME_PTR,
        param_regs: (0..f.params.len() as u8).map(Reg::new).collect(),
        spilled: alloc.spilled,
        budget,
        strategy,
        vcode: low.code,
        alloc,
        emit_map: tags,
        spill_loads,
        spill_stores,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{interpret, Cmp, Operand, Stmt};
    use virec_isa::{ExecOutcome, FlatMem, Interpreter, ThreadCtx};

    const FRAME_BASE: u64 = 0x8000;

    /// Runs a compiled function on the machine interpreter.
    fn run_compiled(c: &Compiled, args: &[u64], mem: &mut FlatMem) -> u64 {
        let mut ctx = ThreadCtx::new();
        for (i, &v) in args.iter().enumerate() {
            ctx.set(Reg::new(i as u8), v);
        }
        ctx.set(FRAME_PTR, FRAME_BASE);
        let out = Interpreter::new(&c.program, mem).run(&mut ctx, 10_000_000);
        assert!(matches!(out, ExecOutcome::Halted { .. }));
        ctx.get(Reg::new(0))
    }

    /// Differential check across budgets and both allocators: compiled
    /// result must match the IR interpreter for every combination.
    fn check_budgets(f: &Function, args: &[u64], init: impl Fn(&mut FlatMem)) {
        let mut ir_mem = FlatMem::new(0, 0x10_000);
        init(&mut ir_mem);
        let want = interpret(f, args, &mut ir_mem, 10_000_000).value;
        for strategy in [AllocStrategy::GraphColor, AllocStrategy::LinearScan] {
            for budget in [1usize, 2, 3, 4, 6, 10, 17] {
                let c = compile_with(f, budget, strategy).expect("compiles");
                let mut mem = FlatMem::new(0, 0x10_000);
                init(&mut mem);
                let got = run_compiled(&c, args, &mut mem);
                assert_eq!(got, want, "budget {budget}/{} diverged", strategy.name());
                // Memory effects must match too (outside the frame).
                assert_eq!(
                    &mem.bytes()[..FRAME_BASE as usize],
                    &ir_mem.bytes()[..FRAME_BASE as usize],
                    "budget {budget}/{}: memory image diverged",
                    strategy.name()
                );
            }
        }
    }

    fn gather_ir() -> Function {
        // params: t0=data base, t1=idx base, t2=n. Returns Σ data[idx[i]].
        Function {
            name: "gather_ir".into(),
            params: vec![0, 1, 2],
            body: vec![
                Stmt::def_const(3, 0), // sum
                Stmt::def_const(4, 0), // i
                Stmt::While {
                    cond: (Operand::Temp(4), Cmp::Lt, Operand::Temp(2)),
                    body: vec![
                        Stmt::Load {
                            dst: 5,
                            base: 1,
                            index: Operand::Temp(4),
                        },
                        Stmt::Load {
                            dst: 6,
                            base: 0,
                            index: Operand::Temp(5),
                        },
                        Stmt::def_bin(3, BinOp::Add, Operand::Temp(3), Operand::Temp(6)),
                        Stmt::def_bin(4, BinOp::Add, Operand::Temp(4), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(3),
                },
            ],
        }
    }

    #[test]
    fn gather_compiles_correctly_at_every_budget() {
        let n = 64u64;
        let data = 0x1000u64;
        let idx = 0x2000u64;
        check_budgets(&gather_ir(), &[data, idx, n], |mem| {
            for i in 0..n {
                mem.write_u64(data + i * 8, i * 11);
                mem.write_u64(idx + i * 8, (i * 13) % n);
            }
        });
    }

    #[test]
    fn smaller_budget_means_more_spills_and_instructions() {
        let f = gather_ir();
        let big = compile(&f, 12).unwrap();
        let small = compile(&f, 2).unwrap();
        assert_eq!(big.spilled, 0, "12 registers fit the gather kernel");
        assert!(small.spilled > 0);
        assert!(
            small.program.len() > big.program.len(),
            "spill code must lengthen the program"
        );
    }

    #[test]
    fn emit_map_is_parallel_to_the_program() {
        let f = gather_ir();
        for strategy in [AllocStrategy::GraphColor, AllocStrategy::LinearScan] {
            for budget in [1usize, 2, 4, 17] {
                let c = compile_with(&f, budget, strategy).unwrap();
                assert_eq!(c.emit_map.len(), c.program.len());
                // Tag provenance indices are monotone over the program.
                let mut last = 0usize;
                for t in &c.emit_map {
                    let vi = match *t {
                        EmitTag::Reload { vinst, .. }
                        | EmitTag::Spill { vinst, .. }
                        | EmitTag::Op { vinst } => vinst,
                    };
                    assert!(vi >= last, "emit map indices must be non-decreasing");
                    last = vi;
                }
                // Counters agree with the tag stream and the program text.
                let ldrs = c
                    .emit_map
                    .iter()
                    .zip(c.program.instrs())
                    .filter(|(t, i)| {
                        matches!(t, EmitTag::Reload { .. })
                            && matches!(i, Instr::Ldr { base, .. } if *base == FRAME_PTR)
                    })
                    .count();
                assert_eq!(ldrs, c.spill_loads);
            }
        }
    }

    #[test]
    fn graph_coloring_emits_fewer_spill_reloads_at_tight_budgets() {
        let f = gather_ir();
        let mut strictly_better = false;
        for budget in [1usize, 2, 3] {
            let g = compile_with(&f, budget, AllocStrategy::GraphColor).unwrap();
            let l = compile_with(&f, budget, AllocStrategy::LinearScan).unwrap();
            assert!(
                g.spill_loads <= l.spill_loads,
                "budget {budget}: graph {} reloads > linear {}",
                g.spill_loads,
                l.spill_loads
            );
            strictly_better |= g.spill_loads < l.spill_loads;
        }
        assert!(
            strictly_better,
            "graph coloring must beat linear scan on at least one tight budget"
        );
    }

    #[test]
    fn nested_loops_compile() {
        // Σ_{i<4} Σ_{j<6} (i*j)
        let f = Function {
            name: "nest".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0), // acc
                Stmt::def_const(1, 0), // i
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(4)),
                    body: vec![
                        Stmt::def_const(2, 0), // j
                        Stmt::While {
                            cond: (Operand::Temp(2), Cmp::Lt, Operand::Const(6)),
                            body: vec![
                                Stmt::def_bin(3, BinOp::Mul, Operand::Temp(1), Operand::Temp(2)),
                                Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(3)),
                                Stmt::def_bin(2, BinOp::Add, Operand::Temp(2), Operand::Const(1)),
                            ],
                        },
                        Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        };
        check_budgets(&f, &[], |_| {});
    }

    #[test]
    fn budget_bounds_enforced() {
        let f = gather_ir();
        assert_eq!(
            compile(&f, 0).unwrap_err(),
            CompileError::BudgetOutOfRange(0)
        );
        assert_eq!(
            compile(&f, 18).unwrap_err(),
            CompileError::BudgetOutOfRange(18)
        );
    }

    #[test]
    fn too_many_params_rejected() {
        let f = Function {
            name: "p".into(),
            params: (0..9).collect(),
            body: vec![],
        };
        assert_eq!(compile(&f, 8).unwrap_err(), CompileError::TooManyParams(9));
    }
}
