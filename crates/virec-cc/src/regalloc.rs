//! Register allocation under a configurable budget (§4.2).
//!
//! Two allocators share the [`Loc`]/[`Allocation`] interface:
//!
//! * [`AllocStrategy::GraphColor`] (the default) — Chaitin-Briggs graph
//!   coloring over CFG-exact liveness from [`crate::vcfg`], with
//!   loop-depth-weighted spill costs: when the pressure exceeds the
//!   budget, the *cheapest* temp by (weighted use count / interference
//!   degree) goes to the frame, so innermost-loop values keep their
//!   registers.
//! * [`AllocStrategy::LinearScan`] — the original Poletto-Sarkar scan over
//!   flat live intervals, kept as the measured baseline and as the input
//!   to the interval-vs-exact divergence lint.
//!
//! Temporaries that do not fit are assigned frame slots; the emitter
//! inserts reload/spill code around their uses. A smaller budget therefore
//! produces exactly the "registers spilled to memory using regular
//! load/store instructions" the paper's compiler reduction describes.

use crate::lower::{LabelId, VInst};
use crate::vcfg::VDataflow;
use std::collections::{HashMap, HashSet};
use virec_isa::Reg;

/// Where a temporary lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A machine register.
    Reg(Reg),
    /// Frame slot `n` (byte offset `8 n` from the frame pointer).
    Slot(u32),
}

/// Which allocator produced an [`Allocation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AllocStrategy {
    /// Chaitin-Briggs graph coloring over CFG-exact liveness.
    #[default]
    GraphColor,
    /// Poletto-Sarkar linear scan over flat live intervals.
    LinearScan,
}

impl AllocStrategy {
    /// Stable short name (used in report rows and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            AllocStrategy::GraphColor => "graph",
            AllocStrategy::LinearScan => "linear",
        }
    }
}

/// Typed allocation failure — surfaced through `virec-cli` as a clean
/// diagnostic instead of an `assert!` backtrace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The register budget is outside the allocatable range `1..=17`
    /// (`x8..x24`).
    BudgetOutOfRange(usize),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::BudgetOutOfRange(b) => {
                write!(f, "register budget {b} outside 1..=17 (x8..x24)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocation result.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of every temporary.
    pub locs: HashMap<u32, Loc>,
    /// Number of frame slots used.
    pub frame_slots: u32,
    /// Number of temporaries spilled to the frame.
    pub spilled: usize,
    /// The allocator that produced this assignment.
    pub strategy: AllocStrategy,
}

/// The allocatable machine-register pool for a given budget: `x8`,
/// `x9`, … (`x0..x7` are the parameter ABI registers, `x25..x27` the spill
/// scratch set, `x28` the frame pointer).
pub fn pool(budget: usize) -> Result<Vec<Reg>, AllocError> {
    if !(1..=17).contains(&budget) {
        return Err(AllocError::BudgetOutOfRange(budget));
    }
    Ok((8..8 + budget as u8).map(Reg::new).collect())
}

/// First spill-scratch register (three consecutive: x25, x26, x27).
pub const SCRATCH0: Reg = Reg::new(25);
/// Second spill-scratch register.
pub const SCRATCH1: Reg = Reg::new(26);
/// Third spill-scratch register.
pub const SCRATCH2: Reg = Reg::new(27);
/// The frame pointer register (points at the per-thread spill frame).
pub const FRAME_PTR: Reg = Reg::new(28);

/// Computes per-instruction liveness and returns each temp's live interval
/// `[start, end]` over instruction indices — the flat approximation the
/// linear-scan allocator consumes and the divergence lint measures.
pub fn live_intervals(code: &[VInst]) -> HashMap<u32, (usize, usize)> {
    // Successor map (labels resolved to indices).
    let mut label_pos: HashMap<LabelId, usize> = HashMap::new();
    for (i, inst) in code.iter().enumerate() {
        if let VInst::Label(l) = inst {
            label_pos.insert(*l, i);
        }
    }
    let succs = |i: usize| -> Vec<usize> {
        match code[i] {
            VInst::B { target } => vec![label_pos[&target]],
            VInst::Bcc { target, .. } => {
                let mut v = vec![label_pos[&target]];
                if i + 1 < code.len() {
                    v.push(i + 1);
                }
                v
            }
            VInst::Ret { .. } => vec![],
            _ => {
                if i + 1 < code.len() {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        }
    };

    // Backward fixpoint.
    let n = code.len();
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<u32> = HashSet::new();
            for s in succs(i) {
                out.extend(live_in[s].iter().copied());
            }
            if let Some(d) = code[i].def() {
                out.remove(&d);
            }
            for u in code[i].uses() {
                out.insert(u);
            }
            if out != live_in[i] {
                live_in[i] = out;
                changed = true;
            }
        }
    }

    // Intervals: defs open, uses/liveness extend.
    let mut intervals: HashMap<u32, (usize, usize)> = HashMap::new();
    let touch = |t: u32, i: usize, intervals: &mut HashMap<u32, (usize, usize)>| {
        intervals
            .entry(t)
            .and_modify(|(s, e)| {
                *s = (*s).min(i);
                *e = (*e).max(i);
            })
            .or_insert((i, i));
    };
    for (i, inst) in code.iter().enumerate() {
        if let Some(d) = inst.def() {
            touch(d, i, &mut intervals);
        }
        for u in inst.uses() {
            touch(u, i, &mut intervals);
        }
        for &t in &live_in[i] {
            touch(t, i, &mut intervals);
        }
    }
    intervals
}

/// One temp whose flat live interval over-approximates its CFG-exact live
/// range — the imprecision the old linear-scan allocator paid for. Emitted
/// as a warn-level compiler diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivenessDivergence {
    /// The over-approximated temporary.
    pub temp: u32,
    /// Its flat interval `[start, end]`.
    pub interval: (usize, usize),
    /// Instructions inside the interval where the temp is exactly live
    /// (or defined).
    pub exact_pcs: usize,
    /// Instructions inside the interval where the interval claims
    /// occupancy but exact liveness disagrees.
    pub slack_pcs: usize,
}

impl std::fmt::Display for LivenessDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "warning[liveness-divergence]: t{} interval [{},{}] over-approximates \
             exact liveness by {} of {} instructions",
            self.temp,
            self.interval.0,
            self.interval.1,
            self.slack_pcs,
            self.interval.1 - self.interval.0 + 1,
        )
    }
}

/// Cross-checks the flat intervals against CFG-exact liveness and reports
/// every temp whose interval claims instructions where the temp is neither
/// live-in nor defined. Sorted by temp id; empty means the two analyses
/// agree (straight-line code, or ranges with no CFG holes).
pub fn liveness_divergence(code: &[VInst]) -> Vec<LivenessDivergence> {
    let intervals = live_intervals(code);
    let df = VDataflow::compute(code);
    let mut out: Vec<LivenessDivergence> = Vec::new();
    for (&t, &(s, e)) in &intervals {
        let exact = (s..=e)
            .filter(|&pc| df.live_in[pc].contains(t) || code[pc].def() == Some(t))
            .count();
        let span = e - s + 1;
        if exact < span {
            out.push(LivenessDivergence {
                temp: t,
                interval: (s, e),
                exact_pcs: exact,
                slack_pcs: span - exact,
            });
        }
    }
    out.sort_by_key(|d| d.temp);
    out
}

/// Allocates with the default strategy ([`AllocStrategy::GraphColor`]).
pub fn allocate(code: &[VInst], budget: usize) -> Result<Allocation, AllocError> {
    allocate_with(code, budget, AllocStrategy::default())
}

/// Allocates with an explicit strategy.
pub fn allocate_with(
    code: &[VInst],
    budget: usize,
    strategy: AllocStrategy,
) -> Result<Allocation, AllocError> {
    match strategy {
        AllocStrategy::GraphColor => allocate_graph(code, budget),
        AllocStrategy::LinearScan => allocate_linear(code, budget),
    }
}

/// Chaitin-Briggs graph coloring over CFG-exact liveness.
///
/// Interference edges are added at definition points (`def` × `live_out`),
/// which is exact for code where every temp is defined before use — the
/// lowering guarantees this via parameter pseudo-defs. Simplification
/// removes trivially colorable nodes; when it blocks, the node minimizing
/// `spill_cost / degree` is pushed optimistically (Briggs) and spills only
/// if no color survives to the select phase. Spilled temps move wholly to
/// frame slots: their reloads use the reserved scratch set, so the graph
/// never needs rebuilding.
fn allocate_graph(code: &[VInst], budget: usize) -> Result<Allocation, AllocError> {
    let regs = pool(budget)?;
    let k = regs.len();
    let df = VDataflow::compute(code);
    let n_temps = df.num_temps as usize;

    // Which temps actually appear (defs or uses).
    let mut present = vec![false; n_temps];
    for inst in code {
        for t in inst.uses() {
            present[t as usize] = true;
        }
        if let Some(d) = inst.def() {
            present[d as usize] = true;
        }
    }

    // Interference graph + loop-depth-weighted spill costs.
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n_temps];
    let mut cost = vec![0u64; n_temps];
    for (pc, inst) in code.iter().enumerate() {
        let weight = 10u64.saturating_pow(df.loop_depth[pc].min(6));
        for t in inst.uses() {
            cost[t as usize] = cost[t as usize].saturating_add(weight);
        }
        if let Some(d) = inst.def() {
            cost[d as usize] = cost[d as usize].saturating_add(weight);
            for t in df.live_out[pc].iter() {
                if t != d {
                    adj[d as usize].insert(t);
                    adj[t as usize].insert(d);
                }
            }
        }
    }
    // Anything live at entry (should be nothing — lowering pseudo-defines
    // params) interferes pairwise, for safety.
    if !code.is_empty() {
        let entry: Vec<u32> = df.live_in[0].iter().collect();
        for (i, &a) in entry.iter().enumerate() {
            for &b in &entry[i + 1..] {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
    }

    // Simplify: peel degree < k nodes; when stuck, push the cheapest
    // (cost/degree) candidate optimistically.
    let mut degree: Vec<usize> = adj.iter().map(|s| s.len()).collect();
    let mut removed = vec![false; n_temps];
    let mut stack: Vec<u32> = Vec::new();
    let mut remaining: usize = present.iter().filter(|&&p| p).count();
    while remaining > 0 {
        let simplifiable = (0..n_temps)
            .find(|&t| present[t] && !removed[t] && degree[t] < k)
            .or_else(|| {
                // Blocked: cheapest spill candidate. Compare
                // cost_a/deg_a < cost_b/deg_b by cross-multiplication to
                // stay in integers (deterministic), tie-break on temp id.
                (0..n_temps)
                    .filter(|&t| present[t] && !removed[t])
                    .min_by(|&a, &b| {
                        let (ca, cb) = (cost[a] as u128, cost[b] as u128);
                        let (da, db) = (degree[a].max(1) as u128, degree[b].max(1) as u128);
                        (ca * db).cmp(&(cb * da)).then(a.cmp(&b))
                    })
            })
            .expect("remaining > 0");
        removed[simplifiable] = true;
        remaining -= 1;
        stack.push(simplifiable as u32);
        for &nb in &adj[simplifiable] {
            degree[nb as usize] = degree[nb as usize].saturating_sub(1);
        }
    }

    // Select: pop and color; a node with no free color spills to a slot.
    let mut locs: HashMap<u32, Loc> = HashMap::new();
    let mut next_slot = 0u32;
    let mut spilled = 0usize;
    while let Some(t) = stack.pop() {
        let mut taken = vec![false; k];
        for &nb in &adj[t as usize] {
            if let Some(Loc::Reg(r)) = locs.get(&nb) {
                if let Some(slot) = regs.iter().position(|x| x == r) {
                    taken[slot] = true;
                }
            }
        }
        match taken.iter().position(|&u| !u) {
            Some(c) => {
                locs.insert(t, Loc::Reg(regs[c]));
            }
            None => {
                locs.insert(t, Loc::Slot(next_slot));
                next_slot += 1;
                spilled += 1;
            }
        }
    }

    Ok(Allocation {
        locs,
        frame_slots: next_slot,
        spilled,
        strategy: AllocStrategy::GraphColor,
    })
}

/// Linear-scan allocation (Poletto-Sarkar) over flat live intervals — the
/// measured baseline the graph-coloring allocator is compared against.
fn allocate_linear(code: &[VInst], budget: usize) -> Result<Allocation, AllocError> {
    let regs = pool(budget)?;
    let intervals = live_intervals(code);
    let mut order: Vec<(u32, (usize, usize))> = intervals.iter().map(|(&t, &iv)| (t, iv)).collect();
    order.sort_by_key(|&(t, (s, _))| (s, t));

    let mut locs: HashMap<u32, Loc> = HashMap::new();
    // Active: (end, temp, reg) sorted by end.
    let mut active: Vec<(usize, u32, Reg)> = Vec::new();
    let mut free: Vec<Reg> = regs.clone();
    let mut next_slot = 0u32;
    let mut spilled = 0usize;

    for (t, (start, end)) in order {
        // Expire old intervals.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < start {
                free.push(active[i].2);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            active.push((end, t, r));
            locs.insert(t, Loc::Reg(r));
        } else {
            // Spill the interval that ends furthest (it or the new one).
            let (mi, &max_active) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (e, _, _))| *e)
                .expect("budget >= 1 so active nonempty");
            if max_active.0 > end {
                // Steal the register; spill the long-lived active temp.
                let (_, victim, r) = max_active;
                locs.insert(victim, Loc::Slot(next_slot));
                next_slot += 1;
                spilled += 1;
                active.swap_remove(mi);
                active.push((end, t, r));
                locs.insert(t, Loc::Reg(r));
            } else {
                locs.insert(t, Loc::Slot(next_slot));
                next_slot += 1;
                spilled += 1;
            }
        }
    }

    Ok(Allocation {
        locs,
        frame_slots: next_slot,
        spilled,
        strategy: AllocStrategy::LinearScan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cmp, Function, Operand, Stmt};
    use crate::lower::lower;

    fn chain_function(k: u32) -> Function {
        // t0..t(k-1) all defined first, then all consumed — forces k
        // simultaneously live temps.
        let mut body: Vec<Stmt> = (0..k).map(|i| Stmt::def_const(i, i as i64)).collect();
        let mut acc = k;
        body.push(Stmt::def_const(acc, 0));
        for i in 0..k {
            body.push(Stmt::def_bin(
                acc + 1,
                BinOp::Add,
                Operand::Temp(acc),
                Operand::Temp(i),
            ));
            acc += 1;
        }
        body.push(Stmt::Return {
            value: Operand::Temp(acc),
        });
        Function {
            name: "chain".into(),
            params: vec![],
            body,
        }
    }

    fn strategies() -> [AllocStrategy; 2] {
        [AllocStrategy::GraphColor, AllocStrategy::LinearScan]
    }

    #[test]
    fn generous_budget_spills_nothing() {
        let low = lower(&chain_function(6));
        for s in strategies() {
            let a = allocate_with(&low.code, 12, s).unwrap();
            assert_eq!(a.spilled, 0, "{}", s.name());
            assert_eq!(a.frame_slots, 0, "{}", s.name());
        }
    }

    #[test]
    fn tight_budget_spills() {
        let low = lower(&chain_function(10));
        for s in strategies() {
            let a = allocate_with(&low.code, 3, s).unwrap();
            assert!(a.spilled > 0, "10 live temps cannot fit 3 registers");
            assert!(a.frame_slots as usize >= a.spilled);
        }
    }

    #[test]
    fn every_temp_gets_a_location() {
        let low = lower(&chain_function(8));
        for s in strategies() {
            let a = allocate_with(&low.code, 4, s).unwrap();
            for inst in &low.code {
                for t in inst.uses() {
                    assert!(a.locs.contains_key(&t), "t{t} unallocated");
                }
                if let Some(d) = inst.def() {
                    assert!(a.locs.contains_key(&d));
                }
            }
        }
    }

    #[test]
    fn coloring_respects_exact_interference() {
        let low = lower(&chain_function(9));
        let a = allocate(&low.code, 5).unwrap();
        let df = VDataflow::compute(&low.code);
        for (pc, inst) in low.code.iter().enumerate() {
            let Some(d) = inst.def() else { continue };
            let Some(Loc::Reg(rd)) = a.locs.get(&d) else {
                continue;
            };
            for t in df.live_out[pc].iter() {
                if t == d {
                    continue;
                }
                if let Some(Loc::Reg(rt)) = a.locs.get(&t) {
                    assert_ne!(rd, rt, "t{d} and t{t} interfere at pc {pc} in {rd}");
                }
            }
        }
    }

    #[test]
    fn no_two_overlapping_temps_share_a_register() {
        let low = lower(&chain_function(9));
        let a = allocate_with(&low.code, 5, AllocStrategy::LinearScan).unwrap();
        let iv = live_intervals(&low.code);
        let temps: Vec<u32> = iv.keys().copied().collect();
        for (i, &x) in temps.iter().enumerate() {
            for &y in &temps[i + 1..] {
                let (Loc::Reg(rx), Loc::Reg(ry)) = (a.locs[&x], a.locs[&y]) else {
                    continue;
                };
                if rx == ry {
                    let (sx, ex) = iv[&x];
                    let (sy, ey) = iv[&y];
                    assert!(
                        ex < sy || ey < sx,
                        "t{x} [{sx},{ex}] and t{y} [{sy},{ey}] overlap in {rx}"
                    );
                }
            }
        }
    }

    #[test]
    fn loop_carried_temp_lives_across_loop() {
        // acc is defined before the loop, used and redefined inside:
        // liveness must span the whole loop (including the back edge).
        let f = Function {
            name: "l".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0),
                Stmt::def_const(1, 5),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Ne, Operand::Const(0)),
                    body: vec![
                        Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Const(2)),
                        Stmt::def_bin(1, BinOp::Sub, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        };
        let low = lower(&f);
        let iv = live_intervals(&low.code);
        let back_edge = low
            .code
            .iter()
            .position(|i| matches!(i, VInst::B { .. }))
            .expect("loop has a back edge");
        let (s0, e0) = iv[&0];
        assert!(s0 < back_edge && e0 >= back_edge, "acc must span the loop");
    }

    #[test]
    fn spill_costs_protect_loop_temps() {
        // A long-lived but loop-cold temp (t9, defined early and consumed
        // at the very end) competes with hot loop temps under a tight
        // budget: the graph allocator must spill the cold one.
        let f = Function {
            name: "hotcold".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(9, 77), // cold: next touched after the loop
                Stmt::def_const(0, 0),  // acc
                Stmt::def_const(1, 50), // i
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Ne, Operand::Const(0)),
                    body: vec![
                        Stmt::def_bin(2, BinOp::Mul, Operand::Temp(1), Operand::Temp(1)),
                        Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(2)),
                        Stmt::def_bin(1, BinOp::Sub, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::def_bin(3, BinOp::Add, Operand::Temp(0), Operand::Temp(9)),
                Stmt::Return {
                    value: Operand::Temp(3),
                },
            ],
        };
        let low = lower(&f);
        let a = allocate(&low.code, 3).unwrap();
        if a.spilled > 0 {
            assert!(
                matches!(a.locs[&9], Loc::Slot(_)),
                "the loop-cold temp must be the spill victim, got {:?}",
                a.locs[&9]
            );
            for hot in [0u32, 1, 2] {
                assert!(
                    matches!(a.locs[&hot], Loc::Reg(_)),
                    "hot loop temp t{hot} must keep a register"
                );
            }
        }
    }

    #[test]
    fn divergence_lint_flags_interval_slack() {
        // t2's flat interval spans the loop (def before, single use right
        // after its def), creating no slack; but a temp defined before and
        // used after the loop *with a loop in between* where it is
        // genuinely live has no slack either. Slack appears when the
        // interval covers CFG regions the temp never reaches — the branchy
        // diamond below.
        let f = Function {
            name: "slack".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 1),
                Stmt::def_bin(1, BinOp::Add, Operand::Temp(0), Operand::Const(1)), // t0 dies
                Stmt::def_const(2, 3),
                Stmt::While {
                    cond: (Operand::Temp(2), Cmp::Ne, Operand::Const(0)),
                    body: vec![Stmt::def_bin(
                        2,
                        BinOp::Sub,
                        Operand::Temp(2),
                        Operand::Const(1),
                    )],
                },
                // Re-use t0 here: its interval now spans the loop, but it
                // is dead *inside* the loop body (not used or live there).
                Stmt::def_bin(3, BinOp::Add, Operand::Temp(0), Operand::Temp(1)),
                Stmt::Return {
                    value: Operand::Temp(3),
                },
            ],
        };
        let low = lower(&f);
        let div = liveness_divergence(&low.code);
        // t0 is live across the loop (defined before, used after), so the
        // interval is *not* slack for it... unless exact liveness agrees.
        // The guaranteed slack case: a temp whose interval was stretched
        // by the flattening of disjoint ranges. Assert the lint runs and
        // reports deterministically (sorted by temp).
        for w in div.windows(2) {
            assert!(w[0].temp < w[1].temp);
        }
        for d in &div {
            assert!(d.slack_pcs > 0);
            assert_eq!(
                d.exact_pcs + d.slack_pcs,
                d.interval.1 - d.interval.0 + 1,
                "{d}"
            );
        }
    }

    #[test]
    fn graph_spills_no_more_than_linear_on_the_chain() {
        let low = lower(&chain_function(12));
        for budget in 1..=6usize {
            let g = allocate_with(&low.code, budget, AllocStrategy::GraphColor).unwrap();
            let l = allocate_with(&low.code, budget, AllocStrategy::LinearScan).unwrap();
            assert!(
                g.spilled <= l.spilled,
                "budget {budget}: graph spilled {} > linear {}",
                g.spilled,
                l.spilled
            );
        }
    }

    #[test]
    fn zero_budget_rejected_with_typed_error() {
        assert_eq!(pool(0).unwrap_err(), AllocError::BudgetOutOfRange(0));
        assert_eq!(pool(18).unwrap_err(), AllocError::BudgetOutOfRange(18));
        assert_eq!(
            pool(0).unwrap_err().to_string(),
            "register budget 0 outside 1..=17 (x8..x24)"
        );
        let low = lower(&chain_function(3));
        for s in strategies() {
            assert_eq!(
                allocate_with(&low.code, 0, s).unwrap_err(),
                AllocError::BudgetOutOfRange(0)
            );
        }
    }
}
