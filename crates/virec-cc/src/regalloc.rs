//! Liveness analysis and linear-scan register allocation.
//!
//! The allocator distributes temporaries over a configurable pool of
//! machine registers — the **register budget** of §4.2. Temporaries that do
//! not fit are assigned frame slots; the emitter inserts reload/spill code
//! around their uses. A smaller budget therefore produces exactly the
//! "registers spilled to memory using regular load/store instructions" the
//! paper's compiler reduction describes.

use crate::lower::{LabelId, VInst};
use std::collections::{HashMap, HashSet};
use virec_isa::Reg;

/// Where a temporary lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A machine register.
    Reg(Reg),
    /// Frame slot `n` (byte offset `8 n` from the frame pointer).
    Slot(u32),
}

/// Allocation result.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of every temporary.
    pub locs: HashMap<u32, Loc>,
    /// Number of frame slots used.
    pub frame_slots: u32,
    /// Number of temporaries spilled to the frame.
    pub spilled: usize,
}

/// The allocatable machine-register pool for a given budget: `x8`,
/// `x9`, … (`x0..x7` are the parameter ABI registers, `x25..x27` the spill
/// scratch set, `x28` the frame pointer).
pub fn pool(budget: usize) -> Vec<Reg> {
    assert!(
        (1..=17).contains(&budget),
        "register budget must be in 1..=17 (x8..x24), got {budget}"
    );
    (8..8 + budget as u8).map(Reg::new).collect()
}

/// First spill-scratch register (three consecutive: x25, x26, x27).
pub const SCRATCH0: Reg = Reg::new(25);
/// Second spill-scratch register.
pub const SCRATCH1: Reg = Reg::new(26);
/// Third spill-scratch register.
pub const SCRATCH2: Reg = Reg::new(27);
/// The frame pointer register (points at the per-thread spill frame).
pub const FRAME_PTR: Reg = Reg::new(28);

/// Computes per-instruction liveness and returns each temp's live interval
/// `[start, end]` over instruction indices.
pub fn live_intervals(code: &[VInst]) -> HashMap<u32, (usize, usize)> {
    // Successor map (labels resolved to indices).
    let mut label_pos: HashMap<LabelId, usize> = HashMap::new();
    for (i, inst) in code.iter().enumerate() {
        if let VInst::Label(l) = inst {
            label_pos.insert(*l, i);
        }
    }
    let succs = |i: usize| -> Vec<usize> {
        match code[i] {
            VInst::B { target } => vec![label_pos[&target]],
            VInst::Bcc { target, .. } => {
                let mut v = vec![label_pos[&target]];
                if i + 1 < code.len() {
                    v.push(i + 1);
                }
                v
            }
            VInst::Ret { .. } => vec![],
            _ => {
                if i + 1 < code.len() {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        }
    };

    // Backward fixpoint.
    let n = code.len();
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<u32> = HashSet::new();
            for s in succs(i) {
                out.extend(live_in[s].iter().copied());
            }
            if let Some(d) = code[i].def() {
                out.remove(&d);
            }
            for u in code[i].uses() {
                out.insert(u);
            }
            if out != live_in[i] {
                live_in[i] = out;
                changed = true;
            }
        }
    }

    // Intervals: defs open, uses/liveness extend.
    let mut intervals: HashMap<u32, (usize, usize)> = HashMap::new();
    let touch = |t: u32, i: usize, intervals: &mut HashMap<u32, (usize, usize)>| {
        intervals
            .entry(t)
            .and_modify(|(s, e)| {
                *s = (*s).min(i);
                *e = (*e).max(i);
            })
            .or_insert((i, i));
    };
    for (i, inst) in code.iter().enumerate() {
        if let Some(d) = inst.def() {
            touch(d, i, &mut intervals);
        }
        for u in inst.uses() {
            touch(u, i, &mut intervals);
        }
        for &t in &live_in[i] {
            touch(t, i, &mut intervals);
        }
    }
    intervals
}

/// Linear-scan allocation (Poletto-Sarkar) over the given budget.
pub fn allocate(code: &[VInst], budget: usize) -> Allocation {
    let regs = pool(budget);
    let intervals = live_intervals(code);
    let mut order: Vec<(u32, (usize, usize))> = intervals.iter().map(|(&t, &iv)| (t, iv)).collect();
    order.sort_by_key(|&(t, (s, _))| (s, t));

    let mut locs: HashMap<u32, Loc> = HashMap::new();
    // Active: (end, temp, reg) sorted by end.
    let mut active: Vec<(usize, u32, Reg)> = Vec::new();
    let mut free: Vec<Reg> = regs.clone();
    let mut next_slot = 0u32;
    let mut spilled = 0usize;

    for (t, (start, end)) in order {
        // Expire old intervals.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < start {
                free.push(active[i].2);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            active.push((end, t, r));
            locs.insert(t, Loc::Reg(r));
        } else {
            // Spill the interval that ends furthest (it or the new one).
            let (mi, &max_active) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (e, _, _))| *e)
                .expect("budget >= 1 so active nonempty");
            if max_active.0 > end {
                // Steal the register; spill the long-lived active temp.
                let (_, victim, r) = max_active;
                locs.insert(victim, Loc::Slot(next_slot));
                next_slot += 1;
                spilled += 1;
                active.swap_remove(mi);
                active.push((end, t, r));
                locs.insert(t, Loc::Reg(r));
            } else {
                locs.insert(t, Loc::Slot(next_slot));
                next_slot += 1;
                spilled += 1;
            }
        }
    }

    Allocation {
        locs,
        frame_slots: next_slot,
        spilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cmp, Function, Operand, Stmt};
    use crate::lower::lower;

    fn chain_function(k: u32) -> Function {
        // t0..t(k-1) all defined first, then all consumed — forces k
        // simultaneously live temps.
        let mut body: Vec<Stmt> = (0..k).map(|i| Stmt::def_const(i, i as i64)).collect();
        let mut acc = k;
        body.push(Stmt::def_const(acc, 0));
        for i in 0..k {
            body.push(Stmt::def_bin(
                acc + 1,
                BinOp::Add,
                Operand::Temp(acc),
                Operand::Temp(i),
            ));
            acc += 1;
        }
        body.push(Stmt::Return {
            value: Operand::Temp(acc),
        });
        Function {
            name: "chain".into(),
            params: vec![],
            body,
        }
    }

    #[test]
    fn generous_budget_spills_nothing() {
        let low = lower(&chain_function(6));
        let a = allocate(&low.code, 12);
        assert_eq!(a.spilled, 0);
        assert_eq!(a.frame_slots, 0);
    }

    #[test]
    fn tight_budget_spills() {
        let low = lower(&chain_function(10));
        let a = allocate(&low.code, 3);
        assert!(a.spilled > 0, "10 live temps cannot fit 3 registers");
        assert!(a.frame_slots as usize >= a.spilled);
    }

    #[test]
    fn every_temp_gets_a_location() {
        let low = lower(&chain_function(8));
        let a = allocate(&low.code, 4);
        for inst in &low.code {
            for t in inst.uses() {
                assert!(a.locs.contains_key(&t), "t{t} unallocated");
            }
            if let Some(d) = inst.def() {
                assert!(a.locs.contains_key(&d));
            }
        }
    }

    #[test]
    fn no_two_overlapping_temps_share_a_register() {
        let low = lower(&chain_function(9));
        let a = allocate(&low.code, 5);
        let iv = live_intervals(&low.code);
        let temps: Vec<u32> = iv.keys().copied().collect();
        for (i, &x) in temps.iter().enumerate() {
            for &y in &temps[i + 1..] {
                let (Loc::Reg(rx), Loc::Reg(ry)) = (a.locs[&x], a.locs[&y]) else {
                    continue;
                };
                if rx == ry {
                    let (sx, ex) = iv[&x];
                    let (sy, ey) = iv[&y];
                    assert!(
                        ex < sy || ey < sx,
                        "t{x} [{sx},{ex}] and t{y} [{sy},{ey}] overlap in {rx}"
                    );
                }
            }
        }
    }

    #[test]
    fn loop_carried_temp_lives_across_loop() {
        // acc is defined before the loop, used and redefined inside:
        // liveness must span the whole loop (including the back edge).
        let f = Function {
            name: "l".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0),
                Stmt::def_const(1, 5),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Ne, Operand::Const(0)),
                    body: vec![
                        Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Const(2)),
                        Stmt::def_bin(1, BinOp::Sub, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        };
        let low = lower(&f);
        let iv = live_intervals(&low.code);
        let back_edge = low
            .code
            .iter()
            .position(|i| matches!(i, VInst::B { .. }))
            .expect("loop has a back edge");
        let (s0, e0) = iv[&0];
        assert!(s0 < back_edge && e0 >= back_edge, "acc must span the loop");
    }

    #[test]
    #[should_panic(expected = "register budget must be in 1..=17")]
    fn zero_budget_rejected() {
        pool(0);
    }
}
