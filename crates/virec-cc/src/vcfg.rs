//! CFG-exact dataflow over the lowered `VInst` IR.
//!
//! This is the compiler-side counterpart of `virec-verify`'s machine-level
//! CFG/liveness machinery (`virec_isa::cfg` / `virec_isa::dataflow`),
//! ported to the virtual-register form: per-instruction backward-liveness
//! fixpoints, instruction-level dominators, and natural-loop nesting
//! depths. The graph-coloring allocator consumes the liveness sets to
//! build its interference graph and the loop depths to weight spill
//! costs; the translation validator recomputes the same facts
//! independently to check the allocation it is handed.

use crate::lower::{LabelId, VInst};
use std::collections::HashMap;

/// A dense bitset over temporary ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TempSet {
    words: Vec<u64>,
}

impl TempSet {
    /// Empty set sized for temps `0..n`.
    pub fn new(n: u32) -> TempSet {
        TempSet {
            words: vec![0; (n as usize).div_ceil(64)],
        }
    }

    /// Inserts `t`; returns true if it was absent.
    pub fn insert(&mut self, t: u32) -> bool {
        let (w, b) = (t as usize / 64, t as usize % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `t`.
    pub fn remove(&mut self, t: u32) {
        let (w, b) = (t as usize / 64, t as usize % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, t: u32) -> bool {
        let (w, b) = (t as usize / 64, t as usize % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &TempSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | *b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| (w * 64 + b) as u32)
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no member is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Exact per-instruction dataflow facts over lowered virtual code.
#[derive(Clone, Debug)]
pub struct VDataflow {
    /// One past the highest temp id mentioned (bitset width).
    pub num_temps: u32,
    /// Successor instruction indices (labels resolved).
    pub succs: Vec<Vec<usize>>,
    /// Predecessor instruction indices.
    pub preds: Vec<Vec<usize>>,
    /// Temps live on entry to each instruction.
    pub live_in: Vec<TempSet>,
    /// Temps live on exit from each instruction.
    pub live_out: Vec<TempSet>,
    /// Natural-loop nesting depth of each instruction (0 = straight-line).
    pub loop_depth: Vec<u32>,
    /// Instructions reachable from the entry.
    pub reachable: Vec<bool>,
}

/// Resolves each label id to its instruction index.
pub fn label_positions(code: &[VInst]) -> HashMap<LabelId, usize> {
    let mut out = HashMap::new();
    for (i, inst) in code.iter().enumerate() {
        if let VInst::Label(l) = inst {
            out.insert(*l, i);
        }
    }
    out
}

impl VDataflow {
    /// Computes successors, liveness, dominator-derived loop depths, and
    /// reachability for `code`. Works at instruction granularity — the
    /// lowered programs are small enough that block formation buys
    /// nothing.
    pub fn compute(code: &[VInst]) -> VDataflow {
        let n = code.len();
        let labels = label_positions(code);
        let num_temps = code
            .iter()
            .flat_map(|i| i.uses().into_iter().chain(i.def()))
            .max()
            .map_or(0, |t| t + 1);

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let s: Vec<usize> = match code[i] {
                VInst::B { target } => vec![labels[&target]],
                VInst::Bcc { target, .. } => {
                    let mut v = vec![labels[&target]];
                    if i + 1 < n {
                        v.push(i + 1);
                    }
                    v
                }
                VInst::Ret { .. } => vec![],
                _ => {
                    if i + 1 < n {
                        vec![i + 1]
                    } else {
                        vec![]
                    }
                }
            };
            for &t in &s {
                preds[t].push(i);
            }
            succs[i] = s;
        }

        // Reachability from instruction 0.
        let mut reachable = vec![false; n];
        let mut stack = if n > 0 { vec![0usize] } else { vec![] };
        while let Some(p) = stack.pop() {
            if std::mem::replace(&mut reachable[p], true) {
                continue;
            }
            stack.extend(succs[p].iter().copied());
        }

        // Backward liveness fixpoint.
        let mut live_in: Vec<TempSet> = (0..n).map(|_| TempSet::new(num_temps)).collect();
        let mut live_out: Vec<TempSet> = (0..n).map(|_| TempSet::new(num_temps)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = TempSet::new(num_temps);
                for &s in &succs[i] {
                    out.union_with(&live_in[s]);
                }
                let mut inn = out.clone();
                if let Some(d) = code[i].def() {
                    inn.remove(d);
                }
                for u in code[i].uses() {
                    inn.insert(u);
                }
                if inn != live_in[i] {
                    live_in[i] = inn;
                    changed = true;
                }
                live_out[i] = out;
            }
        }

        // Instruction-level dominators (iterative bitset fixpoint over the
        // reachable subgraph), then natural loops from back edges.
        let full: Vec<u64> = vec![u64::MAX; n.div_ceil(64).max(1)];
        let mut dom: Vec<Vec<u64>> = vec![full.clone(); n];
        if n > 0 {
            dom[0] = vec![0; full.len()];
            dom[0][0] = 1;
            let mut changed = true;
            while changed {
                changed = false;
                for i in 1..n {
                    if !reachable[i] {
                        continue;
                    }
                    let mut cur = full.clone();
                    for &p in &preds[i] {
                        if reachable[p] {
                            for (c, d) in cur.iter_mut().zip(&dom[p]) {
                                *c &= d;
                            }
                        }
                    }
                    cur[i / 64] |= 1 << (i % 64);
                    if cur != dom[i] {
                        dom[i] = cur;
                        changed = true;
                    }
                }
            }
        }
        let dominates =
            |h: usize, i: usize, dom: &[Vec<u64>]| dom[i][h / 64] & (1 << (h % 64)) != 0;

        let mut loop_depth = vec![0u32; n];
        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            for &h in &succs[i] {
                if h <= i && dominates(h, i, &dom) {
                    // Back edge i -> h: collect the natural loop body.
                    let mut body = vec![false; n];
                    body[h] = true;
                    let mut stack = vec![i];
                    while let Some(p) = stack.pop() {
                        if std::mem::replace(&mut body[p], true) {
                            continue;
                        }
                        stack.extend(preds[p].iter().copied().filter(|&q| reachable[q]));
                    }
                    for (pc, in_body) in body.iter().enumerate() {
                        if *in_body {
                            loop_depth[pc] += 1;
                        }
                    }
                }
            }
        }

        VDataflow {
            num_temps,
            succs,
            preds,
            live_in,
            live_out,
            loop_depth,
            reachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cmp, Function, Operand, Stmt};
    use crate::lower::lower;

    fn counted_loop(k: i64) -> Function {
        Function {
            name: "cl".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0),
                Stmt::def_const(1, k),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Ne, Operand::Const(0)),
                    body: vec![
                        Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(1)),
                        Stmt::def_bin(1, BinOp::Sub, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        }
    }

    #[test]
    fn loop_body_gets_depth_one() {
        let low = lower(&counted_loop(5));
        let df = VDataflow::compute(&low.code);
        // The back edge exists and its source sits at depth 1.
        let back = low
            .code
            .iter()
            .position(|i| matches!(i, VInst::B { .. }))
            .unwrap();
        assert_eq!(df.loop_depth[back], 1);
        // Straight-line prologue sits at depth 0.
        assert_eq!(df.loop_depth[0], 0);
    }

    #[test]
    fn loop_carried_temp_is_live_around_the_back_edge() {
        let low = lower(&counted_loop(5));
        let df = VDataflow::compute(&low.code);
        let back = low
            .code
            .iter()
            .position(|i| matches!(i, VInst::B { .. }))
            .unwrap();
        // acc (t0) is redefined in the body and used after the loop: live
        // across the back edge.
        assert!(df.live_out[back].contains(0));
    }

    #[test]
    fn exact_liveness_is_sparser_than_flat_intervals() {
        // Two temps with disjoint CFG live ranges that a flat interval
        // merges: t2 defined and used before the loop, t3 inside it.
        let f = Function {
            name: "sparse".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(2, 7),
                Stmt::def_bin(4, BinOp::Add, Operand::Temp(2), Operand::Const(1)),
                Stmt::def_const(1, 3),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Ne, Operand::Const(0)),
                    body: vec![
                        Stmt::def_bin(3, BinOp::Mul, Operand::Temp(1), Operand::Temp(1)),
                        Stmt::def_bin(4, BinOp::Add, Operand::Temp(4), Operand::Temp(3)),
                        Stmt::def_bin(1, BinOp::Sub, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(4),
                },
            ],
        };
        let low = lower(&f);
        let df = VDataflow::compute(&low.code);
        // t2 dies after its single use: it must not be live anywhere in
        // the loop body.
        for (pc, d) in df.loop_depth.iter().enumerate() {
            if *d > 0 {
                assert!(!df.live_in[pc].contains(2), "t2 must be dead at pc {pc}");
            }
        }
    }

    #[test]
    fn nested_loops_stack_depths() {
        let f = Function {
            name: "nest".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0),
                Stmt::def_const(1, 0),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(4)),
                    body: vec![
                        Stmt::def_const(2, 0),
                        Stmt::While {
                            cond: (Operand::Temp(2), Cmp::Lt, Operand::Const(6)),
                            body: vec![
                                Stmt::def_bin(3, BinOp::Mul, Operand::Temp(1), Operand::Temp(2)),
                                Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(3)),
                                Stmt::def_bin(2, BinOp::Add, Operand::Temp(2), Operand::Const(1)),
                            ],
                        },
                        Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        };
        let low = lower(&f);
        let df = VDataflow::compute(&low.code);
        assert_eq!(df.loop_depth.iter().max(), Some(&2), "inner body depth 2");
        assert!(df.loop_depth.contains(&1), "outer-only region");
    }

    #[test]
    fn tempset_ops() {
        let mut s = TempSet::new(130);
        assert!(s.insert(0) && s.insert(129) && !s.insert(0));
        assert!(s.contains(129) && !s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert!(!s.contains(0) && !s.is_empty());
    }
}
