//! Lowering: structured IR → linear virtual-register code.
//!
//! The linear form mirrors the machine ISA (ALU with immediate second
//! operands, scaled-index addressing, compare + conditional branch) but
//! operates on an unbounded set of temporaries. Constants that must occupy
//! a register (ALU/compare left operands, store sources, bases) are
//! materialized into fresh temps.

use crate::ir::{BinOp, Cmp, Function, Operand, Stmt, TempId};
use virec_isa::Cond;

/// Label identifier inside lowered code.
pub type LabelId = u32;

/// Index operand of lowered memory instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VIndex {
    /// Scaled temp index: `[base, t, lsl #3]`.
    Temp(TempId),
    /// Constant byte offset: `[base, #bytes]`.
    ByteOff(i64),
}

/// Second operand of lowered ALU/compare instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VOp {
    /// A temporary.
    Temp(TempId),
    /// An immediate.
    Imm(i64),
}

/// A lowered instruction over virtual registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VInst {
    /// Pseudo-instruction: `dst` receives parameter `index` (ABI register).
    Param {
        /// Destination temporary.
        dst: TempId,
        /// Parameter position.
        index: usize,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination temporary.
        dst: TempId,
        /// Immediate.
        imm: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination temporary.
        dst: TempId,
        /// Source temporary.
        src: TempId,
    },
    /// `dst = op(a, b)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination temporary.
        dst: TempId,
        /// Left operand (register).
        a: TempId,
        /// Right operand.
        b: VOp,
    },
    /// `dst = mem64[base + index]`.
    Load {
        /// Destination temporary.
        dst: TempId,
        /// Base temporary.
        base: TempId,
        /// Index.
        index: VIndex,
    },
    /// `mem64[base + index] = src`.
    Store {
        /// Source temporary.
        src: TempId,
        /// Base temporary.
        base: TempId,
        /// Index.
        index: VIndex,
    },
    /// Compare, setting flags.
    Cmp {
        /// Left operand (register).
        a: TempId,
        /// Right operand.
        b: VOp,
    },
    /// Conditional branch on the last compare.
    Bcc {
        /// Branch condition.
        cond: Cond,
        /// Target label.
        target: LabelId,
    },
    /// Unconditional branch.
    B {
        /// Target label.
        target: LabelId,
    },
    /// Label marker (no machine code).
    Label(LabelId),
    /// `x0 = src`; terminate.
    Ret {
        /// Returned temporary.
        src: TempId,
    },
}

impl VInst {
    /// Temporaries read by this instruction.
    pub fn uses(&self) -> Vec<TempId> {
        match *self {
            VInst::Mov { src, .. } => vec![src],
            VInst::Bin { a, b, .. } => match b {
                VOp::Temp(t) => vec![a, t],
                VOp::Imm(_) => vec![a],
            },
            VInst::Load { base, index, .. } => match index {
                VIndex::Temp(t) => vec![base, t],
                VIndex::ByteOff(_) => vec![base],
            },
            VInst::Store { src, base, index } => {
                let mut v = vec![src, base];
                if let VIndex::Temp(t) = index {
                    v.push(t);
                }
                v
            }
            VInst::Cmp { a, b } => match b {
                VOp::Temp(t) => vec![a, t],
                VOp::Imm(_) => vec![a],
            },
            VInst::Ret { src } => vec![src],
            _ => vec![],
        }
    }

    /// Temporary written by this instruction.
    pub fn def(&self) -> Option<TempId> {
        match *self {
            VInst::Param { dst, .. }
            | VInst::MovImm { dst, .. }
            | VInst::Mov { dst, .. }
            | VInst::Bin { dst, .. }
            | VInst::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

/// Result of lowering.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// Linear instruction sequence.
    pub code: Vec<VInst>,
    /// First temp id not used by the function (fresh-temp watermark).
    pub next_temp: TempId,
}

struct LowerCtx {
    code: Vec<VInst>,
    next_temp: TempId,
    next_label: LabelId,
}

impl LowerCtx {
    fn fresh(&mut self) -> TempId {
        let t = self.next_temp;
        self.next_temp += 1;
        t
    }

    fn label(&mut self) -> LabelId {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Materializes an operand into a temp.
    fn as_temp(&mut self, op: Operand) -> TempId {
        match op {
            Operand::Temp(t) => t,
            Operand::Const(c) => {
                let t = self.fresh();
                self.code.push(VInst::MovImm { dst: t, imm: c });
                t
            }
        }
    }

    fn as_vop(&mut self, op: Operand) -> VOp {
        match op {
            Operand::Temp(t) => VOp::Temp(t),
            Operand::Const(c) => VOp::Imm(c),
        }
    }

    fn as_vindex(&mut self, op: Operand) -> VIndex {
        match op {
            Operand::Temp(t) => VIndex::Temp(t),
            Operand::Const(c) => VIndex::ByteOff(c.wrapping_mul(8)),
        }
    }

    fn lower_block(&mut self, block: &[Stmt]) {
        for s in block {
            match s {
                Stmt::Def { dst, a, op } => match op {
                    None => match a {
                        Operand::Const(c) => self.code.push(VInst::MovImm { dst: *dst, imm: *c }),
                        Operand::Temp(t) => self.code.push(VInst::Mov { dst: *dst, src: *t }),
                    },
                    Some((bop, b)) => {
                        let at = self.as_temp(*a);
                        let bv = self.as_vop(*b);
                        self.code.push(VInst::Bin {
                            op: *bop,
                            dst: *dst,
                            a: at,
                            b: bv,
                        });
                    }
                },
                Stmt::Load { dst, base, index } => {
                    let idx = self.as_vindex(*index);
                    self.code.push(VInst::Load {
                        dst: *dst,
                        base: *base,
                        index: idx,
                    });
                }
                Stmt::Store { src, base, index } => {
                    let st = self.as_temp(*src);
                    let idx = self.as_vindex(*index);
                    self.code.push(VInst::Store {
                        src: st,
                        base: *base,
                        index: idx,
                    });
                }
                Stmt::While { cond, body } => {
                    let head = self.label();
                    let end = self.label();
                    let (a, c, b) = *cond;
                    self.code.push(VInst::Label(head));
                    let at = self.as_temp(a);
                    let bv = self.as_vop(b);
                    self.code.push(VInst::Cmp { a: at, b: bv });
                    let exit_cond = match c {
                        Cmp::Lt => Cond::Lo.invert(), // exit when !(a < b)
                        Cmp::Ne => Cond::Ne.invert(),
                    };
                    self.code.push(VInst::Bcc {
                        cond: exit_cond,
                        target: end,
                    });
                    self.lower_block(body);
                    self.code.push(VInst::B { target: head });
                    self.code.push(VInst::Label(end));
                }
                Stmt::Return { value } => {
                    let t = self.as_temp(*value);
                    self.code.push(VInst::Ret { src: t });
                }
            }
        }
    }
}

/// Highest temp id referenced by a function body (for fresh-temp seeding).
fn max_temp(block: &[Stmt], mut acc: TempId) -> TempId {
    let op_max = |op: &Operand, acc: TempId| match op {
        Operand::Temp(t) => acc.max(*t),
        Operand::Const(_) => acc,
    };
    for s in block {
        acc = match s {
            Stmt::Def { dst, a, op } => {
                let mut m = acc.max(*dst);
                m = op_max(a, m);
                if let Some((_, b)) = op {
                    m = op_max(b, m);
                }
                m
            }
            Stmt::Load { dst, base, index } => op_max(index, acc.max(*dst).max(*base)),
            Stmt::Store { src, base, index } => op_max(index, op_max(src, acc.max(*base))),
            Stmt::While { cond, body } => {
                let m = op_max(&cond.0, op_max(&cond.2, acc));
                max_temp(body, m)
            }
            Stmt::Return { value } => op_max(value, acc),
        };
    }
    acc
}

/// Lowers a function to linear virtual code (with parameter pseudo-defs at
/// the top and a trailing `Ret` if the body can fall through).
pub fn lower(f: &Function) -> Lowered {
    let seed = max_temp(&f.body, f.params.iter().copied().max().unwrap_or(0)) + 1;
    let mut ctx = LowerCtx {
        code: Vec::new(),
        next_temp: seed,
        next_label: 0,
    };
    for (i, &p) in f.params.iter().enumerate() {
        ctx.code.push(VInst::Param { dst: p, index: i });
    }
    ctx.lower_block(&f.body);
    // Fallthrough: return 0.
    if !matches!(ctx.code.last(), Some(VInst::Ret { .. })) {
        let t = ctx.fresh();
        ctx.code.push(VInst::MovImm { dst: t, imm: 0 });
        ctx.code.push(VInst::Ret { src: t });
    }
    Lowered {
        next_temp: ctx.next_temp,
        code: ctx.code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Stmt as S;

    #[test]
    fn lowers_loop_shape() {
        let f = Function {
            name: "l".into(),
            params: vec![0],
            body: vec![
                S::While {
                    cond: (Operand::Temp(0), Cmp::Ne, Operand::Const(0)),
                    body: vec![S::def_bin(
                        0,
                        BinOp::Sub,
                        Operand::Temp(0),
                        Operand::Const(1),
                    )],
                },
                S::Return {
                    value: Operand::Temp(0),
                },
            ],
        };
        let low = lower(&f);
        let labels = low
            .code
            .iter()
            .filter(|i| matches!(i, VInst::Label(_)))
            .count();
        assert_eq!(labels, 2, "head + end");
        assert!(low.code.iter().any(|i| matches!(i, VInst::B { .. })));
        assert!(matches!(low.code[0], VInst::Param { index: 0, .. }));
        assert!(matches!(low.code.last(), Some(VInst::Ret { .. })));
    }

    #[test]
    fn constants_materialized_where_required() {
        let f = Function {
            name: "c".into(),
            params: vec![1],
            body: vec![
                // store const to memory: source must become a temp.
                S::Store {
                    src: Operand::Const(7),
                    base: 1,
                    index: Operand::Const(2),
                },
            ],
        };
        let low = lower(&f);
        assert!(low
            .code
            .iter()
            .any(|i| matches!(i, VInst::MovImm { imm: 7, .. })));
        assert!(low.code.iter().any(|i| matches!(
            i,
            VInst::Store {
                index: VIndex::ByteOff(16),
                ..
            }
        )));
    }

    #[test]
    fn fallthrough_gets_ret_zero() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            body: vec![S::def_const(0, 1)],
        };
        let low = lower(&f);
        assert!(matches!(low.code.last(), Some(VInst::Ret { .. })));
    }

    #[test]
    fn uses_and_defs_reported() {
        let i = VInst::Store {
            src: 1,
            base: 2,
            index: VIndex::Temp(3),
        };
        assert_eq!(i.uses(), vec![1, 2, 3]);
        assert_eq!(i.def(), None);
        let j = VInst::Bin {
            op: BinOp::Add,
            dst: 4,
            a: 5,
            b: VOp::Imm(1),
        };
        assert_eq!(j.uses(), vec![5]);
        assert_eq!(j.def(), Some(4));
    }
}
