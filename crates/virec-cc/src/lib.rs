#![warn(missing_docs)]

//! # virec-cc
//!
//! A miniature compiler targeting the `virec-isa` instruction set, built to
//! realize §4.2 of the ViReC paper *as a compiler mechanism*: "a compiler
//! can artificially reduce the registers available for register allocation
//! to only those required in the innermost loops", spilling long-lived
//! outer values to memory with ordinary loads/stores.
//!
//! The pipeline:
//!
//! 1. [`ir`] — a small structured IR (defs, loads/stores, `while` loops)
//!    with a reference interpreter;
//! 2. [`lower`] — lowering to linear virtual-register code with labels;
//! 3. [`vcfg`] — CFG-exact per-instruction liveness and natural-loop
//!    depths over the virtual code (the compiler-side port of
//!    `virec-verify`'s dataflow machinery);
//! 4. [`regalloc`] — Chaitin-Briggs graph coloring with
//!    loop-depth-weighted spill costs under a configurable **register
//!    budget** (linear scan kept as the measured baseline), with spill
//!    slots in a per-thread frame addressed through a reserved frame
//!    pointer;
//! 5. [`emit`] — emission to a [`virec_isa::Program`], tagging every
//!    machine instruction with its provenance so `virec-verify` can
//!    translation-validate the output against the pre-allocation IR.
//!
//! Shrinking the budget produces exactly the spill code the paper
//! describes; the compiled kernels run on any `virec-core` engine and are
//! differentially tested against the IR interpreter.
//!
//! ```
//! use virec_cc::ir::{Function, Stmt, Operand, BinOp, Cmp};
//! use virec_cc::compile;
//!
//! // sum = Σ i for i in 0..10
//! let f = Function {
//!     name: "sum".into(),
//!     params: vec![],
//!     body: vec![
//!         Stmt::def_const(0, 0),              // t0 = 0 (sum)
//!         Stmt::def_const(1, 0),              // t1 = 0 (i)
//!         Stmt::While {
//!             cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(10)),
//!             body: vec![
//!                 Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(1)),
//!                 Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
//!             ],
//!         },
//!         Stmt::Return { value: Operand::Temp(0) },
//!     ],
//! };
//! let compiled = compile(&f, 8).expect("compiles with an 8-register budget");
//! assert!(compiled.program.len() > 5);
//! ```

pub mod emit;
pub mod ir;
pub mod lower;
pub mod regalloc;
pub mod vcfg;

pub use emit::{compile, compile_with, CompileError, Compiled, EmitTag};
pub use regalloc::{AllocError, AllocStrategy, LivenessDivergence};
