//! The structured intermediate representation and its reference
//! interpreter.

use std::collections::HashMap;
use virec_isa::{AccessSize, DataMemory};

/// A virtual register (SSA-ish temporary; redefinition is allowed).
pub type TempId = u32;

/// A value operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A temporary.
    Temp(TempId),
    /// An immediate constant.
    Const(i64),
}

/// Binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (mod 64).
    Shl,
    /// Logical shift right (mod 64).
    Shr,
}

impl BinOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        }
    }
}

/// Loop / branch comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Unsigned less-than.
    Lt,
    /// Not equal.
    Ne,
}

impl Cmp {
    /// Evaluates the comparison.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Ne => a != b,
        }
    }
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `dst = a` or `dst = op(a, b)`.
    Def {
        /// Destination temporary.
        dst: TempId,
        /// First operand.
        a: Operand,
        /// Optional operation and second operand (plain copy when absent).
        op: Option<(BinOp, Operand)>,
    },
    /// `dst = mem64[base + index*8]`.
    Load {
        /// Destination temporary.
        dst: TempId,
        /// Base-address temporary.
        base: TempId,
        /// Element index.
        index: Operand,
    },
    /// `mem64[base + index*8] = src`.
    Store {
        /// Value stored.
        src: Operand,
        /// Base-address temporary.
        base: TempId,
        /// Element index.
        index: Operand,
    },
    /// `while cond { body }`.
    While {
        /// Loop condition `(lhs, cmp, rhs)`.
        cond: (Operand, Cmp, Operand),
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Terminates the function with a value (left in the return register).
    Return {
        /// Returned value.
        value: Operand,
    },
}

impl Stmt {
    /// Shorthand: `dst = constant`.
    pub fn def_const(dst: TempId, v: i64) -> Stmt {
        Stmt::Def {
            dst,
            a: Operand::Const(v),
            op: None,
        }
    }

    /// Shorthand: `dst = copy of src`.
    pub fn def_copy(dst: TempId, src: TempId) -> Stmt {
        Stmt::Def {
            dst,
            a: Operand::Temp(src),
            op: None,
        }
    }

    /// Shorthand: `dst = op(a, b)`.
    pub fn def_bin(dst: TempId, op: BinOp, a: Operand, b: Operand) -> Stmt {
        Stmt::Def {
            dst,
            a,
            op: Some((op, b)),
        }
    }
}

/// A compilable function. Parameters arrive as pre-initialized temporaries
/// (the offloaded register context supplies their values).
#[derive(Clone, Debug)]
pub struct Function {
    /// Name (used for the emitted program).
    pub name: String,
    /// Parameter temporaries, in ABI order (`x0`, `x1`, …).
    pub params: Vec<TempId>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// Result of interpreting a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrResult {
    /// Value of the executed `Return` (0 if the body fell off the end).
    pub value: u64,
}

/// Reference interpreter over the structured IR.
pub fn interpret(f: &Function, args: &[u64], mem: &mut dyn DataMemory, max_steps: u64) -> IrResult {
    assert_eq!(args.len(), f.params.len(), "argument arity mismatch");
    let mut env: HashMap<TempId, u64> = HashMap::new();
    for (&p, &v) in f.params.iter().zip(args) {
        env.insert(p, v);
    }
    let mut steps = 0u64;
    let value = exec_block(&f.body, &mut env, mem, &mut steps, max_steps).unwrap_or(0);
    IrResult { value }
}

fn eval(op: Operand, env: &HashMap<TempId, u64>) -> u64 {
    match op {
        Operand::Const(c) => c as u64,
        Operand::Temp(t) => *env
            .get(&t)
            .unwrap_or_else(|| panic!("use of undefined temp t{t}")),
    }
}

fn exec_block(
    block: &[Stmt],
    env: &mut HashMap<TempId, u64>,
    mem: &mut dyn DataMemory,
    steps: &mut u64,
    max_steps: u64,
) -> Option<u64> {
    for s in block {
        *steps += 1;
        assert!(*steps < max_steps, "IR interpreter exceeded step budget");
        match s {
            Stmt::Def { dst, a, op } => {
                let v = match op {
                    None => eval(*a, env),
                    Some((op, b)) => op.apply(eval(*a, env), eval(*b, env)),
                };
                env.insert(*dst, v);
            }
            Stmt::Load { dst, base, index } => {
                let addr =
                    eval(Operand::Temp(*base), env).wrapping_add(eval(*index, env).wrapping_mul(8));
                env.insert(*dst, mem.read(addr, AccessSize::B8));
            }
            Stmt::Store { src, base, index } => {
                let addr =
                    eval(Operand::Temp(*base), env).wrapping_add(eval(*index, env).wrapping_mul(8));
                mem.write(addr, AccessSize::B8, eval(*src, env));
            }
            Stmt::While { cond, body } => {
                let (a, c, b) = *cond;
                while c.eval(eval(a, env), eval(b, env)) {
                    *steps += 1;
                    assert!(*steps < max_steps, "IR interpreter exceeded step budget");
                    if let Some(v) = exec_block(body, env, mem, steps, max_steps) {
                        return Some(v);
                    }
                }
            }
            Stmt::Return { value } => return Some(eval(*value, env)),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::FlatMem;

    fn sum_fn(n: i64) -> Function {
        Function {
            name: "sum".into(),
            params: vec![],
            body: vec![
                Stmt::def_const(0, 0),
                Stmt::def_const(1, 0),
                Stmt::While {
                    cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(n)),
                    body: vec![
                        Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(1)),
                        Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(0),
                },
            ],
        }
    }

    #[test]
    fn interprets_loops() {
        let mut mem = FlatMem::new(0, 64);
        let r = interpret(&sum_fn(10), &[], &mut mem, 10_000);
        assert_eq!(r.value, 45);
    }

    #[test]
    fn params_bind_in_order() {
        let f = Function {
            name: "addp".into(),
            params: vec![5, 6],
            body: vec![
                Stmt::def_bin(7, BinOp::Add, Operand::Temp(5), Operand::Temp(6)),
                Stmt::Return {
                    value: Operand::Temp(7),
                },
            ],
        };
        let mut mem = FlatMem::new(0, 64);
        assert_eq!(interpret(&f, &[30, 12], &mut mem, 100).value, 42);
    }

    #[test]
    fn memory_ops_roundtrip() {
        // store 99 at base[3], read it back.
        let f = Function {
            name: "m".into(),
            params: vec![0],
            body: vec![
                Stmt::Store {
                    src: Operand::Const(99),
                    base: 0,
                    index: Operand::Const(3),
                },
                Stmt::Load {
                    dst: 1,
                    base: 0,
                    index: Operand::Const(3),
                },
                Stmt::Return {
                    value: Operand::Temp(1),
                },
            ],
        };
        let mut mem = FlatMem::new(0, 256);
        assert_eq!(interpret(&f, &[0x40], &mut mem, 100).value, 99);
        assert_eq!(mem.read_u64(0x40 + 24), 99);
    }

    #[test]
    fn fallthrough_returns_zero() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            body: vec![Stmt::def_const(0, 7)],
        };
        let mut mem = FlatMem::new(0, 64);
        assert_eq!(interpret(&f, &[], &mut mem, 100).value, 0);
    }

    #[test]
    #[should_panic(expected = "undefined temp")]
    fn undefined_temp_panics() {
        let f = Function {
            name: "bad".into(),
            params: vec![],
            body: vec![Stmt::Return {
                value: Operand::Temp(9),
            }],
        };
        let mut mem = FlatMem::new(0, 64);
        interpret(&f, &[], &mut mem, 100);
    }
}
