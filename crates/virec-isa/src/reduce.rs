//! Compiler register reduction (§4.2 of the paper).
//!
//! Registers used exclusively in outer loops have extremely long reuse
//! distances; keeping them in the register context wastes ViReC RF capacity
//! and pollutes the replacement state. The paper's fix is a compiler-level
//! transformation: "artificially reduce the registers available for
//! register allocation to only those required in the innermost loops",
//! spilling outer-loop values to memory with regular load/store
//! instructions — at a negligible dynamic-instruction overhead because
//! outer loops run rarely.
//!
//! [`demote_registers`] implements that transformation on assembled
//! programs: every use of a demoted register is preceded by a reload from
//! its spill slot and every definition is followed by a spill, bounding the
//! register's live range to single instructions. Spill slots are addressed
//! absolutely through the zero register (`[xzr, #slot]`), so no extra base
//! register is consumed. Branch targets are remapped onto the rewritten
//! instruction stream.

use crate::instr::{AccessSize, Instr, MemOffset};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;

/// Result of a register-reduction transformation.
pub struct ReducedProgram {
    /// The rewritten program.
    pub program: Program,
    /// Spill-slot address of each demoted register.
    pub slots: BTreeMap<Reg, u64>,
    /// Static instructions added by the transformation.
    pub added_instrs: usize,
}

/// Rewrites `program`, demoting `regs` to absolute memory slots at
/// `spill_base` (one 8-byte slot per register). Suitable for single-thread
/// programs; multi-threaded kernels should use
/// [`demote_registers_with_base`] with a per-thread base register.
///
/// The caller must initialize each slot with the register's initial value
/// (instead of placing it in the offloaded register context) — see
/// [`ReducedProgram::slots`].
///
/// # Panics
/// Panics if `spill_base` is not 8-byte aligned or a demoted register is
/// the zero register.
pub fn demote_registers(program: &Program, regs: &[Reg], spill_base: u64) -> ReducedProgram {
    assert_eq!(spill_base % 8, 0, "spill slots must be 8-byte aligned");
    rewrite(program, regs, Reg::XZR, spill_base, false)
}

/// Multi-thread register reduction: spill slots are addressed relative to
/// `base` (which each thread's offloaded context points at its private
/// spill area), and a preamble stores the demoted registers' initial values
/// from the context into their slots before the first original instruction.
///
/// Returned slot values are *offsets from `base`*.
///
/// # Panics
/// Panics if `base` is demoted, or a demoted register is the zero register.
pub fn demote_registers_with_base(program: &Program, regs: &[Reg], base: Reg) -> ReducedProgram {
    assert!(
        !regs.contains(&base),
        "cannot demote the spill base register"
    );
    assert!(
        !base.is_zero(),
        "per-thread spilling needs a real base register"
    );
    rewrite(program, regs, base, 0, true)
}

fn rewrite(
    program: &Program,
    regs: &[Reg],
    base: Reg,
    slot_base: u64,
    preamble: bool,
) -> ReducedProgram {
    let mut slots = BTreeMap::new();
    for (i, &r) in regs.iter().enumerate() {
        assert!(!r.is_zero(), "cannot demote xzr");
        slots.insert(r, slot_base + i as u64 * 8);
    }

    // Optional preamble: persist the context-provided initial values.
    let mut prologue = Vec::new();
    if preamble {
        for (&r, &slot) in &slots {
            prologue.push(Instr::Str {
                src: r,
                base,
                offset: MemOffset::Imm(slot as i64),
                size: AccessSize::B8,
            });
        }
    }

    // Pass 1: rewrite each instruction into a group, recording the new
    // index of each old instruction.
    let mut groups: Vec<Vec<Instr>> = Vec::with_capacity(program.len());
    for &instr in program.instrs() {
        let mut group = Vec::with_capacity(3);
        for r in instr.srcs().iter() {
            if let Some(&slot) = slots.get(&r) {
                group.push(Instr::Ldr {
                    dst: r,
                    base,
                    offset: MemOffset::Imm(slot as i64),
                    size: AccessSize::B8,
                });
            }
        }
        group.push(instr);
        for r in instr.dsts().iter() {
            if let Some(&slot) = slots.get(&r) {
                group.push(Instr::Str {
                    src: r,
                    base,
                    offset: MemOffset::Imm(slot as i64),
                    size: AccessSize::B8,
                });
            }
        }
        groups.push(group);
    }

    let mut new_index = Vec::with_capacity(groups.len());
    let mut acc = prologue.len() as u32;
    for g in &groups {
        new_index.push(acc);
        acc += g.len() as u32;
    }

    // Pass 2: flatten and remap branch targets. Branch targets point at the
    // *start* of the target instruction's group (so reloads run on entry);
    // the preamble is never re-executed.
    let mut out = prologue;
    out.reserve(acc as usize);
    for g in groups {
        for mut i in g {
            match &mut i {
                Instr::B { target }
                | Instr::Bcc { target, .. }
                | Instr::Cbz { target, .. }
                | Instr::Cbnz { target, .. } => *target = new_index[*target as usize],
                _ => {}
            }
            out.push(i);
        }
    }
    let added = out.len() - program.len();
    ReducedProgram {
        program: Program::new(&format!("{}_reduced", program.name()), out),
        slots,
        added_instrs: added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExecOutcome, Interpreter, ThreadCtx};
    use crate::mem::{DataMemory, FlatMem};
    use crate::program::Asm;
    use crate::reg::names::*;

    /// Nested-loop program: X10 is an outer-loop-only accumulator.
    fn nested() -> Program {
        let mut a = Asm::new("nested");
        a.mov_imm(X10, 0); // outer acc
        a.mov_imm(X9, 4); // outer counter
        a.label("outer");
        a.mov_imm(X1, 8); // inner counter
        a.label("inner");
        a.add(X0, X0, X1);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "inner");
        a.add(X10, X10, X0); // outer-loop use
        a.subi(X9, X9, 1);
        a.cbnz(X9, "outer");
        a.halt();
        a.assemble()
    }

    fn run(p: &Program, mem: &mut FlatMem) -> ThreadCtx {
        let mut ctx = ThreadCtx::new();
        let out = Interpreter::new(p, mem).run(&mut ctx, 1_000_000);
        assert!(matches!(out, ExecOutcome::Halted { .. }));
        ctx
    }

    #[test]
    fn semantics_preserved() {
        let p = nested();
        let mut m1 = FlatMem::new(0, 0x1000);
        let base = run(&p, &mut m1);

        let red = demote_registers(&p, &[X10], 0x800);
        let mut m2 = FlatMem::new(0, 0x1000);
        let reduced = run(&red.program, &mut m2);

        assert_eq!(base.get(X0), reduced.get(X0));
        // The demoted register's final value lives in its spill slot.
        assert_eq!(m2.read(red.slots[&X10], AccessSize::B8), base.get(X10));
    }

    #[test]
    fn branch_targets_remapped() {
        let p = nested();
        let red = demote_registers(&p, &[X10, X9], 0x800);
        // Every branch target must be in range and land on an instruction.
        for i in red.program.instrs() {
            if let Some(t) = i.branch_target() {
                assert!((t as usize) < red.program.len());
            }
        }
        assert!(red.added_instrs > 0);
    }

    #[test]
    fn overhead_is_static_per_reference() {
        let p = nested();
        let red = demote_registers(&p, &[X10], 0x800);
        // X10 is referenced 3 times (two defs incl. mov, one use+def in
        // add): mov_imm -> 1 str, add -> 1 ldr + 1 str = 3 added.
        assert_eq!(red.added_instrs, 3);
    }

    #[test]
    fn dynamic_overhead_small_for_outer_regs() {
        let p = nested();
        let mut m = FlatMem::new(0, 0x1000);
        let mut ctx = ThreadCtx::new();
        let ExecOutcome::Halted { instructions: base } =
            Interpreter::new(&p, &mut m).run(&mut ctx, 1_000_000)
        else {
            panic!()
        };
        let red = demote_registers(&p, &[X10], 0x800);
        let mut m2 = FlatMem::new(0, 0x1000);
        let mut ctx2 = ThreadCtx::new();
        let ExecOutcome::Halted {
            instructions: reduced,
        } = Interpreter::new(&red.program, &mut m2).run(&mut ctx2, 1_000_000)
        else {
            panic!()
        };
        let overhead = (reduced - base) as f64 / base as f64;
        assert!(
            overhead < 0.25,
            "outer-loop spills should be rare (got {overhead:.3})"
        );
    }

    #[test]
    fn demoting_inner_reg_still_correct() {
        // Even a hot register can be demoted — just expensively.
        let p = nested();
        let red = demote_registers(&p, &[X1], 0x800);
        let mut m1 = FlatMem::new(0, 0x1000);
        let base = run(&p, &mut m1);
        let mut m2 = FlatMem::new(0, 0x1000);
        let reduced = run(&red.program, &mut m2);
        assert_eq!(base.get(X0), reduced.get(X0));
        assert_eq!(base.get(X10), reduced.get(X10));
    }

    #[test]
    #[should_panic(expected = "cannot demote xzr")]
    fn xzr_rejected() {
        let p = nested();
        let _ = demote_registers(&p, &[XZR], 0x800);
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn misaligned_base_rejected() {
        let p = nested();
        let _ = demote_registers(&p, &[X10], 0x801);
    }
}
