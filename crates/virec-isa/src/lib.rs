#![warn(missing_docs)]

//! # virec-isa
//!
//! An AArch64-flavoured miniature integer ISA used by the ViReC simulator.
//!
//! The ViReC paper evaluates on the gem5 AArch64 in-order core. This crate
//! provides the equivalent substrate for a from-scratch reproduction:
//!
//! * [`Reg`] / [`instr::Instr`] — a reduced 32-register integer instruction
//!   set sufficient for the memory-intensive kernels of the evaluation
//!   (indirect loads/stores, ALU ops, compares, conditional branches).
//! * [`program::Asm`] — a tiny assembler with labels, producing a
//!   [`program::Program`].
//! * [`interp::Interpreter`] — a *golden* functional interpreter. Every
//!   timing simulator in the workspace is differentially tested against it:
//!   because register values really flow through the ViReC spill/fill
//!   machinery, a broken replacement policy produces wrong answers here,
//!   not just wrong cycle counts.
//! * [`analysis`] — static loop-nesting and register-pressure analysis used
//!   to reproduce the paper's Figure 2 (register utilization) and to apply
//!   the compiler register-reduction of §4.2.
//! * [`cfg`] / [`dataflow`] — basic-block CFG construction plus exact
//!   backward-liveness and reaching-definitions fixpoints: the static
//!   ground truth behind the `virec-verify` lint gate and the LRC/oracle
//!   prefetch cross-checks.
//! * [`mem::FlatMem`] — the flat functional memory shared by the golden
//!   interpreter and the timing models.

pub mod analysis;
pub mod cfg;
pub mod cond;
pub mod dataflow;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod program;
pub mod reduce;
pub mod reg;

pub use cfg::{Cfg, CfgError, NaturalLoop};
pub use cond::{Cond, Flags};
pub use dataflow::{Liveness, ReachingDefs};
pub use instr::{AccessSize, AluOp, Instr, MemOffset, Operand2, RegList};
pub use interp::{ExecOutcome, Interpreter, ThreadCtx};
pub use mem::{DataMemory, FlatMem};
pub use program::{Asm, Program};
pub use reduce::{demote_registers, ReducedProgram};
pub use reg::Reg;
