//! Programs and the label-resolving assembler.

use crate::cond::Cond;
use crate::instr::{AccessSize, AluOp, Instr, MemOffset, Operand2};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A fully assembled program: a sequence of instructions with branch targets
/// resolved to absolute instruction indices.
///
/// Programs are immutable and cheaply cloneable (`Arc` inside); a single
/// program image is shared by every hardware thread executing it.
#[derive(Clone)]
pub struct Program {
    instrs: Arc<[Instr]>,
    name: Arc<str>,
}

impl Program {
    /// Wraps a resolved instruction sequence.
    ///
    /// # Panics
    /// Panics if any branch target is out of range — such a program could
    /// never have been produced by the assembler.
    pub fn new(name: &str, instrs: Vec<Instr>) -> Program {
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.branch_target() {
                assert!(
                    (t as usize) < instrs.len(),
                    "instruction {pc} branches to {t}, past the end ({})",
                    instrs.len()
                );
            }
        }
        Program {
            instrs: instrs.into(),
            name: name.into(),
        }
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at index `pc`.
    pub fn fetch(&self, pc: u32) -> Instr {
        self.instrs[pc as usize]
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// A copy of this program with the instruction at `pc` replaced.
    /// Used to build negative-control fixtures (e.g. a deliberately
    /// corrupted spill reload) for the verification gates.
    ///
    /// # Panics
    /// Panics if `pc` is out of range or the replacement branches past the
    /// end (same well-formedness contract as [`Program::new`]).
    pub fn patched(&self, pc: usize, instr: Instr) -> Program {
        let mut instrs = self.instrs.to_vec();
        instrs[pc] = instr;
        Program::new(&self.name, instrs)
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} ({} instrs):", self.name, self.instrs.len())?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "  {pc:4}: {i}")?;
        }
        Ok(())
    }
}

/// A tiny assembler with named labels and forward references.
///
/// ```
/// use virec_isa::{Asm, reg::names::*};
///
/// let mut a = Asm::new("count_down");
/// a.mov_imm(X0, 10);
/// a.label("loop");
/// a.subi(X0, X0, 1);
/// a.cbnz(X0, "loop");
/// a.halt();
/// let prog = a.assemble();
/// assert_eq!(prog.len(), 4);
/// ```
pub struct Asm {
    name: String,
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    // (instruction index, label) fixups for forward references
    fixups: Vec<(usize, String)>,
}

impl Asm {
    /// Starts assembling a program called `name`.
    pub fn new(name: &str) -> Asm {
        Asm {
            name: name.to_string(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    /// Panics on duplicate label names.
    pub fn label(&mut self, name: &str) {
        let here = self.instrs.len() as u32;
        let prev = self.labels.insert(name.to_string(), here);
        assert!(prev.is_none(), "duplicate label {name:?}");
    }

    /// Current instruction index (useful for size accounting in tests).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn target(&mut self, label: &str) -> u32 {
        match self.labels.get(label) {
            Some(&t) => t,
            None => {
                // Forward reference: remember the slot, patch at assemble().
                self.fixups.push((self.instrs.len(), label.to_string()));
                u32::MAX
            }
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    // ---- ALU ----------------------------------------------------------

    /// `dst = src + rhs` (register).
    pub fn add(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = src + imm`.
    pub fn addi(&mut self, dst: Reg, src: Reg, imm: i64) {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            dst,
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = src - rhs` (register).
    pub fn sub(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sub,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = src - imm`.
    pub fn subi(&mut self, dst: Reg, src: Reg, imm: i64) {
        self.emit(Instr::Alu {
            op: AluOp::Sub,
            dst,
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = src & imm`.
    pub fn andi(&mut self, dst: Reg, src: Reg, imm: i64) {
        self.emit(Instr::Alu {
            op: AluOp::And,
            dst,
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = src & rhs`.
    pub fn and(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::And,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = src ^ rhs`.
    pub fn eor(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Eor,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = src | rhs`.
    pub fn orr(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Orr,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = src << imm`.
    pub fn lsli(&mut self, dst: Reg, src: Reg, imm: i64) {
        self.emit(Instr::Alu {
            op: AluOp::Lsl,
            dst,
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = src >> imm` (logical).
    pub fn lsri(&mut self, dst: Reg, src: Reg, imm: i64) {
        self.emit(Instr::Alu {
            op: AluOp::Lsr,
            dst,
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = src * rhs`.
    pub fn mul(&mut self, dst: Reg, src: Reg, rhs: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Mul,
            dst,
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `dst = a * b + acc`.
    pub fn madd(&mut self, dst: Reg, a: Reg, b: Reg, acc: Reg) {
        self.emit(Instr::Madd { dst, a, b, acc });
    }

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) {
        self.emit(Instr::MovImm { dst, imm });
    }

    /// `dst = src` (encoded as `orr dst, src, xzr`-style ALU move).
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Orr,
            dst,
            src,
            rhs: Operand2::Imm(0),
        });
    }

    /// `flags = src - rhs` (register).
    pub fn cmp(&mut self, src: Reg, rhs: Reg) {
        self.emit(Instr::Cmp {
            src,
            rhs: Operand2::Reg(rhs),
        });
    }

    /// `flags = src - imm`.
    pub fn cmpi(&mut self, src: Reg, imm: i64) {
        self.emit(Instr::Cmp {
            src,
            rhs: Operand2::Imm(imm),
        });
    }

    /// `dst = cond ? a : b`.
    pub fn csel(&mut self, dst: Reg, a: Reg, b: Reg, cond: Cond) {
        self.emit(Instr::Csel { dst, a, b, cond });
    }

    // ---- Memory -------------------------------------------------------

    /// `dst = mem64[base + imm]`.
    pub fn ldr(&mut self, dst: Reg, base: Reg, imm: i64) {
        self.emit(Instr::Ldr {
            dst,
            base,
            offset: MemOffset::Imm(imm),
            size: AccessSize::B8,
        });
    }

    /// `dst = mem64[base + (index << shift)]`.
    pub fn ldr_idx(&mut self, dst: Reg, base: Reg, index: Reg, shift: u8) {
        self.emit(Instr::Ldr {
            dst,
            base,
            offset: MemOffset::RegShifted { index, shift },
            size: AccessSize::B8,
        });
    }

    /// `dst = mem32[base + (index << shift)]`, zero-extended.
    pub fn ldr_w_idx(&mut self, dst: Reg, base: Reg, index: Reg, shift: u8) {
        self.emit(Instr::Ldr {
            dst,
            base,
            offset: MemOffset::RegShifted { index, shift },
            size: AccessSize::B4,
        });
    }

    /// `mem64[base + imm] = src`.
    pub fn str(&mut self, src: Reg, base: Reg, imm: i64) {
        self.emit(Instr::Str {
            src,
            base,
            offset: MemOffset::Imm(imm),
            size: AccessSize::B8,
        });
    }

    /// `mem64[base + (index << shift)] = src`.
    pub fn str_idx(&mut self, src: Reg, base: Reg, index: Reg, shift: u8) {
        self.emit(Instr::Str {
            src,
            base,
            offset: MemOffset::RegShifted { index, shift },
            size: AccessSize::B8,
        });
    }

    /// `mem32[base + (index << shift)] = src` (low 32 bits).
    pub fn str_w_idx(&mut self, src: Reg, base: Reg, index: Reg, shift: u8) {
        self.emit(Instr::Str {
            src,
            base,
            offset: MemOffset::RegShifted { index, shift },
            size: AccessSize::B4,
        });
    }

    // ---- Control flow -------------------------------------------------

    /// Unconditional branch to `label`.
    pub fn b(&mut self, label: &str) {
        let target = self.target(label);
        self.emit(Instr::B { target });
    }

    /// Conditional branch to `label`.
    pub fn bcc(&mut self, cond: Cond, label: &str) {
        let target = self.target(label);
        self.emit(Instr::Bcc { cond, target });
    }

    /// Branch to `label` if `src == 0`.
    pub fn cbz(&mut self, src: Reg, label: &str) {
        let target = self.target(label);
        self.emit(Instr::Cbz { src, target });
    }

    /// Branch to `label` if `src != 0`.
    pub fn cbnz(&mut self, src: Reg, label: &str) {
        let target = self.target(label);
        self.emit(Instr::Cbnz { src, target });
    }

    /// No operation.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Terminates the thread.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Resolves all forward references and produces the program.
    ///
    /// # Panics
    /// Panics on undefined labels.
    pub fn assemble(mut self) -> Program {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let &t = self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("undefined label {label:?}"));
            let i = &mut self.instrs[idx];
            match i {
                Instr::B { target }
                | Instr::Bcc { target, .. }
                | Instr::Cbz { target, .. }
                | Instr::Cbnz { target, .. } => *target = t,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Program::new(&self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn backward_label_resolution() {
        let mut a = Asm::new("t");
        a.label("top");
        a.nop();
        a.b("top");
        let p = a.assemble();
        assert_eq!(p.fetch(1).branch_target(), Some(0));
    }

    #[test]
    fn forward_label_resolution() {
        let mut a = Asm::new("t");
        a.cbz(X0, "end");
        a.nop();
        a.label("end");
        a.halt();
        let p = a.assemble();
        assert_eq!(p.fetch(0).branch_target(), Some(2));
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new("t");
        a.b("nowhere");
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new("t");
        a.label("x");
        a.label("x");
    }

    #[test]
    fn program_is_cheap_to_clone() {
        let mut a = Asm::new("t");
        for _ in 0..100 {
            a.nop();
        }
        a.halt();
        let p = a.assemble();
        let q = p.clone();
        assert_eq!(p.len(), q.len());
        assert!(std::ptr::eq(p.instrs().as_ptr(), q.instrs().as_ptr()));
    }

    #[test]
    fn mov_is_alu_identity() {
        let mut a = Asm::new("t");
        a.mov(X1, X2);
        let p = a.assemble();
        let i = p.fetch(0);
        assert!(i.srcs().contains(X2));
        assert!(i.dsts().contains(X1));
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn out_of_range_target_rejected() {
        let _ = Program::new("bad", vec![Instr::B { target: 5 }]);
    }
}
