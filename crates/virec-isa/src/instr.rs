//! Instruction definitions.
//!
//! The instruction set is a reduced, AArch64-flavoured integer subset chosen
//! to express the paper's memory-intensive kernels (streaming indirect
//! gathers/scatters, strided sweeps, pointer chasing, mixed compute phases).
//! Every instruction knows its source/destination registers so the VRMU in
//! `virec-core` can look them up in the tag store during decode.

use crate::cond::Cond;
use crate::reg::Reg;
use std::fmt;

/// Second operand of ALU/compare instructions: a register or an immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand2 {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

/// ALU operations (three-operand register form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Orr,
    /// Bitwise exclusive or.
    Eor,
    /// Logical shift left (shift amount taken mod 64).
    Lsl,
    /// Logical shift right (shift amount taken mod 64).
    Lsr,
    /// Arithmetic shift right (shift amount taken mod 64).
    Asr,
    /// Multiplication (wrapping, low 64 bits).
    Mul,
    /// Unsigned division (division by zero yields zero, as on AArch64).
    Udiv,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Orr => a | b,
            AluOp::Eor => a ^ b,
            AluOp::Lsl => a.wrapping_shl(b as u32 & 63),
            AluOp::Lsr => a.wrapping_shr(b as u32 & 63),
            AluOp::Asr => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Udiv => a.checked_div(b).unwrap_or(0),
        }
    }

    /// Execute-stage latency in cycles for a simple single-issue core.
    ///
    /// Matches the in-order CVA6-like configuration of Table 1: single-cycle
    /// simple ALU, multi-cycle multiply/divide.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Udiv => 12,
            _ => 1,
        }
    }
}

/// Access width for memory instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// One byte (`ldrb`/`strb`).
    B1,
    /// Four bytes (`ldr w`/`str w`), zero-extended on load.
    B4,
    /// Eight bytes (`ldr x`/`str x`).
    B8,
}

impl AccessSize {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }
}

/// Addressing-mode offset for loads and stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOffset {
    /// Immediate byte offset: `[base, #imm]`.
    Imm(i64),
    /// Scaled register offset: `[base, index, lsl #shift]`.
    RegShifted {
        /// Index register.
        index: Reg,
        /// Left-shift applied to the index (0..=4).
        shift: u8,
    },
}

/// A fixed-capacity list of registers, used to report the sources and
/// destinations of an instruction without heap allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegList {
    regs: [Reg; 4],
    len: u8,
}

impl Default for RegList {
    fn default() -> Self {
        RegList::new()
    }
}

impl RegList {
    /// The empty list.
    pub const fn new() -> RegList {
        RegList {
            regs: [Reg::XZR; 4],
            len: 0,
        }
    }

    /// Appends a register unless it is `xzr` or already present.
    ///
    /// The zero register has no cacheable state, so the VRMU never tracks it.
    pub fn push(&mut self, r: Reg) {
        if r.is_zero() || self.iter().any(|x| x == r) {
            return;
        }
        assert!((self.len as usize) < self.regs.len(), "RegList overflow");
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    /// Number of registers in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs[..self.len as usize].iter().copied()
    }

    /// Whether the list contains `r`.
    pub fn contains(&self, r: Reg) -> bool {
        self.iter().any(|x| x == r)
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut l = RegList::new();
        for r in iter {
            l.push(r);
        }
        l
    }
}

/// A single instruction. Branch targets are absolute instruction indices,
/// resolved by the assembler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Three-operand ALU operation: `dst = op(src, rhs)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        src: Reg,
        /// Second operand.
        rhs: Operand2,
    },
    /// Multiply-add: `dst = a * b + acc`.
    Madd {
        /// Destination register.
        dst: Reg,
        /// First multiplicand.
        a: Reg,
        /// Second multiplicand.
        b: Reg,
        /// Addend.
        acc: Reg,
    },
    /// Load a 64-bit immediate: `dst = imm` (models `mov`/`movz`+`movk`).
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Compare and set flags: `flags = src - rhs`.
    Cmp {
        /// First operand.
        src: Reg,
        /// Second operand.
        rhs: Operand2,
    },
    /// Conditional select: `dst = cond ? a : b`.
    Csel {
        /// Destination register.
        dst: Reg,
        /// Value when the condition holds.
        a: Reg,
        /// Value when it does not.
        b: Reg,
        /// The condition.
        cond: Cond,
    },
    /// Load: `dst = mem[base + offset]`, zero-extended to 64 bits.
    Ldr {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Addressing-mode offset.
        offset: MemOffset,
        /// Access width.
        size: AccessSize,
    },
    /// Store: `mem[base + offset] = src` (low `size` bytes).
    Str {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Addressing-mode offset.
        offset: MemOffset,
        /// Access width.
        size: AccessSize,
    },
    /// Unconditional branch to an absolute instruction index.
    B {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch on the flags.
    Bcc {
        /// Branch condition.
        cond: Cond,
        /// Target instruction index.
        target: u32,
    },
    /// Compare-and-branch-if-zero.
    Cbz {
        /// Register compared against zero.
        src: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Compare-and-branch-if-nonzero.
    Cbnz {
        /// Register compared against zero.
        src: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// No operation.
    Nop,
    /// Terminates the thread.
    Halt,
}

impl Instr {
    /// Source registers read by this instruction (excluding `xzr`).
    pub fn srcs(&self) -> RegList {
        let mut l = RegList::new();
        match *self {
            Instr::Alu { src, rhs, .. } => {
                l.push(src);
                if let Operand2::Reg(r) = rhs {
                    l.push(r);
                }
            }
            Instr::Madd { a, b, acc, .. } => {
                l.push(a);
                l.push(b);
                l.push(acc);
            }
            Instr::MovImm { .. } => {}
            Instr::Cmp { src, rhs } => {
                l.push(src);
                if let Operand2::Reg(r) = rhs {
                    l.push(r);
                }
            }
            Instr::Csel { a, b, .. } => {
                l.push(a);
                l.push(b);
            }
            Instr::Ldr { base, offset, .. } => {
                l.push(base);
                if let MemOffset::RegShifted { index, .. } = offset {
                    l.push(index);
                }
            }
            Instr::Str {
                src, base, offset, ..
            } => {
                l.push(src);
                l.push(base);
                if let MemOffset::RegShifted { index, .. } = offset {
                    l.push(index);
                }
            }
            Instr::Cbz { src, .. } | Instr::Cbnz { src, .. } => l.push(src),
            Instr::B { .. } | Instr::Bcc { .. } | Instr::Nop | Instr::Halt => {}
        }
        l
    }

    /// Destination registers written by this instruction (excluding `xzr`).
    pub fn dsts(&self) -> RegList {
        let mut l = RegList::new();
        match *self {
            Instr::Alu { dst, .. }
            | Instr::Madd { dst, .. }
            | Instr::MovImm { dst, .. }
            | Instr::Csel { dst, .. }
            | Instr::Ldr { dst, .. } => l.push(dst),
            _ => {}
        }
        l
    }

    /// All registers touched (sources first, then destinations).
    pub fn regs(&self) -> RegList {
        let mut l = self.srcs();
        for r in self.dsts().iter() {
            l.push(r);
        }
        l
    }

    /// Whether this is a memory (load or store) instruction.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Ldr { .. } | Instr::Str { .. })
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Ldr { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Str { .. })
    }

    /// Whether this is any kind of control-flow instruction.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::B { .. } | Instr::Bcc { .. } | Instr::Cbz { .. } | Instr::Cbnz { .. }
        )
    }

    /// Branch target, if this is a control-flow instruction.
    pub fn branch_target(&self) -> Option<u32> {
        match *self {
            Instr::B { target }
            | Instr::Bcc { target, .. }
            | Instr::Cbz { target, .. }
            | Instr::Cbnz { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Whether the instruction reads the flags register.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Instr::Bcc { .. } | Instr::Csel { .. })
    }

    /// Whether the instruction writes the flags register.
    pub fn writes_flags(&self) -> bool {
        matches!(self, Instr::Cmp { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op2(o: &Operand2) -> String {
            match o {
                Operand2::Reg(r) => format!("{r}"),
                Operand2::Imm(i) => format!("#{i}"),
            }
        }
        fn addr(base: &Reg, off: &MemOffset) -> String {
            match off {
                MemOffset::Imm(0) => format!("[{base}]"),
                MemOffset::Imm(i) => format!("[{base}, #{i}]"),
                MemOffset::RegShifted { index, shift: 0 } => format!("[{base}, {index}]"),
                MemOffset::RegShifted { index, shift } => {
                    format!("[{base}, {index}, lsl #{shift}]")
                }
            }
        }
        match self {
            Instr::Alu { op, dst, src, rhs } => {
                let name = format!("{op:?}").to_lowercase();
                write!(f, "{name} {dst}, {src}, {}", op2(rhs))
            }
            Instr::Madd { dst, a, b, acc } => write!(f, "madd {dst}, {a}, {b}, {acc}"),
            Instr::MovImm { dst, imm } => write!(f, "mov {dst}, #{imm}"),
            Instr::Cmp { src, rhs } => write!(f, "cmp {src}, {}", op2(rhs)),
            Instr::Csel { dst, a, b, cond } => {
                write!(f, "csel {dst}, {a}, {b}, {cond:?}")
            }
            Instr::Ldr {
                dst, base, offset, ..
            } => write!(f, "ldr {dst}, {}", addr(base, offset)),
            Instr::Str {
                src, base, offset, ..
            } => write!(f, "str {src}, {}", addr(base, offset)),
            Instr::B { target } => write!(f, "b {target}"),
            Instr::Bcc { cond, target } => {
                let name = format!("{cond:?}").to_lowercase();
                write!(f, "b.{name} {target}")
            }
            Instr::Cbz { src, target } => write!(f, "cbz {src}, {target}"),
            Instr::Cbnz { src, target } => write!(f, "cbnz {src}, {target}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn srcs_and_dsts_gather_load() {
        // ldr x6, [x2, x5, lsl #3] — the gather inner-loop access from Fig. 5.
        let i = Instr::Ldr {
            dst: X6,
            base: X2,
            offset: MemOffset::RegShifted {
                index: X5,
                shift: 3,
            },
            size: AccessSize::B8,
        };
        let srcs = i.srcs();
        assert!(srcs.contains(X2) && srcs.contains(X5));
        assert_eq!(srcs.len(), 2);
        assert!(i.dsts().contains(X6));
        assert!(i.is_mem() && i.is_load() && !i.is_store());
    }

    #[test]
    fn store_has_no_dsts() {
        let i = Instr::Str {
            src: X1,
            base: X2,
            offset: MemOffset::Imm(8),
            size: AccessSize::B8,
        };
        assert!(i.dsts().is_empty());
        assert_eq!(i.srcs().len(), 2);
    }

    #[test]
    fn xzr_never_tracked() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: XZR,
            src: XZR,
            rhs: Operand2::Reg(XZR),
        };
        assert!(i.srcs().is_empty());
        assert!(i.dsts().is_empty());
    }

    #[test]
    fn reglist_dedups() {
        // madd x1, x2, x2, x2 — x2 must appear once.
        let i = Instr::Madd {
            dst: X1,
            a: X2,
            b: X2,
            acc: X2,
        };
        assert_eq!(i.srcs().len(), 1);
        assert_eq!(i.regs().len(), 2);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Lsl.apply(1, 3), 8);
        assert_eq!(AluOp::Lsr.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Asr.apply((-8i64) as u64, 2), (-2i64) as u64);
        assert_eq!(AluOp::Udiv.apply(7, 0), 0, "div by zero yields 0");
        assert_eq!(AluOp::Udiv.apply(7, 2), 3);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Instr::B { target: 7 }.branch_target(), Some(7));
        assert_eq!(Instr::Nop.branch_target(), None);
        assert!(Instr::Bcc {
            cond: Cond::Ne,
            target: 0
        }
        .reads_flags());
        assert!(Instr::Cmp {
            src: X0,
            rhs: Operand2::Imm(0)
        }
        .writes_flags());
    }

    #[test]
    fn display_round() {
        let i = Instr::Ldr {
            dst: X6,
            base: X2,
            offset: MemOffset::RegShifted {
                index: X5,
                shift: 3,
            },
            size: AccessSize::B8,
        };
        assert_eq!(format!("{i}"), "ldr x6, [x2, x5, lsl #3]");
    }
}
