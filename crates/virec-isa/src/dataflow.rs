//! Bitset dataflow fixpoints over the [`crate::cfg::Cfg`]: backward
//! liveness with exact per-PC live sets, and forward reaching definitions
//! with entry pseudo-definitions (the basis of the maybe-uninitialized-read
//! lint).
//!
//! Register sets are `u32` masks: bit `i` (0..=30) is `x{i}`, and
//! [`FLAGS_BIT`] (bit 31) tracks the condition flags as a pseudo-register.
//! `xzr` never appears in a mask — [`crate::instr::RegList`] filters it, and
//! reading it always yields zero, so it is neither defined nor live.

use crate::cfg::Cfg;
use crate::instr::Instr;
use crate::reg::{Reg, NUM_ALLOCATABLE};

/// Mask bit for the condition flags pseudo-register.
pub const FLAGS_BIT: u32 = 1 << 31;

/// Mask covering every allocatable architectural register (`x0..=x30`),
/// excluding the flags.
pub const ALL_REGS: u32 = (1 << NUM_ALLOCATABLE) - 1;

/// Registers (and flags) an instruction reads.
pub fn use_mask(i: &Instr) -> u32 {
    let mut m = 0u32;
    for r in i.srcs().iter() {
        m |= 1 << r.index();
    }
    if i.reads_flags() {
        m |= FLAGS_BIT;
    }
    m
}

/// Registers (and flags) an instruction writes.
pub fn def_mask(i: &Instr) -> u32 {
    let mut m = 0u32;
    for r in i.dsts().iter() {
        m |= 1 << r.index();
    }
    if i.writes_flags() {
        m |= FLAGS_BIT;
    }
    m
}

/// Expands the register bits of a mask (flags stripped) into `Reg`s.
pub fn regs_of_mask(mask: u32) -> Vec<Reg> {
    (0..NUM_ALLOCATABLE)
        .filter(|b| mask & (1 << b) != 0)
        .map(|b| Reg::new(b as u8))
        .collect()
}

/// Per-PC liveness: `live_in[pc]` is the set of registers (and flags) that
/// may be read before being written on some path starting *at* `pc`;
/// `live_out[pc]` the same for paths starting after `pc`.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live set immediately before each instruction.
    pub live_in: Vec<u32>,
    /// Live set immediately after each instruction.
    pub live_out: Vec<u32>,
}

impl Liveness {
    /// Backward may-liveness fixpoint.
    ///
    /// `halt_live` is treated as the use set of `Halt`: the simulator
    /// compares the *full* final architectural state against the golden
    /// interpreter, so by default every register is observable at program
    /// exit ([`ALL_REGS`]) — which also keeps the dead-store lint sound for
    /// values only "used" by that final comparison.
    pub fn compute(cfg: &Cfg, instrs: &[Instr], halt_live: u32) -> Liveness {
        let pc_use = |pc: usize| -> u32 {
            if matches!(instrs[pc], Instr::Halt) {
                halt_live
            } else {
                use_mask(&instrs[pc])
            }
        };

        // Block summaries: use = read before written, def = written.
        let nb = cfg.blocks.len();
        let mut buse = vec![0u32; nb];
        let mut bdef = vec![0u32; nb];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for pc in (blk.start..blk.end).rev() {
                let d = def_mask(&instrs[pc]);
                buse[b] = pc_use(pc) | (buse[b] & !d);
                bdef[b] |= d;
            }
        }

        // Round-robin to fixpoint in postorder (backward problem);
        // unreachable blocks are appended so their sets converge too.
        let mut bin = vec![0u32; nb];
        let mut bout = vec![0u32; nb];
        let mut order: Vec<usize> = cfg.rpo.iter().rev().copied().collect();
        order.extend((0..nb).filter(|b| !cfg.reachable[*b]));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = 0u32;
                for &s in &cfg.blocks[b].succs {
                    out |= bin[s];
                }
                let inn = buse[b] | (out & !bdef[b]);
                if out != bout[b] || inn != bin[b] {
                    bout[b] = out;
                    bin[b] = inn;
                    changed = true;
                }
            }
        }

        // Per-PC expansion within each block.
        let n = instrs.len();
        let mut live_in = vec![0u32; n];
        let mut live_out = vec![0u32; n];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            let mut live = bout[b];
            for pc in (blk.start..blk.end).rev() {
                live_out[pc] = live;
                live = pc_use(pc) | (live & !def_mask(&instrs[pc]));
                live_in[pc] = live;
            }
            debug_assert_eq!(live, bin[b]);
        }
        Liveness { live_in, live_out }
    }
}

/// A definition site tracked by [`ReachingDefs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// PC of the defining instruction, or `None` for the entry
    /// pseudo-definition carrying the register's initial (possibly
    /// uninitialized) value.
    pub pc: Option<usize>,
    /// Bit index of the defined register (31 = flags).
    pub bit: u32,
}

/// Forward reaching-definitions fixpoint with one entry pseudo-definition
/// per register.
///
/// An entry pseudo-def whose register is *not* in `initial_regs` models an
/// uninitialized value; if it reaches a read, the program may observe
/// garbage — the maybe-uninitialized-read lint.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites; the first 32 are the entry pseudo-defs for
    /// bits 0..=31.
    pub sites: Vec<DefSite>,
    /// Per-PC reaching set, one bit per site (indexes [`ReachingDefs::sites`]).
    at: Vec<Vec<u64>>,
    /// Registers whose entry pseudo-def models an uninitialized value.
    uninit_entry: u32,
}

fn bs_contains(w: &[u64], i: usize) -> bool {
    w[i / 64] & (1 << (i % 64)) != 0
}

fn bs_set(w: &mut [u64], i: usize) {
    w[i / 64] |= 1 << (i % 64);
}

fn bs_clear(w: &mut [u64], i: usize) {
    w[i / 64] &= !(1 << (i % 64));
}

impl ReachingDefs {
    /// Forward may fixpoint over the reachable subgraph. `initial_regs` is
    /// the mask of registers (plus optionally [`FLAGS_BIT`]) holding defined
    /// values at entry — ABI parameters, per-thread context registers, the
    /// frame pointer.
    pub fn compute(cfg: &Cfg, instrs: &[Instr], initial_regs: u32) -> ReachingDefs {
        let mut sites: Vec<DefSite> = (0..32).map(|bit| DefSite { pc: None, bit }).collect();
        // sites_of[bit] = indices of all sites defining that register.
        let mut sites_of: Vec<Vec<usize>> = (0..32).map(|b| vec![b]).collect();
        let mut site_at_pc: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];
        for (pc, i) in instrs.iter().enumerate() {
            let d = def_mask(i);
            for bit in 0..32 {
                if d & (1 << bit) != 0 {
                    let id = sites.len();
                    sites.push(DefSite { pc: Some(pc), bit });
                    sites_of[bit as usize].push(id);
                    site_at_pc[pc].push(id);
                }
            }
        }
        let nsites = sites.len();
        let words = nsites.div_ceil(64);

        // Block gen/kill in terms of site bitsets.
        let nb = cfg.blocks.len();
        let apply_pc = |set: &mut Vec<u64>, pc: usize| {
            for &id in &site_at_pc[pc] {
                let bit = sites[id].bit as usize;
                for &other in &sites_of[bit] {
                    bs_clear(set, other);
                }
                bs_set(set, id);
            }
        };

        let mut bin: Vec<Vec<u64>> = vec![vec![0u64; words]; nb];
        let mut bout: Vec<Vec<u64>> = vec![vec![0u64; words]; nb];
        // Entry: all 32 pseudo-defs reach block 0.
        for bit in 0..32 {
            bs_set(&mut bin[0], bit);
        }
        {
            let mut s = bin[0].clone();
            for pc in cfg.blocks[0].start..cfg.blocks[0].end {
                apply_pc(&mut s, pc);
            }
            bout[0] = s;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let mut inn = if b == 0 {
                    bin[0].clone()
                } else {
                    let mut m = vec![0u64; words];
                    for &p in &cfg.blocks[b].preds {
                        for (w, pw) in m.iter_mut().zip(&bout[p]) {
                            *w |= pw;
                        }
                    }
                    m
                };
                if b != 0 && inn != bin[b] {
                    bin[b] = inn.clone();
                    changed = true;
                }
                for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                    apply_pc(&mut inn, pc);
                }
                if inn != bout[b] {
                    bout[b] = inn;
                    changed = true;
                }
            }
        }

        // Per-PC expansion (reachable blocks only; unreachable PCs keep an
        // empty set — no path from entry reaches them).
        let mut at: Vec<Vec<u64>> = vec![vec![0u64; words]; instrs.len()];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            if !cfg.reachable[b] {
                continue;
            }
            let mut s = bin[b].clone();
            for (pc, slot) in at.iter_mut().enumerate().take(blk.end).skip(blk.start) {
                slot.clone_from(&s);
                apply_pc(&mut s, pc);
            }
        }

        ReachingDefs {
            sites,
            at,
            uninit_entry: !initial_regs,
        }
    }

    /// Mask of registers whose entry (uninitialized) pseudo-def reaches `pc`.
    pub fn maybe_uninit_at(&self, pc: usize) -> u32 {
        let mut m = 0u32;
        for bit in 0..32u32 {
            if self.uninit_entry & (1 << bit) != 0 && bs_contains(&self.at[pc], bit as usize) {
                m |= 1 << bit;
            }
        }
        m
    }

    /// Definition sites of register bit `bit` reaching `pc`.
    pub fn defs_reaching(&self, pc: usize, bit: u32) -> Vec<DefSite> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(id, s)| s.bit == bit && bs_contains(&self.at[pc], *id))
            .map(|(_, s)| *s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;
    use crate::reg::names::*;

    fn cfg_of(a: Asm) -> (Cfg, Vec<Instr>) {
        let p = a.assemble();
        let instrs = p.instrs().to_vec();
        (Cfg::build(&instrs).unwrap(), instrs)
    }

    #[test]
    fn loop_carried_value_is_live_at_head() {
        let mut a = Asm::new("l");
        a.mov_imm(X1, 8); // 0
        a.label("top");
        a.add(X0, X0, X1); // 1
        a.subi(X1, X1, 1); // 2
        a.cbnz(X1, "top"); // 3
        a.halt(); // 4
        let (cfg, instrs) = cfg_of(a);
        let lv = Liveness::compute(&cfg, &instrs, ALL_REGS);
        // At the loop head both the accumulator and the counter are live.
        assert_ne!(lv.live_in[1] & (1 << 0), 0, "x0 live at head");
        assert_ne!(lv.live_in[1] & (1 << 1), 0, "x1 live at head");
        // x0 is live-in at entry too: it is read before any write.
        assert_ne!(lv.live_in[0] & 1, 0);
    }

    #[test]
    fn halt_live_controls_exit_liveness() {
        let mut a = Asm::new("h");
        a.mov_imm(X5, 7);
        a.halt();
        let (cfg, instrs) = cfg_of(a);
        let all = Liveness::compute(&cfg, &instrs, ALL_REGS);
        assert_ne!(all.live_out[0] & (1 << 5), 0, "x5 observable at halt");
        let none = Liveness::compute(&cfg, &instrs, 0);
        assert_eq!(
            none.live_out[0] & (1 << 5),
            0,
            "dead when halt uses nothing"
        );
    }

    #[test]
    fn flags_tracked_through_branches() {
        use crate::cond::Cond;
        let mut a = Asm::new("f");
        a.cmpi(X0, 3); // 0: defines flags
        a.bcc(Cond::Gt, "t"); // 1: reads flags
        a.label("t");
        a.halt();
        let (cfg, instrs) = cfg_of(a);
        let lv = Liveness::compute(&cfg, &instrs, ALL_REGS);
        assert_ne!(lv.live_out[0] & FLAGS_BIT, 0);
        assert_eq!(lv.live_in[0] & FLAGS_BIT, 0, "flags defined at 0");
    }

    #[test]
    fn uninit_read_reaches_use() {
        let mut a = Asm::new("u");
        a.add(X0, X2, X3); // reads x2/x3, never written
        a.halt();
        let (cfg, instrs) = cfg_of(a);
        let rd = ReachingDefs::compute(&cfg, &instrs, 0);
        let mu = rd.maybe_uninit_at(0);
        assert_ne!(mu & (1 << 2), 0);
        assert_ne!(mu & (1 << 3), 0);
        // Initial regs suppress it.
        let rd2 = ReachingDefs::compute(&cfg, &instrs, (1 << 2) | (1 << 3));
        assert_eq!(rd2.maybe_uninit_at(0) & ((1 << 2) | (1 << 3)), 0);
    }

    #[test]
    fn one_armed_init_is_maybe_uninit() {
        let mut a = Asm::new("m");
        a.cbnz(X0, "skip"); // 0 (x0 initial)
        a.mov_imm(X1, 1); // 1: defines x1 on one path only
        a.label("skip");
        a.add(X2, X1, X1); // 2: reads x1 — maybe uninit
        a.halt();
        let (cfg, instrs) = cfg_of(a);
        let rd = ReachingDefs::compute(&cfg, &instrs, 1 << 0);
        assert_ne!(rd.maybe_uninit_at(2) & (1 << 1), 0);
        // Both the entry pseudo-def and the pc-1 def reach pc 2.
        let defs = rd.defs_reaching(2, 1);
        assert!(defs.contains(&DefSite { pc: None, bit: 1 }));
        assert!(defs.contains(&DefSite {
            pc: Some(1),
            bit: 1
        }));
    }

    #[test]
    fn dominating_def_kills_entry_pseudo_def() {
        let mut a = Asm::new("d");
        a.mov_imm(X1, 5); // 0
        a.label("top");
        a.subi(X1, X1, 1); // 1
        a.cbnz(X1, "top"); // 2
        a.add(X0, X1, X1); // 3
        a.halt();
        let (cfg, instrs) = cfg_of(a);
        let rd = ReachingDefs::compute(&cfg, &instrs, 0);
        for pc in 1..4 {
            assert_eq!(rd.maybe_uninit_at(pc) & (1 << 1), 0, "pc {pc}");
        }
    }
}
