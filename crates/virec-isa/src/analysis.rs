//! Static program analysis: loop nesting and register pressure.
//!
//! Used to reproduce the paper's Figure 2 (register utilization of
//! memory-intensive workloads) and to characterize the *active context* —
//! the registers accessed inside the innermost loops, which is what ViReC
//! sizes its physical register file against (§2, §4.2).
//!
//! Loop bodies are taken from the natural loops of the basic-block CFG
//! ([`crate::cfg`]), so the register sets are exact even when a body is not
//! a contiguous PC range. [`RegisterUsage::try_analyze`] additionally
//! *enforces* the contiguous-loop/reducibility assumption this module
//! historically documented but never checked, returning a typed
//! [`AnalysisError`] when a program violates it.

use crate::cfg::{Cfg, CfgError};
use crate::instr::Instr;
use crate::program::Program;
use crate::reg::{Reg, NUM_ALLOCATABLE};
use std::collections::BTreeSet;

/// A natural loop identified from a back edge `source -> target` with
/// `target <= source`.
///
/// The assembler emits reducible, structurally nested loops, so for every
/// program in this repository the body is the contiguous range
/// `head..=back_edge`; [`RegisterUsage::try_analyze`] validates this against
/// the CFG instead of assuming it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loop {
    /// First instruction of the loop body.
    pub head: u32,
    /// The back-edge branch instruction (last instruction of the body).
    pub back_edge: u32,
    /// Nesting depth, 1 = outermost.
    pub depth: u32,
}

/// Violation of the structural assumptions [`RegisterUsage`] documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The program's control flow is structurally broken (empty program or
    /// out-of-bounds branch target).
    Malformed(CfgError),
    /// The CFG contains a retreating edge that is not a back edge: loop
    /// structure is irreducible and nesting depths are undefined.
    Irreducible,
    /// A natural loop's body is not the contiguous PC range
    /// `head..=back_edge` that the span approximation assumes.
    NonContiguousLoop {
        /// First instruction of the loop header block.
        head: u32,
        /// PC of the back-edge branch.
        back_edge: u32,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AnalysisError::Malformed(e) => write!(f, "malformed control flow: {e}"),
            AnalysisError::Irreducible => write!(f, "irreducible loop structure"),
            AnalysisError::NonContiguousLoop { head, back_edge } => {
                write!(f, "loop {head}..={back_edge} has a non-contiguous body")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Register-usage summary of a program.
///
/// ```
/// use virec_isa::{Asm, analysis::RegisterUsage, reg::names::*};
/// let mut a = Asm::new("loop");
/// a.mov_imm(X1, 8);
/// a.label("top");
/// a.add(X0, X0, X1);
/// a.subi(X1, X1, 1);
/// a.cbnz(X1, "top");
/// a.halt();
/// let usage = RegisterUsage::analyze(&a.assemble());
/// assert_eq!(usage.max_depth, 1);
/// assert_eq!(usage.active_context_size(), 2); // x0 and x1
/// ```
#[derive(Clone, Debug)]
pub struct RegisterUsage {
    /// All loops, ordered by head.
    pub loops: Vec<Loop>,
    /// Registers referenced anywhere in the program.
    pub all_used: BTreeSet<Reg>,
    /// Registers referenced inside maximum-depth (innermost) loops.
    pub innermost: BTreeSet<Reg>,
    /// Registers referenced *only* outside the innermost loops — candidates
    /// for the compiler register reduction of §4.2.
    pub outer_only: BTreeSet<Reg>,
    /// Maximum loop nesting depth (0 when the program has no loops).
    pub max_depth: u32,
}

impl RegisterUsage {
    /// Analyzes a program, enforcing the documented structural assumptions:
    /// well-formed control flow, reducible loops, contiguous loop bodies.
    pub fn try_analyze(program: &Program) -> Result<RegisterUsage, AnalysisError> {
        let instrs = program.instrs();
        let cfg = Cfg::build(instrs).map_err(AnalysisError::Malformed)?;
        if !cfg.reducible {
            return Err(AnalysisError::Irreducible);
        }
        if let Some(l) = cfg.loops.iter().find(|l| !l.contiguous) {
            return Err(AnalysisError::NonContiguousLoop {
                head: cfg.blocks[l.head].start as u32,
                back_edge: cfg.blocks[l.back_edge.0].terminator() as u32,
            });
        }
        Ok(Self::from_cfg(&cfg, instrs))
    }

    /// Analyzes a program, never panicking.
    ///
    /// Programs that violate the structural assumptions degrade instead of
    /// silently mis-sizing the active context: non-contiguous loop bodies
    /// are handled *exactly* via the CFG's natural-loop bodies, and
    /// irreducible or malformed programs fall back to treating every
    /// referenced register as active (`active_context_size` =
    /// `all_used.len()`, a safe over-approximation).
    pub fn analyze(program: &Program) -> RegisterUsage {
        match Self::try_analyze(program) {
            Ok(u) => u,
            Err(AnalysisError::NonContiguousLoop { .. }) => {
                let instrs = program.instrs();
                let cfg = Cfg::build(instrs).expect("CFG built once already");
                Self::from_cfg(&cfg, instrs)
            }
            Err(AnalysisError::Irreducible) | Err(AnalysisError::Malformed(_)) => {
                let mut all_used = BTreeSet::new();
                for i in program.instrs() {
                    for r in i.regs().iter() {
                        all_used.insert(r);
                    }
                }
                RegisterUsage {
                    loops: Vec::new(),
                    all_used: all_used.clone(),
                    innermost: BTreeSet::new(),
                    outer_only: all_used,
                    max_depth: 0,
                }
            }
        }
    }

    /// Builds the summary from exact natural-loop bodies.
    fn from_cfg(cfg: &Cfg, instrs: &[Instr]) -> RegisterUsage {
        let loops: Vec<Loop> = cfg
            .loops
            .iter()
            .map(|l| Loop {
                head: cfg.blocks[l.head].start as u32,
                back_edge: cfg.blocks[l.back_edge.0].terminator() as u32,
                depth: l.depth,
            })
            .collect();
        let max_depth = loops.iter().map(|l| l.depth).max().unwrap_or(0);

        let mut innermost_pcs: BTreeSet<usize> = BTreeSet::new();
        for l in cfg.loops.iter().filter(|l| l.depth == max_depth) {
            innermost_pcs.extend(l.pcs(cfg));
        }

        let mut all_used = BTreeSet::new();
        let mut innermost = BTreeSet::new();
        for (pc, i) in instrs.iter().enumerate() {
            for r in i.regs().iter() {
                all_used.insert(r);
                if max_depth > 0 && innermost_pcs.contains(&pc) {
                    innermost.insert(r);
                }
            }
        }
        let outer_only = all_used.difference(&innermost).copied().collect();
        RegisterUsage {
            loops,
            all_used,
            innermost,
            outer_only,
            max_depth,
        }
    }

    /// Fraction of the 31-register architectural context referenced in the
    /// innermost loops — the quantity plotted in the paper's Figure 2.
    pub fn innermost_utilization(&self) -> f64 {
        self.innermost.len() as f64 / NUM_ALLOCATABLE as f64
    }

    /// Size of the *active context*: the per-thread register working set the
    /// ViReC RF is provisioned against (paper: "on the order of 5-10
    /// registers at 100% context").
    pub fn active_context_size(&self) -> usize {
        if self.max_depth == 0 {
            self.all_used.len()
        } else {
            self.innermost.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::program::Asm;
    use crate::reg::names::*;

    fn nested_prog() -> Program {
        // outer loop uses X10 (outer counter), inner uses X0..X2
        let mut a = Asm::new("nested");
        a.mov_imm(X10, 4);
        a.label("outer");
        a.mov_imm(X1, 8);
        a.label("inner");
        a.add(X0, X0, X1);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "inner");
        a.subi(X10, X10, 1);
        a.cbnz(X10, "outer");
        a.halt();
        a.assemble()
    }

    #[test]
    fn detects_nesting_depths() {
        let u = RegisterUsage::analyze(&nested_prog());
        assert_eq!(u.max_depth, 2);
        assert_eq!(u.loops.len(), 2);
        let inner = u.loops.iter().find(|l| l.depth == 2).unwrap();
        let outer = u.loops.iter().find(|l| l.depth == 1).unwrap();
        assert!(outer.head < inner.head);
        assert!(outer.back_edge > inner.back_edge);
    }

    #[test]
    fn innermost_register_set() {
        let u = RegisterUsage::analyze(&nested_prog());
        assert!(u.innermost.contains(&X0));
        assert!(u.innermost.contains(&X1));
        assert!(!u.innermost.contains(&X10), "outer counter is outer-only");
        assert!(u.outer_only.contains(&X10));
    }

    #[test]
    fn straight_line_program_has_no_loops() {
        let mut a = Asm::new("s");
        a.mov_imm(X0, 1);
        a.addi(X1, X0, 2);
        a.halt();
        let u = RegisterUsage::analyze(&a.assemble());
        assert_eq!(u.max_depth, 0);
        assert!(u.innermost.is_empty());
        assert_eq!(u.active_context_size(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let u = RegisterUsage::analyze(&nested_prog());
        // inner loop touches X0, X1 → 2/31
        assert!((u.innermost_utilization() - 2.0 / 31.0).abs() < 1e-12);
        assert_eq!(u.active_context_size(), 2);
    }

    #[test]
    fn single_loop_with_conditional_exit() {
        let mut a = Asm::new("c");
        a.mov_imm(X1, 3);
        a.label("top");
        a.subi(X1, X1, 1);
        a.cmpi(X1, 0);
        a.bcc(Cond::Gt, "top");
        a.halt();
        let u = RegisterUsage::analyze(&a.assemble());
        assert_eq!(u.max_depth, 1);
        assert_eq!(u.loops.len(), 1);
        assert!(u.innermost.contains(&X1));
    }

    #[test]
    fn try_analyze_accepts_structured_programs() {
        assert!(RegisterUsage::try_analyze(&nested_prog()).is_ok());
    }

    #[test]
    fn non_contiguous_loop_is_typed_error_but_analyzed_exactly() {
        // A loop whose body detours *past* the back edge:
        //   0: mov x1, #4
        //   1: top: sub x1, x1, 1     (head)
        //   2: b check                (jump forward over the back edge)
        //   3: exit: halt
        //   4: check: cbnz x1, top    (back edge, body = {1,2,4})
        //   after cbnz falls through to 5: b exit
        let mut a = Asm::new("nc");
        a.mov_imm(X1, 4);
        a.label("top");
        a.subi(X1, X1, 1);
        a.add(X0, X0, X1);
        a.b("check");
        a.label("exit");
        a.halt();
        a.label("check");
        a.cbnz(X1, "top");
        a.b("exit");
        let p = a.assemble();
        let err = RegisterUsage::try_analyze(&p).unwrap_err();
        assert!(matches!(err, AnalysisError::NonContiguousLoop { .. }));
        // analyze() still sizes the active context from the exact body:
        // x0 and x1 are in the loop, nothing else.
        let u = RegisterUsage::analyze(&p);
        assert_eq!(u.max_depth, 1);
        assert_eq!(u.active_context_size(), 2);
        assert!(u.innermost.contains(&X0) && u.innermost.contains(&X1));
    }
}
