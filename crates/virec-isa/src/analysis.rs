//! Static program analysis: loop nesting and register pressure.
//!
//! Used to reproduce the paper's Figure 2 (register utilization of
//! memory-intensive workloads) and to characterize the *active context* —
//! the registers accessed inside the innermost loops, which is what ViReC
//! sizes its physical register file against (§2, §4.2).

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::{Reg, NUM_ALLOCATABLE};
use std::collections::BTreeSet;

/// A natural loop identified from a back edge `source -> target` with
/// `target <= source`; its body is the contiguous range `target..=source`.
///
/// The assembler emits reducible, structurally nested loops, so the
/// contiguous-range approximation is exact for all workloads in this
/// repository (asserted by [`RegisterUsage::analyze`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loop {
    /// First instruction of the loop body.
    pub head: u32,
    /// The back-edge branch instruction (last instruction of the body).
    pub back_edge: u32,
    /// Nesting depth, 1 = outermost.
    pub depth: u32,
}

/// Register-usage summary of a program.
///
/// ```
/// use virec_isa::{Asm, analysis::RegisterUsage, reg::names::*};
/// let mut a = Asm::new("loop");
/// a.mov_imm(X1, 8);
/// a.label("top");
/// a.add(X0, X0, X1);
/// a.subi(X1, X1, 1);
/// a.cbnz(X1, "top");
/// a.halt();
/// let usage = RegisterUsage::analyze(&a.assemble());
/// assert_eq!(usage.max_depth, 1);
/// assert_eq!(usage.active_context_size(), 2); // x0 and x1
/// ```
#[derive(Clone, Debug)]
pub struct RegisterUsage {
    /// All loops, ordered by head.
    pub loops: Vec<Loop>,
    /// Registers referenced anywhere in the program.
    pub all_used: BTreeSet<Reg>,
    /// Registers referenced inside maximum-depth (innermost) loops.
    pub innermost: BTreeSet<Reg>,
    /// Registers referenced *only* outside the innermost loops — candidates
    /// for the compiler register reduction of §4.2.
    pub outer_only: BTreeSet<Reg>,
    /// Maximum loop nesting depth (0 when the program has no loops).
    pub max_depth: u32,
}

impl RegisterUsage {
    /// Analyzes a program.
    pub fn analyze(program: &Program) -> RegisterUsage {
        let instrs = program.instrs();
        let mut loops = find_loops(instrs);
        // Depth = number of enclosing loops (including itself).
        let spans: Vec<(u32, u32)> = loops.iter().map(|l| (l.head, l.back_edge)).collect();
        for l in &mut loops {
            l.depth = spans
                .iter()
                .filter(|&&(h, b)| h <= l.head && l.back_edge <= b)
                .count() as u32;
        }
        let max_depth = loops.iter().map(|l| l.depth).max().unwrap_or(0);

        let mut all_used = BTreeSet::new();
        let mut innermost = BTreeSet::new();
        for (pc, i) in instrs.iter().enumerate() {
            let pc = pc as u32;
            let in_innermost = loops
                .iter()
                .any(|l| l.depth == max_depth && l.head <= pc && pc <= l.back_edge);
            for r in i.regs().iter() {
                all_used.insert(r);
                if in_innermost && max_depth > 0 {
                    innermost.insert(r);
                }
            }
        }
        let outer_only = all_used.difference(&innermost).copied().collect();
        RegisterUsage {
            loops,
            all_used,
            innermost,
            outer_only,
            max_depth,
        }
    }

    /// Fraction of the 31-register architectural context referenced in the
    /// innermost loops — the quantity plotted in the paper's Figure 2.
    pub fn innermost_utilization(&self) -> f64 {
        self.innermost.len() as f64 / NUM_ALLOCATABLE as f64
    }

    /// Size of the *active context*: the per-thread register working set the
    /// ViReC RF is provisioned against (paper: "on the order of 5-10
    /// registers at 100% context").
    pub fn active_context_size(&self) -> usize {
        if self.max_depth == 0 {
            self.all_used.len()
        } else {
            self.innermost.len()
        }
    }
}

/// Finds all natural loops via back edges (branch to an earlier or equal PC).
fn find_loops(instrs: &[Instr]) -> Vec<Loop> {
    let mut loops = Vec::new();
    for (pc, i) in instrs.iter().enumerate() {
        if let Some(t) = i.branch_target() {
            if t as usize <= pc {
                loops.push(Loop {
                    head: t,
                    back_edge: pc as u32,
                    depth: 0,
                });
            }
        }
    }
    loops.sort_by_key(|l| (l.head, std::cmp::Reverse(l.back_edge)));
    loops.dedup_by_key(|l| (l.head, l.back_edge));
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::program::Asm;
    use crate::reg::names::*;

    fn nested_prog() -> Program {
        // outer loop uses X10 (outer counter), inner uses X0..X2
        let mut a = Asm::new("nested");
        a.mov_imm(X10, 4);
        a.label("outer");
        a.mov_imm(X1, 8);
        a.label("inner");
        a.add(X0, X0, X1);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "inner");
        a.subi(X10, X10, 1);
        a.cbnz(X10, "outer");
        a.halt();
        a.assemble()
    }

    #[test]
    fn detects_nesting_depths() {
        let u = RegisterUsage::analyze(&nested_prog());
        assert_eq!(u.max_depth, 2);
        assert_eq!(u.loops.len(), 2);
        let inner = u.loops.iter().find(|l| l.depth == 2).unwrap();
        let outer = u.loops.iter().find(|l| l.depth == 1).unwrap();
        assert!(outer.head < inner.head);
        assert!(outer.back_edge > inner.back_edge);
    }

    #[test]
    fn innermost_register_set() {
        let u = RegisterUsage::analyze(&nested_prog());
        assert!(u.innermost.contains(&X0));
        assert!(u.innermost.contains(&X1));
        assert!(!u.innermost.contains(&X10), "outer counter is outer-only");
        assert!(u.outer_only.contains(&X10));
    }

    #[test]
    fn straight_line_program_has_no_loops() {
        let mut a = Asm::new("s");
        a.mov_imm(X0, 1);
        a.addi(X1, X0, 2);
        a.halt();
        let u = RegisterUsage::analyze(&a.assemble());
        assert_eq!(u.max_depth, 0);
        assert!(u.innermost.is_empty());
        assert_eq!(u.active_context_size(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let u = RegisterUsage::analyze(&nested_prog());
        // inner loop touches X0, X1 → 2/31
        assert!((u.innermost_utilization() - 2.0 / 31.0).abs() < 1e-12);
        assert_eq!(u.active_context_size(), 2);
    }

    #[test]
    fn single_loop_with_conditional_exit() {
        let mut a = Asm::new("c");
        a.mov_imm(X1, 3);
        a.label("top");
        a.subi(X1, X1, 1);
        a.cmpi(X1, 0);
        a.bcc(Cond::Gt, "top");
        a.halt();
        let u = RegisterUsage::analyze(&a.assemble());
        assert_eq!(u.max_depth, 1);
        assert_eq!(u.loops.len(), 1);
        assert!(u.innermost.contains(&X1));
    }
}
