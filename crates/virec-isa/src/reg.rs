//! Architectural register names.
//!
//! The ISA exposes 32 integer registers following AArch64 conventions:
//! `x0..x30` are general purpose and `x31` is the zero register (`xzr`),
//! which reads as zero and discards writes. The zero register is never
//! tracked by the register-cache machinery (it has no state to cache).

use std::fmt;

/// Number of architectural integer registers (including `xzr`).
pub const NUM_REGS: usize = 32;

/// Number of *allocatable* registers, i.e. excluding `xzr`.
pub const NUM_ALLOCATABLE: usize = 31;

/// An architectural register identifier in `0..32`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The zero register: reads as 0, writes are discarded.
    pub const XZR: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `idx >= 32`.
    #[inline]
    pub const fn new(idx: u8) -> Reg {
        assert!(idx < NUM_REGS as u8, "register index out of range");
        Reg(idx)
    }

    /// The register's index in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// Iterator over all allocatable registers (`x0..=x30`).
    pub fn allocatable() -> impl Iterator<Item = Reg> {
        (0..NUM_ALLOCATABLE as u8).map(Reg)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "xzr")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr;)*) => {
        $(
            #[doc = concat!("Register x", stringify!($idx), ".")]
            pub const $name: Reg = Reg($idx);
        )*
    };
}

/// Convenience constants `X0..=X30` plus [`XZR`](Reg::XZR).
pub mod names {
    use super::Reg;
    named_regs! {
        X0 = 0; X1 = 1; X2 = 2; X3 = 3; X4 = 4; X5 = 5; X6 = 6; X7 = 7;
        X8 = 8; X9 = 9; X10 = 10; X11 = 11; X12 = 12; X13 = 13; X14 = 14;
        X15 = 15; X16 = 16; X17 = 17; X18 = 18; X19 = 19; X20 = 20; X21 = 21;
        X22 = 22; X23 = 23; X24 = 24; X25 = 25; X26 = 26; X27 = 27; X28 = 28;
        X29 = 29; X30 = 30;
    }
    /// The zero register.
    pub const XZR: Reg = Reg::XZR;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::XZR.is_zero());
        assert_eq!(Reg::XZR.index(), 31);
        assert!(!names::X0.is_zero());
    }

    #[test]
    fn allocatable_excludes_xzr() {
        let regs: Vec<Reg> = Reg::allocatable().collect();
        assert_eq!(regs.len(), NUM_ALLOCATABLE);
        assert!(!regs.contains(&Reg::XZR));
        assert_eq!(regs[0], names::X0);
        assert_eq!(regs[30], names::X30);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", names::X7), "x7");
        assert_eq!(format!("{}", Reg::XZR), "xzr");
    }
}
