//! Golden functional interpreter.
//!
//! The interpreter executes one thread's program against a [`DataMemory`]
//! with no timing model. It is the reference against which every timing
//! simulator in the workspace is differentially tested: the final register
//! values and memory image of a ViReC/banked/software-switched core run must
//! match the interpreter's bit-for-bit.

use crate::cond::Flags;
use crate::instr::{Instr, MemOffset, Operand2};
use crate::mem::DataMemory;
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};

/// Architectural state of a single hardware thread.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    /// General-purpose registers. `regs[31]` is the zero register and is
    /// kept at zero by the accessors.
    regs: [u64; NUM_REGS],
    /// Condition flags.
    pub flags: Flags,
    /// Program counter (instruction index).
    pub pc: u32,
    /// Whether the thread has executed `halt`.
    pub halted: bool,
    /// Bitmask of registers (bit 31 = flags) still holding uninitialized
    /// values; bits clear as they are written. Seeded via
    /// [`ThreadCtx::set`] for ABI/context registers.
    #[cfg(feature = "uninit-poison")]
    pub poison: u32,
    /// Every read of a poisoned register, as `(pc, mask of poisoned bits
    /// read)` in execution order.
    #[cfg(feature = "uninit-poison")]
    pub poison_reads: Vec<(u32, u32)>,
}

impl Default for ThreadCtx {
    fn default() -> Self {
        ThreadCtx::new()
    }
}

impl ThreadCtx {
    /// A fresh context: all registers zero, PC at 0.
    pub fn new() -> ThreadCtx {
        ThreadCtx {
            regs: [0; NUM_REGS],
            flags: Flags::default(),
            pc: 0,
            halted: false,
            #[cfg(feature = "uninit-poison")]
            poison: crate::dataflow::ALL_REGS | crate::dataflow::FLAGS_BIT,
            #[cfg(feature = "uninit-poison")]
            poison_reads: Vec::new(),
        }
    }

    /// Reads a register (`xzr` reads zero).
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `xzr` are discarded).
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
            #[cfg(feature = "uninit-poison")]
            {
                self.poison &= !(1u32 << r.index());
            }
        }
    }

    /// Snapshot of all 31 allocatable registers, for state comparison.
    pub fn reg_image(&self) -> [u64; 31] {
        let mut out = [0; 31];
        out.copy_from_slice(&self.regs[..31]);
        out
    }
}

/// Result of running the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The thread reached `halt` after executing this many instructions.
    Halted {
        /// Dynamic instruction count, including the final `halt`.
        instructions: u64,
    },
    /// The instruction budget ran out before `halt`.
    BudgetExhausted,
}

/// Functional interpreter over a program and a memory.
///
/// ```
/// use virec_isa::{Asm, FlatMem, Interpreter, ThreadCtx, reg::names::*};
/// let mut a = Asm::new("double");
/// a.add(X0, X1, X1);
/// a.halt();
/// let p = a.assemble();
/// let mut mem = FlatMem::new(0, 64);
/// let mut ctx = ThreadCtx::new();
/// ctx.set(X1, 21);
/// Interpreter::new(&p, &mut mem).run(&mut ctx, 100);
/// assert_eq!(ctx.get(X0), 42);
/// ```
pub struct Interpreter<'a, M: DataMemory> {
    program: &'a Program,
    mem: &'a mut M,
}

impl<'a, M: DataMemory> Interpreter<'a, M> {
    /// Creates an interpreter for `program` over `mem`.
    pub fn new(program: &'a Program, mem: &'a mut M) -> Self {
        Interpreter { program, mem }
    }

    /// Executes a single instruction, updating `ctx` (and memory).
    ///
    /// Does nothing if the thread has already halted.
    pub fn step(&mut self, ctx: &mut ThreadCtx) {
        if ctx.halted {
            return;
        }
        let i = self.program.fetch(ctx.pc);
        let mut next_pc = ctx.pc + 1;
        #[cfg(feature = "uninit-poison")]
        {
            let hit = crate::dataflow::use_mask(&i) & ctx.poison;
            if hit != 0 {
                ctx.poison_reads.push((ctx.pc, hit));
            }
        }
        match i {
            Instr::Alu { op, dst, src, rhs } => {
                let b = match rhs {
                    Operand2::Reg(r) => ctx.get(r),
                    Operand2::Imm(v) => v as u64,
                };
                let v = op.apply(ctx.get(src), b);
                ctx.set(dst, v);
            }
            Instr::Madd { dst, a, b, acc } => {
                let v = ctx
                    .get(a)
                    .wrapping_mul(ctx.get(b))
                    .wrapping_add(ctx.get(acc));
                ctx.set(dst, v);
            }
            Instr::MovImm { dst, imm } => ctx.set(dst, imm as u64),
            Instr::Cmp { src, rhs } => {
                let b = match rhs {
                    Operand2::Reg(r) => ctx.get(r),
                    Operand2::Imm(v) => v as u64,
                };
                ctx.flags = Flags::from_cmp(ctx.get(src), b);
            }
            Instr::Csel { dst, a, b, cond } => {
                let v = if cond.eval(ctx.flags) {
                    ctx.get(a)
                } else {
                    ctx.get(b)
                };
                ctx.set(dst, v);
            }
            Instr::Ldr {
                dst,
                base,
                offset,
                size,
            } => {
                let addr = effective_address(ctx, base, offset);
                let v = self.mem.read(addr, size);
                ctx.set(dst, v);
            }
            Instr::Str {
                src,
                base,
                offset,
                size,
            } => {
                let addr = effective_address(ctx, base, offset);
                self.mem.write(addr, size, ctx.get(src));
            }
            Instr::B { target } => next_pc = target,
            Instr::Bcc { cond, target } => {
                if cond.eval(ctx.flags) {
                    next_pc = target;
                }
            }
            Instr::Cbz { src, target } => {
                if ctx.get(src) == 0 {
                    next_pc = target;
                }
            }
            Instr::Cbnz { src, target } => {
                if ctx.get(src) != 0 {
                    next_pc = target;
                }
            }
            Instr::Nop => {}
            Instr::Halt => {
                ctx.halted = true;
            }
        }
        #[cfg(feature = "uninit-poison")]
        {
            ctx.poison &= !crate::dataflow::def_mask(&i);
        }
        ctx.pc = next_pc;
    }

    /// Runs until `halt` or until `max_instrs` instructions have executed.
    pub fn run(&mut self, ctx: &mut ThreadCtx, max_instrs: u64) -> ExecOutcome {
        let mut n = 0;
        while n < max_instrs {
            if ctx.halted {
                return ExecOutcome::Halted { instructions: n };
            }
            self.step(ctx);
            n += 1;
            if ctx.halted {
                return ExecOutcome::Halted { instructions: n };
            }
        }
        if ctx.halted {
            ExecOutcome::Halted { instructions: n }
        } else {
            ExecOutcome::BudgetExhausted
        }
    }
}

/// Computes the effective address of a memory access.
pub fn effective_address(ctx: &ThreadCtx, base: Reg, offset: MemOffset) -> u64 {
    let b = ctx.get(base);
    match offset {
        MemOffset::Imm(i) => b.wrapping_add(i as u64),
        MemOffset::RegShifted { index, shift } => {
            b.wrapping_add(ctx.get(index).wrapping_shl(shift as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::mem::FlatMem;
    use crate::program::Asm;
    use crate::reg::names::*;

    fn run_prog(a: Asm, mem: &mut FlatMem) -> ThreadCtx {
        let p = a.assemble();
        let mut ctx = ThreadCtx::new();
        let out = Interpreter::new(&p, mem).run(&mut ctx, 1_000_000);
        assert!(matches!(out, ExecOutcome::Halted { .. }), "{out:?}");
        ctx
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let mut a = Asm::new("sum");
        a.mov_imm(X0, 0); // sum
        a.mov_imm(X1, 10); // i
        a.label("loop");
        a.add(X0, X0, X1);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "loop");
        a.halt();
        let mut m = FlatMem::new(0, 8);
        let ctx = run_prog(a, &mut m);
        assert_eq!(ctx.get(X0), 55);
    }

    #[test]
    fn gather_kernel_functional() {
        // x2 = data base, x3 = idx base, x4 = n, x0 = sum
        // for i in 0..n { x5 = idx[i]; x6 = data[x5]; sum += x6 }
        let data_base = 0x1000u64;
        let idx_base = 0x2000u64;
        let n = 16u64;
        let mut m = FlatMem::new(0x1000, 0x2000);
        for i in 0..n {
            m.write_u64(data_base + i * 8, i * 100);
        }
        // reversed indices
        for i in 0..n {
            m.write_u64(idx_base + i * 8, n - 1 - i);
        }
        let mut a = Asm::new("gather");
        a.mov_imm(X0, 0);
        a.mov_imm(X1, 0); // i
        a.mov_imm(X2, data_base as i64);
        a.mov_imm(X3, idx_base as i64);
        a.mov_imm(X4, n as i64);
        a.label("loop");
        a.ldr_idx(X5, X3, X1, 3);
        a.ldr_idx(X6, X2, X5, 3);
        a.add(X0, X0, X6);
        a.addi(X1, X1, 1);
        a.cmp(X1, X4);
        a.bcc(Cond::Lt, "loop");
        a.halt();
        let ctx = run_prog(a, &mut m);
        let expect: u64 = (0..n).map(|i| i * 100).sum();
        assert_eq!(ctx.get(X0), expect);
    }

    #[test]
    fn store_visible_in_memory() {
        let mut a = Asm::new("st");
        a.mov_imm(X1, 0x40);
        a.mov_imm(X2, 0xDEAD);
        a.str(X2, X1, 8);
        a.halt();
        let mut m = FlatMem::new(0, 0x100);
        run_prog(a, &mut m);
        assert_eq!(m.read_u64(0x48), 0xDEAD);
    }

    #[test]
    fn csel_picks_by_flags() {
        let mut a = Asm::new("csel");
        a.mov_imm(X1, 3);
        a.mov_imm(X2, 7);
        a.cmpi(X1, 5);
        a.csel(X0, X1, X2, Cond::Lt); // 3 < 5 → X0 = 3
        a.cmpi(X2, 5);
        a.csel(X3, X1, X2, Cond::Lt); // 7 < 5 false → X3 = 7
        a.halt();
        let mut m = FlatMem::new(0, 8);
        let ctx = run_prog(a, &mut m);
        assert_eq!(ctx.get(X0), 3);
        assert_eq!(ctx.get(X3), 7);
    }

    #[test]
    fn xzr_reads_zero_discards_writes() {
        let mut a = Asm::new("z");
        a.mov_imm(XZR, 42);
        a.add(X0, XZR, XZR);
        a.halt();
        let mut m = FlatMem::new(0, 8);
        let ctx = run_prog(a, &mut m);
        assert_eq!(ctx.get(X0), 0);
        assert_eq!(ctx.get(XZR), 0);
    }

    #[test]
    fn budget_exhaustion_detected() {
        let mut a = Asm::new("inf");
        a.label("top");
        a.b("top");
        let p = a.assemble();
        let mut m = FlatMem::new(0, 8);
        let mut ctx = ThreadCtx::new();
        let out = Interpreter::new(&p, &mut m).run(&mut ctx, 100);
        assert_eq!(out, ExecOutcome::BudgetExhausted);
    }

    #[test]
    fn halted_thread_stays_halted() {
        let mut a = Asm::new("h");
        a.halt();
        let p = a.assemble();
        let mut m = FlatMem::new(0, 8);
        let mut ctx = ThreadCtx::new();
        let mut interp = Interpreter::new(&p, &mut m);
        interp.step(&mut ctx);
        assert!(ctx.halted);
        let pc = ctx.pc;
        interp.step(&mut ctx); // no-op
        assert_eq!(ctx.pc, pc);
    }

    #[cfg(feature = "uninit-poison")]
    #[test]
    fn poison_reads_recorded_and_cleared_by_writes() {
        use crate::dataflow::FLAGS_BIT;
        let mut a = Asm::new("p");
        a.add(X0, X2, X3); // 0: x2/x3 never written → poisoned read
        a.mov_imm(X2, 1); // 1: clears x2's poison
        a.add(X4, X2, XZR); // 2: clean read
        a.cmpi(X4, 0); // 3: defines flags
        a.csel(X5, X4, X0, Cond::Eq); // 4: clean flags read
        a.halt();
        let p = a.assemble();
        let mut m = FlatMem::new(0, 8);
        let mut ctx = ThreadCtx::new();
        Interpreter::new(&p, &mut m).run(&mut ctx, 100);
        assert_eq!(ctx.poison_reads, vec![(0, (1 << 2) | (1 << 3))]);
        assert_eq!(ctx.poison & ((1 << 2) | (1 << 4) | FLAGS_BIT), 0);
    }

    #[cfg(feature = "uninit-poison")]
    #[test]
    fn initial_context_registers_are_not_poisoned() {
        let mut a = Asm::new("p2");
        a.add(X0, X1, XZR);
        a.halt();
        let p = a.assemble();
        let mut m = FlatMem::new(0, 8);
        let mut ctx = ThreadCtx::new();
        ctx.set(X1, 7); // ABI-style initialization clears the poison bit
        Interpreter::new(&p, &mut m).run(&mut ctx, 100);
        assert!(ctx.poison_reads.is_empty());
    }

    #[test]
    fn instruction_count_includes_halt() {
        let mut a = Asm::new("c");
        a.nop();
        a.nop();
        a.halt();
        let p = a.assemble();
        let mut m = FlatMem::new(0, 8);
        let mut ctx = ThreadCtx::new();
        let out = Interpreter::new(&p, &mut m).run(&mut ctx, 100);
        assert_eq!(out, ExecOutcome::Halted { instructions: 3 });
    }
}
