//! Basic-block control-flow graph over assembled instruction sequences.
//!
//! The CFG is the substrate for the exact dataflow analyses in
//! [`crate::dataflow`] and for the lint pass in `virec-verify`: leaders are
//! split at branch targets and after every branch/halt, blocks are linked by
//! successor/predecessor edges, and the reachable subgraph gets reverse
//! postorder, iterative dominators, back edges, and natural loops with
//! nesting depths, a reducibility verdict, and per-loop contiguity (the
//! assumption [`crate::analysis::RegisterUsage`] historically relied on
//! without checking).
//!
//! Construction is fallible on purpose: [`crate::program::Program::new`]
//! panics on out-of-bounds branch targets, so [`Cfg::build`] takes a raw
//! `&[Instr]` and reports malformed control flow as a typed [`CfgError`],
//! which the linter surfaces as a diagnostic instead of a crash.

use crate::instr::Instr;
use std::collections::BTreeSet;

/// Structural errors that prevent CFG construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// The program has no instructions.
    Empty,
    /// A branch at `pc` targets an instruction index past the end.
    OutOfBoundsTarget {
        /// PC of the offending branch.
        pc: usize,
        /// The (invalid) target index.
        target: usize,
    },
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CfgError::Empty => write!(f, "program has no instructions"),
            CfgError::OutOfBoundsTarget { pc, target } => {
                write!(f, "branch at pc {pc} targets {target}, past the end")
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// A maximal straight-line run of instructions `start..end` (end exclusive).
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start: usize,
    /// One past the PC of the last instruction.
    pub end: usize,
    /// Successor block indices (0, 1, or 2 entries).
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// PC of the block terminator (its last instruction).
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// A natural loop formed by one back edge.
///
/// Unlike [`crate::analysis::Loop`], the body is the *exact* set of blocks
/// that can reach the back edge without passing through the header — not a
/// contiguous PC range. [`NaturalLoop::contiguous`] records whether the two
/// coincide.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Header block index (the back edge's target).
    pub head: usize,
    /// The back edge as `(tail block, header block)`.
    pub back_edge: (usize, usize),
    /// Sorted indices of every block in the loop body (header included).
    pub blocks: Vec<usize>,
    /// Nesting depth, 1 = outermost.
    pub depth: u32,
    /// Whether the body PCs form exactly the contiguous range
    /// `header.start ..= tail.end - 1` — the approximation
    /// [`crate::analysis`] uses.
    pub contiguous: bool,
}

impl NaturalLoop {
    /// Sorted PCs of every instruction in the loop body.
    pub fn pcs(&self, cfg: &Cfg) -> Vec<usize> {
        let mut pcs: Vec<usize> = self
            .blocks
            .iter()
            .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
            .collect();
        pcs.sort_unstable();
        pcs
    }
}

/// The control-flow graph of a program, with dominator and loop structure
/// computed over the subgraph reachable from PC 0 (where every thread
/// starts).
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks ordered by start PC.
    pub blocks: Vec<BasicBlock>,
    /// Block index containing each PC.
    pub block_of: Vec<usize>,
    /// Per-block reachability from block 0.
    pub reachable: Vec<bool>,
    /// Reachable block indices in reverse postorder (entry first).
    pub rpo: Vec<usize>,
    /// Position of each block in [`Cfg::rpo`] (`usize::MAX` if unreachable).
    pub rpo_index: Vec<usize>,
    /// Immediate dominator of each reachable block (the entry dominates
    /// itself; `usize::MAX` for unreachable blocks).
    pub idom: Vec<usize>,
    /// Back edges `(tail, header)`: edges whose target dominates the source.
    pub back_edges: Vec<(usize, usize)>,
    /// Natural loops, one per back edge, ordered by header start PC.
    pub loops: Vec<NaturalLoop>,
    /// Whether every retreating edge is a back edge (no irreducible loops).
    pub reducible: bool,
    /// PCs whose fall-through leaves the program (missing-halt candidates).
    pub falls_off_end: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG, failing on empty programs and out-of-bounds branch
    /// targets. Mid-instruction targets cannot exist in this ISA — programs
    /// are indexed at instruction granularity, so every in-range index *is*
    /// an instruction boundary; the out-of-bounds check covers the rest.
    pub fn build(instrs: &[Instr]) -> Result<Cfg, CfgError> {
        if instrs.is_empty() {
            return Err(CfgError::Empty);
        }
        let len = instrs.len();
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.branch_target() {
                if t as usize >= len {
                    return Err(CfgError::OutOfBoundsTarget {
                        pc,
                        target: t as usize,
                    });
                }
            }
        }

        // Leaders: entry, branch targets, and the instruction after every
        // control-flow terminator.
        let mut leaders = BTreeSet::new();
        leaders.insert(0usize);
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.branch_target() {
                leaders.insert(t as usize);
                leaders.insert(pc + 1);
            } else if matches!(i, Instr::Halt) {
                leaders.insert(pc + 1);
            }
        }
        leaders.remove(&len);
        let starts: Vec<usize> = leaders.into_iter().collect();

        let mut blocks: Vec<BasicBlock> = starts
            .iter()
            .enumerate()
            .map(|(b, &s)| BasicBlock {
                start: s,
                end: starts.get(b + 1).copied().unwrap_or(len),
                succs: Vec::new(),
                preds: Vec::new(),
            })
            .collect();
        let mut block_of = vec![0usize; len];
        for (b, blk) in blocks.iter().enumerate() {
            block_of[blk.start..blk.end].fill(b);
        }

        let mut falls_off_end = Vec::new();
        let nblocks = blocks.len();
        for blk in blocks.iter_mut() {
            let term_pc = blk.end - 1;
            let term = &instrs[term_pc];
            let mut succs = Vec::new();
            let mut fallthrough = |succs: &mut Vec<usize>| {
                if term_pc + 1 < len {
                    succs.push(block_of[term_pc + 1]);
                } else {
                    falls_off_end.push(term_pc);
                }
            };
            match term {
                Instr::Halt => {}
                Instr::B { target } => succs.push(block_of[*target as usize]),
                _ => {
                    fallthrough(&mut succs);
                    if let Some(t) = term.branch_target() {
                        let tb = block_of[t as usize];
                        if !succs.contains(&tb) {
                            succs.push(tb);
                        }
                    }
                }
            }
            blk.succs = succs;
        }
        for b in 0..nblocks {
            for s in blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }

        // Reachability + postorder from the entry (iterative DFS).
        let mut reachable = vec![false; nblocks];
        let mut postorder = Vec::with_capacity(nblocks);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        reachable[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < blocks[b].succs.len() {
                let s = blocks[b].succs[*next];
                *next += 1;
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
        let mut rpo_index = vec![usize::MAX; nblocks];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }

        // Iterative dominators (Cooper–Harvey–Kennedy) over the reachable
        // subgraph in reverse postorder.
        let mut idom = vec![usize::MAX; nblocks];
        idom[0] = 0;
        let intersect = |idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a];
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &blocks[b].preds {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_index, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        let dominates = |idom: &[usize], a: usize, mut b: usize| {
            if idom[b] == usize::MAX {
                return false;
            }
            loop {
                if b == a {
                    return true;
                }
                if b == 0 {
                    return false;
                }
                b = idom[b];
            }
        };

        // Back edges and reducibility: a retreating edge (target not later in
        // RPO) that is *not* a back edge witnesses an irreducible region.
        let mut back_edges = Vec::new();
        let mut reducible = true;
        for &u in &rpo {
            for &v in &blocks[u].succs {
                if rpo_index[v] == usize::MAX || rpo_index[v] > rpo_index[u] {
                    continue;
                }
                if dominates(&idom, v, u) {
                    back_edges.push((u, v));
                } else {
                    reducible = false;
                }
            }
        }

        // Natural loops: one per back edge, body grown backwards from the
        // tail until the header (which dominates everything inside).
        let mut loops = Vec::new();
        for &(tail, head) in &back_edges {
            let mut body = BTreeSet::new();
            body.insert(head);
            let mut work = vec![tail];
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    work.extend(blocks[b].preds.iter().copied());
                }
            }
            let lo = body.iter().map(|&b| blocks[b].start).min().unwrap();
            let hi = body.iter().map(|&b| blocks[b].end).max().unwrap();
            let npcs: usize = body.iter().map(|&b| blocks[b].end - blocks[b].start).sum();
            let contiguous = lo == blocks[head].start && hi == blocks[tail].end && npcs == hi - lo;
            loops.push(NaturalLoop {
                head,
                back_edge: (tail, head),
                blocks: body.into_iter().collect(),
                depth: 0,
                contiguous,
            });
        }
        // Depth = number of loops whose body contains this loop's body
        // (including itself); matches the span-counting convention of
        // `crate::analysis` on structured code.
        let bodies: Vec<BTreeSet<usize>> = loops
            .iter()
            .map(|l| l.blocks.iter().copied().collect())
            .collect();
        for (i, l) in loops.iter_mut().enumerate() {
            l.depth = bodies
                .iter()
                .filter(|other| bodies[i].is_subset(other))
                .count() as u32;
        }
        loops.sort_by_key(|l| {
            (
                blocks[l.head].start,
                std::cmp::Reverse(blocks[l.back_edge.0].end),
            )
        });

        Ok(Cfg {
            blocks,
            block_of,
            reachable,
            rpo,
            rpo_index,
            idom,
            back_edges,
            loops,
            reducible,
            falls_off_end,
        })
    }

    /// Whether block `a` dominates block `b` (both must be reachable).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[b] == usize::MAX {
            return false;
        }
        let mut b = b;
        loop {
            if b == a {
                return true;
            }
            if b == 0 {
                return false;
            }
            b = self.idom[b];
        }
    }

    /// PCs of instructions in unreachable blocks, sorted.
    pub fn unreachable_pcs(&self) -> Vec<usize> {
        let mut pcs = Vec::new();
        for (b, blk) in self.blocks.iter().enumerate() {
            if !self.reachable[b] {
                pcs.extend(blk.start..blk.end);
            }
        }
        pcs
    }

    /// Whether every loop body is a contiguous PC range — the precondition
    /// for the span-based approximation in [`crate::analysis`].
    pub fn all_loops_contiguous(&self) -> bool {
        self.loops.iter().all(|l| l.contiguous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::program::Asm;
    use crate::reg::names::*;

    fn build(a: Asm) -> Cfg {
        let p = a.assemble();
        Cfg::build(p.instrs()).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new("s");
        a.mov_imm(X0, 1);
        a.addi(X1, X0, 2);
        a.halt();
        let cfg = build(a);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(cfg.reducible);
        assert!(cfg.loops.is_empty());
        assert!(cfg.falls_off_end.is_empty());
    }

    #[test]
    fn single_loop_shape() {
        let mut a = Asm::new("l");
        a.mov_imm(X1, 8);
        a.label("top");
        a.subi(X1, X1, 1);
        a.cbnz(X1, "top");
        a.halt();
        let cfg = build(a);
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.depth, 1);
        assert!(l.contiguous);
        assert_eq!(cfg.blocks[l.head].start, 1);
        assert!(cfg.reducible);
    }

    #[test]
    fn nested_loops_have_depths() {
        let mut a = Asm::new("n");
        a.mov_imm(X10, 4);
        a.label("outer");
        a.mov_imm(X1, 8);
        a.label("inner");
        a.subi(X1, X1, 1);
        a.cbnz(X1, "inner");
        a.subi(X10, X10, 1);
        a.cbnz(X10, "outer");
        a.halt();
        let cfg = build(a);
        assert_eq!(cfg.loops.len(), 2);
        let depths: Vec<u32> = cfg.loops.iter().map(|l| l.depth).collect();
        assert_eq!(depths, vec![1, 2], "outer first (sorted by head pc)");
        assert!(cfg.all_loops_contiguous());
    }

    #[test]
    fn unreachable_code_detected() {
        let mut a = Asm::new("u");
        a.b("end");
        a.mov_imm(X0, 1); // dead
        a.label("end");
        a.halt();
        let cfg = build(a);
        assert_eq!(cfg.unreachable_pcs(), vec![1]);
    }

    #[test]
    fn fallthrough_off_end_recorded() {
        let mut a = Asm::new("f");
        a.mov_imm(X0, 1);
        a.cbnz(X0, "skip");
        a.label("skip");
        a.mov_imm(X1, 2); // no halt after
        let cfg = build(a);
        assert_eq!(cfg.falls_off_end, vec![2]);
    }

    #[test]
    fn oob_target_is_typed_error() {
        use crate::instr::Instr;
        let instrs = vec![Instr::B { target: 9 }, Instr::Halt];
        assert_eq!(
            Cfg::build(&instrs).unwrap_err(),
            CfgError::OutOfBoundsTarget { pc: 0, target: 9 }
        );
        assert_eq!(Cfg::build(&[]).unwrap_err(), CfgError::Empty);
    }

    #[test]
    fn irreducible_region_flagged() {
        use crate::instr::{AluOp, Instr, Operand2};
        // Two mutually-jumping blocks entered from two different points:
        //   0: cbnz x0 -> 3
        //   1: nop           (A)
        //   2: b 4
        //   3: nop           (B head entered from outside)
        //   4: cbnz x1 -> 1  (B -> A: retreating but 1 doesn't dominate)
        //   5: halt
        let instrs = vec![
            Instr::Cbnz { src: X0, target: 3 },
            Instr::Nop,
            Instr::B { target: 4 },
            Instr::Nop,
            Instr::Cbnz { src: X1, target: 1 },
            Instr::Alu {
                op: AluOp::Add,
                dst: X2,
                src: X2,
                rhs: Operand2::Imm(0),
            },
            Instr::Halt,
        ];
        let cfg = Cfg::build(&instrs).unwrap();
        assert!(!cfg.reducible);
    }

    #[test]
    fn conditional_exit_loop() {
        let mut a = Asm::new("c");
        a.mov_imm(X1, 3);
        a.label("top");
        a.subi(X1, X1, 1);
        a.cmpi(X1, 0);
        a.bcc(Cond::Gt, "top");
        a.halt();
        let cfg = build(a);
        assert_eq!(cfg.loops.len(), 1);
        assert!(cfg.loops[0].contiguous);
    }
}
