//! Functional memory.
//!
//! Both the golden interpreter and the timing simulators operate on a single
//! flat byte store. The timing layers (`virec-mem`) model *when* an access
//! completes; this module models *what* it returns. Keeping the functional
//! state in one place lets the differential tests compare final memory
//! images byte-for-byte.

use crate::instr::AccessSize;

/// Byte-addressable functional memory.
pub trait DataMemory {
    /// Reads `size` bytes at `addr`, zero-extended to 64 bits.
    fn read(&self, addr: u64, size: AccessSize) -> u64;
    /// Writes the low `size` bytes of `value` at `addr`.
    fn write(&mut self, addr: u64, size: AccessSize, value: u64);
}

/// A flat, contiguous memory starting at a base address.
///
/// Accesses outside the mapped range panic — out-of-range addresses in the
/// simulator indicate a kernel or machinery bug and must not be silently
/// absorbed.
#[derive(Clone)]
pub struct FlatMem {
    base: u64,
    bytes: Vec<u8>,
}

impl FlatMem {
    /// Creates a zero-filled memory of `size` bytes mapped at `base`.
    pub fn new(base: u64, size: usize) -> FlatMem {
        FlatMem {
            base,
            bytes: vec![0; size],
        }
    }

    /// Base address of the mapping.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the mapping in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// One-past-the-end address of the mapping.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Whether `addr..addr+len` lies within the mapping.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr + len <= self.end()
    }

    #[inline]
    fn offset(&self, addr: u64, len: u64) -> usize {
        assert!(
            self.contains(addr, len),
            "memory access out of range: addr={addr:#x} len={len} (mapped {:#x}..{:#x})",
            self.base,
            self.end()
        );
        (addr - self.base) as usize
    }

    /// Reads a `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, AccessSize::B8)
    }

    /// Writes a `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, AccessSize::B8, value);
    }

    /// Borrow of the raw backing bytes (for image comparison in tests).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Copies a slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let off = self.offset(addr, data.len() as u64);
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }
}

impl DataMemory for FlatMem {
    fn read(&self, addr: u64, size: AccessSize) -> u64 {
        let n = size.bytes();
        let off = self.offset(addr, n);
        let mut buf = [0u8; 8];
        buf[..n as usize].copy_from_slice(&self.bytes[off..off + n as usize]);
        u64::from_le_bytes(buf)
    }

    fn write(&mut self, addr: u64, size: AccessSize, value: u64) {
        let n = size.bytes();
        let off = self.offset(addr, n);
        self.bytes[off..off + n as usize].copy_from_slice(&value.to_le_bytes()[..n as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = FlatMem::new(0x1000, 64);
        m.write(0x1000, AccessSize::B8, 0x1122334455667788);
        assert_eq!(m.read(0x1000, AccessSize::B8), 0x1122334455667788);
        assert_eq!(m.read(0x1000, AccessSize::B4), 0x55667788);
        assert_eq!(m.read(0x1000, AccessSize::B1), 0x88);
        m.write(0x1004, AccessSize::B1, 0xFF);
        assert_eq!(m.read(0x1000, AccessSize::B8), 0x112233FF55667788);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = FlatMem::new(0, 8);
        m.write(0, AccessSize::B4, 0xAABBCCDD);
        assert_eq!(m.bytes()[0], 0xDD);
        assert_eq!(m.bytes()[3], 0xAA);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let m = FlatMem::new(0x1000, 8);
        let _ = m.read(0x0FFF, AccessSize::B1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn straddling_end_panics() {
        let m = FlatMem::new(0x1000, 8);
        let _ = m.read(0x1004, AccessSize::B8);
    }

    #[test]
    fn contains_checks_bounds() {
        let m = FlatMem::new(0x100, 16);
        assert!(m.contains(0x100, 16));
        assert!(!m.contains(0x100, 17));
        assert!(!m.contains(0xFF, 1));
        assert!(m.contains(0x10F, 1));
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = FlatMem::new(0, 16);
        m.write_bytes(4, &[1, 2, 3, 4]);
        assert_eq!(m.read(4, AccessSize::B4), 0x04030201);
    }
}
