//! Condition codes and the NZCV flag register.

/// The NZCV condition flags produced by compare instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// Negative: result was negative (two's complement).
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Carry: unsigned overflow / no-borrow for subtraction.
    pub c: bool,
    /// Overflow: signed overflow.
    pub v: bool,
}

impl Flags {
    /// Computes the flags for `a - b`, AArch64 `cmp` semantics.
    pub fn from_cmp(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = a as i64;
        let sb = b as i64;
        let (sres, sover) = sa.overflowing_sub(sb);
        debug_assert_eq!(sres as u64, res);
        Flags {
            n: (res as i64) < 0,
            z: res == 0,
            // AArch64 carry for subtraction is "no borrow".
            c: !borrow,
            v: sover,
        }
    }

    /// Packs the flags into a 4-bit NZCV value (N is bit 3).
    pub fn to_nzcv(self) -> u8 {
        (self.n as u8) << 3 | (self.z as u8) << 2 | (self.c as u8) << 1 | self.v as u8
    }

    /// Unpacks a 4-bit NZCV value.
    pub fn from_nzcv(bits: u8) -> Flags {
        Flags {
            n: bits & 0b1000 != 0,
            z: bits & 0b0100 != 0,
            c: bits & 0b0010 != 0,
            v: bits & 0b0001 != 0,
        }
    }
}

/// AArch64 condition codes usable with `b.<cond>` and `csel`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`Z`).
    Eq,
    /// Not equal (`!Z`).
    Ne,
    /// Signed less than (`N != V`).
    Lt,
    /// Signed less than or equal (`Z || N != V`).
    Le,
    /// Signed greater than (`!Z && N == V`).
    Gt,
    /// Signed greater than or equal (`N == V`).
    Ge,
    /// Unsigned lower (`!C`).
    Lo,
    /// Unsigned higher or same (`C`).
    Hs,
}

impl Cond {
    /// Evaluates the condition against a set of flags.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => f.n != f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Ge => f.n == f.v,
            Cond::Lo => !f.c,
            Cond::Hs => f.c,
        }
    }

    /// The logically inverted condition.
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Lo => Cond::Hs,
            Cond::Hs => Cond::Lo,
        }
    }

    /// All condition codes, for exhaustive testing.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Lo,
        Cond::Hs,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(a: i64, b: i64) -> Flags {
        Flags::from_cmp(a as u64, b as u64)
    }

    #[test]
    fn signed_comparisons() {
        assert!(Cond::Lt.eval(cmp(-5, 3)));
        assert!(!Cond::Lt.eval(cmp(3, -5)));
        assert!(Cond::Ge.eval(cmp(3, 3)));
        assert!(Cond::Gt.eval(cmp(4, 3)));
        assert!(!Cond::Gt.eval(cmp(3, 3)));
        assert!(Cond::Le.eval(cmp(3, 3)));
        assert!(Cond::Le.eval(cmp(i64::MIN, i64::MAX)));
    }

    #[test]
    fn unsigned_comparisons() {
        assert!(Cond::Lo.eval(Flags::from_cmp(1, 2)));
        assert!(Cond::Hs.eval(Flags::from_cmp(2, 2)));
        // -1 as unsigned is huge.
        assert!(Cond::Hs.eval(Flags::from_cmp(u64::MAX, 2)));
    }

    #[test]
    fn equality() {
        assert!(Cond::Eq.eval(cmp(7, 7)));
        assert!(Cond::Ne.eval(cmp(7, 8)));
    }

    #[test]
    fn inversion_is_complement() {
        for a in [-3i64, 0, 1, 5, i64::MIN, i64::MAX] {
            for b in [-3i64, 0, 1, 5, i64::MIN, i64::MAX] {
                let f = cmp(a, b);
                for c in Cond::ALL {
                    assert_ne!(c.eval(f), c.invert().eval(f), "{c:?} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn nzcv_roundtrip() {
        for bits in 0..16u8 {
            assert_eq!(Flags::from_nzcv(bits).to_nzcv(), bits);
        }
    }

    #[test]
    fn signed_overflow_sets_v() {
        let f = cmp(i64::MIN, 1);
        assert!(f.v);
        // MIN - 1 overflows: signed comparison must still say MIN < 1.
        assert!(Cond::Lt.eval(f));
    }
}
