//! Property tests for the ISA layer: ALU semantics against wide-integer
//! models, flag/condition consistency, assembler structural guarantees,
//! and interpreter determinism.

use proptest::prelude::*;
use virec_isa::instr::{AluOp, Operand2};
use virec_isa::reg::names::*;
use virec_isa::{
    AccessSize, Asm, Cond, DataMemory, Flags, FlatMem, Instr, Interpreter, Reg, ThreadCtx,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// ALU ops agree with i128-widened reference semantics.
    #[test]
    fn alu_matches_wide_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), ((a as u128 + b as u128) & u64::MAX as u128) as u64);
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), ((a as u128 * b as u128) & u64::MAX as u128) as u64);
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Orr.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Eor.apply(a, b), a ^ b);
        if b != 0 {
            prop_assert_eq!(AluOp::Udiv.apply(a, b), a / b);
        }
    }

    /// Condition codes evaluate exactly like native comparisons.
    #[test]
    fn conditions_match_native_comparisons(a in any::<u64>(), b in any::<u64>()) {
        let f = Flags::from_cmp(a, b);
        let (sa, sb) = (a as i64, b as i64);
        prop_assert_eq!(Cond::Eq.eval(f), a == b);
        prop_assert_eq!(Cond::Ne.eval(f), a != b);
        prop_assert_eq!(Cond::Lt.eval(f), sa < sb);
        prop_assert_eq!(Cond::Le.eval(f), sa <= sb);
        prop_assert_eq!(Cond::Gt.eval(f), sa > sb);
        prop_assert_eq!(Cond::Ge.eval(f), sa >= sb);
        prop_assert_eq!(Cond::Lo.eval(f), a < b);
        prop_assert_eq!(Cond::Hs.eval(f), a >= b);
    }

    /// Every condition is the complement of its inversion on all flags.
    #[test]
    fn inversion_complements(a in any::<u64>(), b in any::<u64>()) {
        let f = Flags::from_cmp(a, b);
        for c in Cond::ALL {
            prop_assert_ne!(c.eval(f), c.invert().eval(f));
        }
    }

    /// Memory round-trips for any size/alignment inside the mapping.
    #[test]
    fn flatmem_roundtrip(off in 0u64..1000, v in any::<u64>(), size_sel in 0u8..3) {
        let size = [AccessSize::B1, AccessSize::B4, AccessSize::B8][size_sel as usize];
        let mut m = FlatMem::new(0x1000, 2048);
        let addr = 0x1000 + off;
        m.write(addr, size, v);
        let mask = match size {
            AccessSize::B1 => 0xFF,
            AccessSize::B4 => 0xFFFF_FFFF,
            AccessSize::B8 => u64::MAX,
        };
        prop_assert_eq!(m.read(addr, size), v & mask);
    }

    /// The interpreter is deterministic: same program + context + memory
    /// gives identical results.
    #[test]
    fn interpreter_deterministic(seed in any::<u64>(), len in 1usize..30) {
        // Small pseudo-random straight-line program.
        let mut asm = Asm::new("det");
        let regs = [X0, X1, X3, X4, X5];
        let mut s = seed | 1;
        let mut next = || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        for _ in 0..len {
            let d = regs[(next() % 5) as usize];
            let a = regs[(next() % 5) as usize];
            let b = regs[(next() % 5) as usize];
            match next() % 4 {
                0 => asm.add(d, a, b),
                1 => asm.eor(d, a, b),
                2 => asm.mul(d, a, b),
                _ => asm.sub(d, a, b),
            }
        }
        asm.halt();
        let p = asm.assemble();
        let run = || {
            let mut mem = FlatMem::new(0, 64);
            let mut ctx = ThreadCtx::new();
            for (i, &r) in regs.iter().enumerate() {
                ctx.set(r, seed.wrapping_mul(i as u64 + 3));
            }
            Interpreter::new(&p, &mut mem).run(&mut ctx, 10_000);
            ctx.reg_image()
        };
        prop_assert_eq!(run(), run());
    }

    /// regs() always equals srcs() ∪ dsts() with no duplicates and never
    /// contains xzr.
    #[test]
    fn reg_lists_consistent(op_sel in 0u8..4, r1 in 0u8..32, r2 in 0u8..32, r3 in 0u8..32) {
        let (a, b, c) = (Reg::new(r1), Reg::new(r2), Reg::new(r3));
        let i = match op_sel {
            0 => Instr::Alu { op: AluOp::Add, dst: a, src: b, rhs: Operand2::Reg(c) },
            1 => Instr::Madd { dst: a, a: b, b: c, acc: a },
            2 => Instr::Ldr {
                dst: a,
                base: b,
                offset: virec_isa::MemOffset::RegShifted { index: c, shift: 3 },
                size: AccessSize::B8,
            },
            _ => Instr::Str {
                src: a,
                base: b,
                offset: virec_isa::MemOffset::Imm(8),
                size: AccessSize::B8,
            },
        };
        let regs: Vec<Reg> = i.regs().iter().collect();
        let mut dedup = regs.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(regs.len(), dedup.len(), "regs() must not duplicate");
        prop_assert!(!regs.contains(&Reg::XZR));
        for s in i.srcs().iter() {
            prop_assert!(regs.contains(&s));
        }
        for d in i.dsts().iter() {
            prop_assert!(regs.contains(&d));
        }
    }

    /// Assembled programs with random (balanced) loop nests always have
    /// in-range branch targets and terminate under the interpreter.
    #[test]
    fn random_loop_nests_terminate(depth in 1usize..4, body in 1usize..5, iters in 1u8..5) {
        let counters = [X10, X11, X12];
        let mut asm = Asm::new("nest");
        for (d, &c) in counters.iter().enumerate().take(depth) {
            asm.mov_imm(c, iters as i64);
            asm.label(&format!("l{d}"));
        }
        for _ in 0..body {
            asm.addi(X0, X0, 1);
        }
        for (d, &c) in counters.iter().enumerate().take(depth).rev() {
            asm.subi(c, c, 1);
            asm.cbnz(c, &format!("l{d}"));
        }
        asm.halt();
        let p = asm.assemble();
        let mut mem = FlatMem::new(0, 64);
        let mut ctx = ThreadCtx::new();
        let out = Interpreter::new(&p, &mut mem).run(&mut ctx, 10_000_000);
        let halted = matches!(out, virec_isa::ExecOutcome::Halted { .. });
        prop_assert!(halted);
        // Work done = body * product(iter counts at each level)? No:
        // inner counters are reinitialized only once in this flat nest, so
        // just check the loop actually ran.
        prop_assert!(ctx.get(X0) >= body as u64);
    }
}
