//! Extension experiment: long-horizon wear campaign for the RAS layer —
//! availability vs permanent-fault rate, ViReC vs banked.
//!
//! The streaming task service runs with the RAS layer enabled (spare
//! pool + repair latency + fencing) while `k` of its cores develop
//! stuck-at defects mid-run, for `k` swept from 0 up to the fleet size.
//! Each point records what the paper's availability story needs:
//!
//! * **availability** — delivered capacity-cycles over the ideal
//!   (healthy cores earn full credit, fenced cores 75%, cores under
//!   repair or quarantined none);
//! * **goodput** — completed tasks over submitted, proving repairs do
//!   not drop or duplicate work (`lost == duplicated == silent == 0`
//!   is asserted on every cell);
//! * **repairs / fenced** — how the spare pool absorbs the first
//!   defects and how the fleet degrades once the pool runs dry.
//!
//! The expected curve: availability stays near 100% while spares last
//! (repairs cost only `repair_cycles` of downtime each), then steps down
//! by roughly one fenced core's worth (25% of that core) per defect past
//! the pool — graceful degradation, never a cliff to zero, and byte-level
//! accounting intact at every point.
//!
//! Knobs: `VIREC_RAS_CORES`, `VIREC_RAS_TASKS`, `VIREC_RAS_SPARES`,
//! `VIREC_RAS_SEED`. Results land in `results/ext_ras_endurance.json`
//! with provenance metadata like every other figure.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_sim::experiment::ExperimentSpec;
use virec_sim::report::{pct, Table};
use virec_sim::serve::{ServeConfig, ServeFaultPlan};
use virec_sim::{run_service, ProtectionConfig, RasConfig};

const THREADS: usize = 4;
/// The paper's sweet spot: 8 registers per thread (80–100% context).
const REGS_PER_THREAD: usize = 8;

const ENGINES: [&str; 2] = ["virec", "banked"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cores = env_u64("VIREC_RAS_CORES", 4) as usize;
    let tasks = env_u64("VIREC_RAS_TASKS", 96) as usize;
    let spares = env_u64("VIREC_RAS_SPARES", 2) as u32;
    let seed = env_u64("VIREC_RAS_SEED", 0xF00D_5EED);

    let mut spec = ExperimentSpec::new("ext_ras_endurance");
    spec.set_meta("cores", cores);
    spec.set_meta("tasks", tasks);
    spec.set_meta("spare_rows", spares);
    spec.set_meta("seed", seed);
    spec.set_meta("threads", THREADS);
    spec.set_meta("regs_per_thread", REGS_PER_THREAD);

    for engine in ENGINES {
        for stuck in 0..=cores {
            spec.custom(format!("{engine}/stuck{stuck}"), move |_| {
                let core = match engine {
                    "virec" => CoreConfig::virec(THREADS, THREADS * REGS_PER_THREAD),
                    _ => CoreConfig::banked(THREADS),
                };
                let mut cfg = ServeConfig::streaming(cores, core, tasks, seed);
                cfg.protection = ProtectionConfig::secded();
                cfg.faults = ServeFaultPlan::stuck(stuck);
                cfg.ras = Some(RasConfig {
                    spare_rows: spares,
                    ..RasConfig::default()
                });
                let r = run_service(cfg)?;
                assert_eq!(r.lost, 0, "repair path lost a task");
                assert_eq!(r.duplicated, 0, "repair path duplicated a task");
                assert_eq!(r.silent_corruptions, 0, "a corrupted result escaped");
                Ok(r.metrics())
            });
        }
    }
    let res = run_spec(&spec);

    let metric = |key: &str, name: &str| res.metric(key, name);
    let int = |key: &str, name: &str| {
        metric(key, name)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    let as_pct = |key: &str, name: &str| {
        metric(key, name)
            .map(pct)
            .unwrap_or_else(|| "-".to_string())
    };

    let mut tbl = Table::new(
        &format!(
            "RAS endurance — {cores} cores x {THREADS} threads, {tasks} tasks, \
             {spares} spare regions"
        ),
        &[
            "engine/defects",
            "availability",
            "goodput",
            "repairs",
            "fenced",
            "failovers",
            "completed",
            "p99",
            "lost",
            "dup",
            "silent",
        ],
    );
    for engine in ENGINES {
        for stuck in 0..=cores {
            let key = format!("{engine}/stuck{stuck}");
            tbl.row(vec![
                key.clone(),
                as_pct(&key, "availability"),
                as_pct(&key, "goodput"),
                int(&key, "repairs"),
                int(&key, "fenced_cores"),
                int(&key, "failovers"),
                int(&key, "completed"),
                int(&key, "p99_cycles"),
                int(&key, "lost"),
                int(&key, "duplicated"),
                int(&key, "silent_corruptions"),
            ]);
        }
    }
    tbl.print();
    res.print_failures();
}
