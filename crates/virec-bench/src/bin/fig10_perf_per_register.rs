//! Figure 10: performance-per-register trade-off for gather.
//!
//! Sweeps the number of scheduled threads; each thread count has points for
//! ViReC at 40/60/80/100% context plus the banked core. Paper shape: while
//! memory latency is not hidden (few threads), small contexts cost little —
//! scheduling more threads with less per-thread context wins; once latency
//! is hidden, additional context (fewer register misses) pays more than
//! additional threads. E.g. 32 registers run 4 threads at 100% or 8 threads
//! at 40% — with the 8-thread configuration substantially faster.
//!
//! Failed configurations become structured failure rows and the sweep
//! continues (the normalizing single-thread banked run is the only cell
//! the figure cannot survive losing).

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::report::{f3, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::kernels;

fn main() {
    let n = problem_size();
    let w = kernels::spatter::gather(n, layout0());
    let opts = RunOptions::default();
    let mut log = SweepLog::new();
    let mut t = Table::new(
        &format!("Figure 10 — performance per register, gather n={n}"),
        &[
            "threads",
            "config",
            "regs",
            "cycles",
            "perf",
            "perf_per_reg",
        ],
    );
    // Performance normalized to the single-thread banked run. Everything
    // in the figure is relative to this cell, so its failure is fatal.
    let base = match log.cell("banked_1t_base", CoreConfig::banked(1), &w, &opts) {
        Cell::Done(r) => r.cycles as f64,
        Cell::Failed { .. } => {
            log.print();
            eprintln!("figure 10: the normalizing run failed; aborting");
            std::process::exit(1);
        }
    };
    for threads in [1usize, 2, 4, 6, 8, 10] {
        for (label, frac) in CTX_FRACTIONS {
            let cfg = virec_cfg(&w, threads, *frac, PolicyKind::Lrc);
            let cell = log.cell(&format!("{threads}t/virec_{label}"), cfg, &w, &opts);
            match cell.cycles() {
                Some(cycles) => {
                    let perf = base / cycles as f64;
                    t.row(vec![
                        threads.to_string(),
                        format!("virec_{label}"),
                        cfg.phys_regs.to_string(),
                        cycles.to_string(),
                        f3(perf),
                        f3(perf / cfg.phys_regs as f64),
                    ]);
                }
                None => t.row(vec![
                    threads.to_string(),
                    format!("virec_{label}"),
                    cfg.phys_regs.to_string(),
                    "FAILED".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        let b = log.cell(
            &format!("{threads}t/banked"),
            CoreConfig::banked(threads),
            &w,
            &opts,
        );
        let regs = threads * 64; // 32 int + 32 fp per bank (Table 1)
        match b.cycles() {
            Some(cycles) => {
                let perf = base / cycles as f64;
                t.row(vec![
                    threads.to_string(),
                    "banked".into(),
                    regs.to_string(),
                    cycles.to_string(),
                    f3(perf),
                    f3(perf / regs as f64),
                ]);
            }
            None => t.row(vec![
                threads.to_string(),
                "banked".into(),
                regs.to_string(),
                "FAILED".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.print();

    // The paper's headline scaling claim: 32 registers as 4 threads @100%
    // vs 8 threads @40%.
    let four_full = log.cell("claim/virec_4t_32r", CoreConfig::virec(4, 32), &w, &opts);
    let eight_small = log.cell("claim/virec_8t_32r", CoreConfig::virec(8, 32), &w, &opts);
    if let (Some(four), Some(eight)) = (four_full.cycles(), eight_small.cycles()) {
        let speedup = four as f64 / eight as f64;
        let mut s = Table::new(
            "Figure 10 — same 32-register RF, threads vs context",
            &["config", "cycles", "speedup_vs_4t_100%"],
        );
        s.row(vec![
            "virec 4t x 100% (32 regs)".into(),
            four.to_string(),
            f3(1.0),
        ]);
        s.row(vec![
            "virec 8t x 40% (32 regs)".into(),
            eight.to_string(),
            f3(speedup),
        ]);
        s.print();
    }
    log.print();
}
