//! Figure 10: performance-per-register trade-off for gather.
//!
//! Sweeps the number of scheduled threads; each thread count has points for
//! ViReC at 40/60/80/100% context plus the banked core. Paper shape: while
//! memory latency is not hidden (few threads), small contexts cost little —
//! scheduling more threads with less per-thread context wins; once latency
//! is hidden, additional context (fewer register misses) pays more than
//! additional threads. E.g. 32 registers run 4 threads at 100% or 8 threads
//! at 40% — with the 8-thread configuration substantially faster.
//!
//! The grid runs as one declarative sweep; failed configurations become
//! structured failure rows (the normalizing single-thread banked run is the
//! only cell the figure cannot survive losing).

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::{f3, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::kernels;

const THREADS: [usize; 6] = [1, 2, 4, 6, 8, 10];

fn main() {
    let n = problem_size();
    let w = kernels::spatter::gather(n, layout0());
    let build = builder(kernels::spatter::gather, n, layout0());
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("fig10_perf_per_register");
    spec.set_meta("n", n);
    // Performance is normalized to the single-thread banked run.
    spec.single(
        "banked_1t_base",
        build.clone(),
        CoreConfig::banked(1),
        &opts,
    );
    for threads in THREADS {
        for (label, frac) in CTX_FRACTIONS {
            spec.single(
                format!("{threads}t/virec_{label}"),
                build.clone(),
                virec_cfg(&w, threads, *frac, PolicyKind::Lrc),
                &opts,
            );
        }
        spec.single(
            format!("{threads}t/banked"),
            build.clone(),
            CoreConfig::banked(threads),
            &opts,
        );
    }
    // The paper's headline scaling claim: 32 registers as 4 threads @100%
    // vs 8 threads @40%.
    spec.single(
        "claim/virec_4t_32r",
        build.clone(),
        CoreConfig::virec(4, 32),
        &opts,
    );
    spec.single("claim/virec_8t_32r", build, CoreConfig::virec(8, 32), &opts);
    let res = run_spec(&spec);

    // Everything in the figure is relative to this cell, so its failure is
    // fatal.
    let Some(base) = res.cycles("banked_1t_base").map(|c| c as f64) else {
        res.print_failures();
        eprintln!("figure 10: the normalizing run failed; aborting");
        std::process::exit(1);
    };

    let mut t = Table::new(
        &format!("Figure 10 — performance per register, gather n={n}"),
        &[
            "threads",
            "config",
            "regs",
            "cycles",
            "perf",
            "perf_per_reg",
        ],
    );
    let point = |t: &mut Table, threads: usize, config: &str, regs: usize, cycles: Option<u64>| {
        match cycles {
            Some(cycles) => {
                let perf = base / cycles as f64;
                t.row(vec![
                    threads.to_string(),
                    config.to_string(),
                    regs.to_string(),
                    cycles.to_string(),
                    f3(perf),
                    f3(perf / regs as f64),
                ]);
            }
            None => t.row(vec![
                threads.to_string(),
                config.to_string(),
                regs.to_string(),
                "FAILED".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    };
    for threads in THREADS {
        for (label, frac) in CTX_FRACTIONS {
            let cfg = virec_cfg(&w, threads, *frac, PolicyKind::Lrc);
            point(
                &mut t,
                threads,
                &format!("virec_{label}"),
                cfg.phys_regs,
                res.cycles(&format!("{threads}t/virec_{label}")),
            );
        }
        let regs = threads * 64; // 32 int + 32 fp per bank (Table 1)
        point(
            &mut t,
            threads,
            "banked",
            regs,
            res.cycles(&format!("{threads}t/banked")),
        );
    }
    t.print();

    if let (Some(four), Some(eight)) = (
        res.cycles("claim/virec_4t_32r"),
        res.cycles("claim/virec_8t_32r"),
    ) {
        let speedup = four as f64 / eight as f64;
        let mut s = Table::new(
            "Figure 10 — same 32-register RF, threads vs context",
            &["config", "cycles", "speedup_vs_4t_100%"],
        );
        s.row(vec![
            "virec 4t x 100% (32 regs)".into(),
            four.to_string(),
            f3(1.0),
        ]);
        s.row(vec![
            "virec 8t x 40% (32 regs)".into(),
            eight.to_string(),
            f3(speedup),
        ]);
        s.print();
    }
    res.print_failures();
}
