//! Extension table: silicon cost of the in-situ protection model —
//! SEC-DED over the word storage, parity over the VRMU CAM structures —
//! for ViReC versus the banked baseline.
//!
//! The (72,64) code taxes every protected word array a fixed 12.5% in
//! check bits, so the absolute ECC bill tracks the size of the register
//! storage being protected. ViReC's whole point is that its RF is small
//! (5–10 registers per thread instead of a 64-register bank per thread),
//! and this table shows the consequence: full protection costs ViReC a
//! few hundredths of a mm² while the banked design pays 12.5% on every
//! bank — the paper's area advantage *widens* once both designs are
//! protected, even though ViReC additionally pays parity on its tag
//! store and rollback queue.
//!
//! No simulation — the cells evaluate the analytic ECC area model — but
//! the points run through the declarative layer so the numbers land in
//! the machine-readable `results/` JSON with their provenance metadata.

use virec_area::{AreaModel, EccAreaModel, PARITY_STORAGE_FRAC, SECDED_STORAGE_FRAC};
use virec_bench::harness::*;
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::report::{pct, Table};

const THREADS: [usize; 5] = [2, 4, 8, 12, 16];
/// The paper's sweet spot: 8 registers per thread (80–100% context).
const REGS_PER_THREAD: usize = 8;

fn main() {
    let mut spec = ExperimentSpec::new("ext_ecc_overhead");
    spec.set_meta("regs_per_thread", REGS_PER_THREAD);
    spec.set_meta("secded_storage_frac", SECDED_STORAGE_FRAC);
    spec.set_meta("parity_storage_frac", format!("{PARITY_STORAGE_FRAC:.4}"));
    for threads in THREADS {
        spec.custom(format!("ecc/{threads}t"), move |_| {
            let a = AreaModel::default();
            let e = EccAreaModel::default();
            let regs = REGS_PER_THREAD * threads;
            let v = e.virec_overhead(&a, regs);
            let b = e.banked_overhead(&a, threads);
            Ok(CellData::metrics([
                ("virec_core", a.virec_core(regs)),
                ("virec_ecc_storage", v.storage_mm2),
                ("virec_ecc_logic", v.logic_mm2),
                ("virec_protected", e.virec_core(&a, regs)),
                ("banked_core", a.banked_core(threads)),
                ("banked_ecc_storage", b.storage_mm2),
                ("banked_ecc_logic", b.logic_mm2),
                ("banked_protected", e.banked_core(&a, threads)),
            ]))
        });
    }
    let res = run_spec(&spec);

    let metric = |key: &str, name: &str| res.metric(key, name);
    let cell = |key: &str, name: &str| opt_f3(metric(key, name));

    let mut t = Table::new(
        &format!(
            "ECC overhead (mm², 45 nm) — SEC-DED words + parity CAMs, \
             {REGS_PER_THREAD} regs/thread"
        ),
        &[
            "threads",
            "virec_ecc",
            "virec_frac",
            "banked_ecc",
            "banked_frac",
            "savings_raw",
            "savings_ecc",
        ],
    );
    for threads in THREADS {
        let key = format!("ecc/{threads}t");
        let sum = |pre: &str| {
            Some(
                metric(&key, &format!("{pre}_ecc_storage"))?
                    + metric(&key, &format!("{pre}_ecc_logic"))?,
            )
        };
        let frac = |pre: &str| Some(pct(sum(pre)? / metric(&key, &format!("{pre}_protected"))?));
        // Area savings of ViReC over banked, before and after protection:
        // the protected gap must be at least as wide.
        let savings = |suffix: &str| {
            Some(pct(1.0
                - metric(&key, &format!("virec_{suffix}"))?
                    / metric(&key, &format!("banked_{suffix}"))?))
        };
        let dash = || "-".to_string();
        t.row(vec![
            threads.to_string(),
            opt_f3(sum("virec")),
            frac("virec").unwrap_or_else(dash),
            opt_f3(sum("banked")),
            frac("banked").unwrap_or_else(dash),
            savings("core").unwrap_or_else(dash),
            savings("protected").unwrap_or_else(dash),
        ]);
    }
    t.print();

    let mut b = Table::new(
        "ECC breakdown (mm²) — storage check bits vs codec logic",
        &[
            "threads",
            "virec_storage",
            "virec_logic",
            "virec_total_core",
            "banked_storage",
            "banked_logic",
            "banked_total_core",
        ],
    );
    for threads in THREADS {
        let key = format!("ecc/{threads}t");
        b.row(vec![
            threads.to_string(),
            cell(&key, "virec_ecc_storage"),
            cell(&key, "virec_ecc_logic"),
            cell(&key, "virec_protected"),
            cell(&key, "banked_ecc_storage"),
            cell(&key, "banked_ecc_logic"),
            cell(&key, "banked_protected"),
        ]);
    }
    b.print();
    res.print_failures();
}
