//! Figure 14 (and the §6.2 delay analysis): processor area versus thread
//! count for ViReC with different per-thread context sizes, against a
//! banked design with 64 registers per bank.
//!
//! Paper shape: ViReC with 5–10 registers per thread stays well under the
//! banked curve (≈40% savings at 8–16 threads, ≈20% overhead over the base
//! core), while ViReC with full 64-register contexts grows faster than
//! banking due to the superlinear CAM tag store.

use virec_area::AreaModel;
use virec_sim::report::{f3, Table};

fn main() {
    let m = AreaModel::default();
    let mut t = Table::new(
        "Figure 14 — core area (mm², 45 nm) vs thread count",
        &[
            "threads",
            "banked(64/bank)",
            "virec 4r/t",
            "virec 8r/t",
            "virec 10r/t",
            "virec 64r/t",
        ],
    );
    for threads in [1usize, 2, 4, 8, 12, 16] {
        t.row(vec![
            threads.to_string(),
            f3(m.banked_core(threads)),
            f3(m.virec_core(4 * threads)),
            f3(m.virec_core(8 * threads)),
            f3(m.virec_core(10 * threads)),
            f3(m.virec_core(64 * threads)),
        ]);
    }
    t.print();

    let mut b = Table::new(
        "Figure 14 — ViReC area breakdown (mm²)",
        &[
            "phys_regs",
            "rf",
            "tag_store",
            "vrmu_logic",
            "total_overhead",
        ],
    );
    for regs in [24usize, 32, 64, 80, 120] {
        b.row(vec![
            regs.to_string(),
            f3(m.rf_area(regs)),
            f3(m.tag_store_area(regs)),
            f3(m.vrmu_logic_area(regs)),
            f3(m.virec_overhead(regs)),
        ]);
    }
    b.print();

    let mut d = Table::new("§6.2 — RF read delay (ns)", &["config", "delay_ns"]);
    d.row(vec![
        "baseline 32-entry RF".into(),
        f3(m.virec_rf_delay(32)),
    ]);
    for regs in [24usize, 64, 80, 120] {
        d.row(vec![
            format!("virec {regs} regs"),
            f3(m.virec_rf_delay(regs)),
        ]);
    }
    for threads in [4usize, 8, 16] {
        d.row(vec![
            format!("banked {threads} banks"),
            f3(m.banked_rf_delay(threads)),
        ]);
    }
    d.print();
}
