//! Figure 14 (and the §6.2 delay analysis): processor area versus thread
//! count for ViReC with different per-thread context sizes, against a
//! banked design with 64 registers per bank.
//!
//! Paper shape: ViReC with 5–10 registers per thread stays well under the
//! banked curve (≈40% savings at 8–16 threads, ≈20% overhead over the base
//! core), while ViReC with full 64-register contexts grows faster than
//! banking due to the superlinear CAM tag store.
//!
//! No simulation — the cells evaluate the analytic area model — but the
//! points still run through the declarative layer so the numbers land in
//! the machine-readable `results/` JSON alongside the simulated figures.

use virec_area::AreaModel;
use virec_bench::harness::*;
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::report::Table;

const THREADS: [usize; 6] = [1, 2, 4, 8, 12, 16];
const REGS_PER_THREAD: [usize; 4] = [4, 8, 10, 64];
const BREAKDOWN_REGS: [usize; 5] = [24, 32, 64, 80, 120];
const DELAY_REGS: [usize; 4] = [24, 64, 80, 120];
const DELAY_BANKS: [usize; 3] = [4, 8, 16];

fn main() {
    let mut spec = ExperimentSpec::new("fig14_area");
    for threads in THREADS {
        spec.custom(format!("area/{threads}t"), move |_| {
            let m = AreaModel::default();
            Ok(CellData::metrics([
                ("banked", m.banked_core(threads)),
                ("virec_4rt", m.virec_core(4 * threads)),
                ("virec_8rt", m.virec_core(8 * threads)),
                ("virec_10rt", m.virec_core(10 * threads)),
                ("virec_64rt", m.virec_core(64 * threads)),
            ]))
        });
    }
    for regs in BREAKDOWN_REGS {
        spec.custom(format!("breakdown/{regs}r"), move |_| {
            let m = AreaModel::default();
            Ok(CellData::metrics([
                ("rf", m.rf_area(regs)),
                ("tag_store", m.tag_store_area(regs)),
                ("vrmu_logic", m.vrmu_logic_area(regs)),
                ("total_overhead", m.virec_overhead(regs)),
            ]))
        });
    }
    spec.custom("delay/baseline_32r", |_| {
        Ok(CellData::metrics([(
            "delay_ns",
            AreaModel::default().virec_rf_delay(32),
        )]))
    });
    for regs in DELAY_REGS {
        spec.custom(format!("delay/virec_{regs}r"), move |_| {
            Ok(CellData::metrics([(
                "delay_ns",
                AreaModel::default().virec_rf_delay(regs),
            )]))
        });
    }
    for banks in DELAY_BANKS {
        spec.custom(format!("delay/banked_{banks}b"), move |_| {
            Ok(CellData::metrics([(
                "delay_ns",
                AreaModel::default().banked_rf_delay(banks),
            )]))
        });
    }
    let res = run_spec(&spec);

    let metric = |key: &str, name: &str| opt_f3(res.metric(key, name));

    let mut t = Table::new(
        "Figure 14 — core area (mm², 45 nm) vs thread count",
        &[
            "threads",
            "banked(64/bank)",
            "virec 4r/t",
            "virec 8r/t",
            "virec 10r/t",
            "virec 64r/t",
        ],
    );
    for threads in THREADS {
        let key = format!("area/{threads}t");
        let mut row = vec![threads.to_string(), metric(&key, "banked")];
        for rt in REGS_PER_THREAD {
            row.push(metric(&key, &format!("virec_{rt}rt")));
        }
        t.row(row);
    }
    t.print();

    let mut b = Table::new(
        "Figure 14 — ViReC area breakdown (mm²)",
        &[
            "phys_regs",
            "rf",
            "tag_store",
            "vrmu_logic",
            "total_overhead",
        ],
    );
    for regs in BREAKDOWN_REGS {
        let key = format!("breakdown/{regs}r");
        b.row(vec![
            regs.to_string(),
            metric(&key, "rf"),
            metric(&key, "tag_store"),
            metric(&key, "vrmu_logic"),
            metric(&key, "total_overhead"),
        ]);
    }
    b.print();

    let mut d = Table::new("§6.2 — RF read delay (ns)", &["config", "delay_ns"]);
    d.row(vec![
        "baseline 32-entry RF".into(),
        metric("delay/baseline_32r", "delay_ns"),
    ]);
    for regs in DELAY_REGS {
        d.row(vec![
            format!("virec {regs} regs"),
            metric(&format!("delay/virec_{regs}r"), "delay_ns"),
        ]);
    }
    for banks in DELAY_BANKS {
        d.row(vec![
            format!("banked {banks} banks"),
            metric(&format!("delay/banked_{banks}b"), "delay_ns"),
        ]);
    }
    d.print();
    res.print_failures();
}
