//! Budget tuner: sweep the `virec-cc` register budget × VRMU capacity
//! grid and print the perf × area Pareto surface for the compiled gather
//! kernel, plus the recommended point for a reference area envelope.
//!
//! Every point is translation-validated before it runs (the TV preflight
//! panics on any miscompile), so the surface can only contain programs
//! proven equivalent to their pre-allocation IR.

use virec_bench::tune::{pareto_front, pick_for_area, tune_sweep, TuneConfig};
use virec_sim::report::Table;

/// Reference area envelope (mm²) for the headline pick: a mid-sized
/// fully-protected VRMU core (between the 16- and 24-register designs).
const ENVELOPE_MM2: f64 = 1.50;

fn main() {
    let mut cfg = TuneConfig::default();
    if let Ok(s) = std::env::var("VIREC_N") {
        if let Ok(n) = s.parse() {
            cfg.n = n;
        }
    }
    let points = tune_sweep(&cfg);

    let mut t = Table::new(
        &format!(
            "Budget tuner — compiled gather, {} threads, n={}, strategy={}",
            cfg.nthreads,
            cfg.n,
            cfg.strategy.name()
        ),
        &[
            "budget", "capacity", "spilled", "loads", "stores", "cycles", "ipc", "area_mm2",
        ],
    );
    for p in &points {
        t.row(vec![
            p.budget.to_string(),
            p.capacity.to_string(),
            p.spilled.to_string(),
            p.spill_loads.to_string(),
            p.spill_stores.to_string(),
            p.cycles.to_string(),
            format!("{:.3}", p.ipc),
            format!("{:.4}", p.area_mm2),
        ]);
    }
    t.print();

    let front = pareto_front(&points);
    println!();
    println!("Pareto front (area ascending — each point is the fastest at its area):");
    for p in &front {
        println!(
            "pareto: budget={} capacity={} cycles={} area_mm2={:.4} spill_loads={}",
            p.budget, p.capacity, p.cycles, p.area_mm2, p.spill_loads
        );
    }
    println!();
    match pick_for_area(&points, ENVELOPE_MM2) {
        Some(p) => println!(
            "pick: area envelope {ENVELOPE_MM2:.4} mm2 -> budget={} capacity={} ({} cycles, {:.4} mm2)",
            p.budget, p.capacity, p.cycles, p.area_mm2
        ),
        None => println!("pick: no point fits the {ENVELOPE_MM2:.4} mm2 envelope"),
    }
}
