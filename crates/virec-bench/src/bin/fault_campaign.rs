//! Deterministic fault-injection campaign across the context engines.
//!
//! Runs K seeded single-bit fault injections (default 64, override with
//! `VIREC_FAULTS`) against a ViReC core (all six fault sites: VRMU tag
//! store, rollback queue, stuck fills, backing-store registers, DRAM
//! lines, in-flight fabric responses) and a banked core (the four sites
//! that exist without a VRMU), classifying every run against the golden
//! interpreter and the clean run's architectural digest.
//!
//! Each engine's campaign is one custom cell; the outcome counts land in
//! the `results/` JSON while the full per-injection records flow through
//! a side channel for the SILENT-escape listing. Every checker-detected
//! injection is re-executed once without the fault plan and must
//! reproduce the clean run's architectural digest (`Recovered`). Exit
//! status is nonzero if any effectful fault escaped detection (a
//! `SILENT` outcome) or any detected injection failed to recover — both
//! are checker/recovery bugs, not simulator bugs.
//!
//! `VIREC_PROTECTION=secded` (or `parity`) routes every injection through
//! the in-situ protection model with architectural checkpointing enabled,
//! adding the corrected / checkpoint-recovered / detected-uncorrectable
//! classifications; `VIREC_MULTI_FAULT=1` switches to double-bit bursts
//! that defeat single-error correction.
//!
//! ```sh
//! cargo run --release -p virec-bench --bin fault_campaign
//! VIREC_FAULTS=256 VIREC_N=2048 cargo run --release -p virec-bench --bin fault_campaign
//! VIREC_PROTECTION=secded cargo run --release -p virec-bench --bin fault_campaign
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_mem::FabricConfig;
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::report::{pct, Table};
use virec_sim::runner::default_checkpoint_interval;
use virec_sim::{
    run_campaign_with, CampaignOptions, CampaignReport, FaultClass, FaultSite, InjectionOutcome,
    ProtectionConfig, RasConfig,
};
use virec_workloads::kernels;

/// Injection count per engine (`VIREC_FAULTS`, default 64).
fn injection_count() -> usize {
    std::env::var("VIREC_FAULTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Campaign options from `VIREC_PROTECTION` / `VIREC_MULTI_FAULT` /
/// `VIREC_FAULT_CLASS` (defaults: unprotected, single-fault, transient —
/// the historical behavior). A persistent fault class turns on the RAS
/// layer at its default rates.
fn campaign_options() -> CampaignOptions {
    let protection: ProtectionConfig = match std::env::var("VIREC_PROTECTION") {
        Ok(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("VIREC_PROTECTION: {e}");
            std::process::exit(2);
        }),
        Err(_) => ProtectionConfig::none(),
    };
    let class: FaultClass = match std::env::var("VIREC_FAULT_CLASS") {
        Ok(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("VIREC_FAULT_CLASS: {e}");
            std::process::exit(2);
        }),
        Err(_) => FaultClass::Transient,
    };
    CampaignOptions {
        protection,
        multi_fault: std::env::var("VIREC_MULTI_FAULT").is_ok_and(|v| v != "0"),
        checkpoint_interval: if protection.is_none() {
            0
        } else {
            default_checkpoint_interval()
        },
        class,
        ras: class.is_persistent().then(RasConfig::default),
        fabric: FabricConfig::default(),
    }
}

fn main() {
    // Campaigns run one full simulation per injection; keep the default
    // problem size modest so 2×64 runs stay interactive.
    let n = problem_size().min(2048);
    let injections = injection_count();
    let base_seed: u64 = std::env::var("VIREC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF00D_5EED);

    // The executor already converts panics (a clean reference run failing)
    // into structured failure rows; the full reports travel through this
    // side channel so the SILENT-escape listing can show per-record detail.
    let reports: Arc<Mutex<BTreeMap<String, CampaignReport>>> = Default::default();

    let campaign = campaign_options();

    let mut spec = ExperimentSpec::new("fault_campaign");
    spec.set_meta("n", n);
    spec.set_meta(
        "protection",
        std::env::var("VIREC_PROTECTION").unwrap_or_else(|_| "none".into()),
    );
    spec.set_meta("multi_fault", campaign.multi_fault);
    for (key, cfg, sites) in [
        ("virec", CoreConfig::virec(4, 32), &FaultSite::ALL[..]),
        ("banked", CoreConfig::banked(4), &FaultSite::NON_VRMU[..]),
    ] {
        let reports = Arc::clone(&reports);
        spec.custom(key, move |_| {
            let w = kernels::spatter::gather(n, layout0());
            let r = run_campaign_with(cfg, &w, injections, base_seed, sites, &campaign);
            let data = CellData::metrics([
                ("injections", r.records.len() as f64),
                ("corrected", r.count(InjectionOutcome::Corrected) as f64),
                (
                    "ckpt_recovered",
                    r.count(InjectionOutcome::CheckpointRecovered) as f64,
                ),
                (
                    "detected_uncorrectable",
                    r.count(InjectionOutcome::DetectedUncorrectable) as f64,
                ),
                ("recovered", r.count(InjectionOutcome::Recovered) as f64),
                ("detected", r.count(InjectionOutcome::Detected) as f64),
                ("crashed", r.count(InjectionOutcome::Crashed) as f64),
                ("masked", r.count(InjectionOutcome::Masked) as f64),
                ("not_applied", r.count(InjectionOutcome::NotApplied) as f64),
                ("silent", r.count(InjectionOutcome::Silent) as f64),
                ("detection_rate", r.detection_rate()),
                ("recovery_rate", r.recovery_rate()),
                ("mean_replay_cycles", r.mean_replay_cycles().unwrap_or(0.0)),
                ("clean_cycles", r.clean_cycles as f64),
            ]);
            reports.lock().unwrap().insert(key.to_string(), r);
            Ok(data)
        });
    }

    // Crashed outcomes unwind through a panic inside the campaign; silence
    // the default hook so the report is the only output, and restore it
    // afterwards.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let res = run_spec(&spec);
    std::panic::set_hook(prev);

    println!("fault campaign: gather n={n}, {injections} injections per engine\n");
    if !res.all_ok() {
        res.print_failures();
        eprintln!("campaign aborted: the clean reference run failed");
        std::process::exit(1);
    }
    let reports = reports.lock().unwrap();

    let mut t = Table::new(
        "Fault-injection campaign — detection by engine",
        &[
            "engine",
            "injections",
            "corrected",
            "ckpt_recovered",
            "detected_uncorr",
            "recovered",
            "detected",
            "crashed",
            "masked",
            "not_applied",
            "silent",
            "detection_rate",
            "recovery_rate",
            "mean_replay",
            "clean_cycles",
        ],
    );
    for key in ["virec", "banked"] {
        let r = &reports[key];
        t.row(vec![
            r.engine.clone(),
            r.records.len().to_string(),
            r.count(InjectionOutcome::Corrected).to_string(),
            r.count(InjectionOutcome::CheckpointRecovered).to_string(),
            r.count(InjectionOutcome::DetectedUncorrectable).to_string(),
            r.count(InjectionOutcome::Recovered).to_string(),
            r.count(InjectionOutcome::Detected).to_string(),
            r.count(InjectionOutcome::Crashed).to_string(),
            r.count(InjectionOutcome::Masked).to_string(),
            r.count(InjectionOutcome::NotApplied).to_string(),
            r.count(InjectionOutcome::Silent).to_string(),
            pct(r.detection_rate()),
            pct(r.recovery_rate()),
            r.mean_replay_cycles()
                .map_or_else(|| "-".into(), |m| format!("{m:.0}")),
            r.clean_cycles.to_string(),
        ]);
    }
    t.print();

    let mut escaped = false;
    let mut unrecovered = false;
    for key in ["virec", "banked"] {
        let r = &reports[key];
        println!("{}", r.summary());
        for rec in &r.records {
            match rec.outcome {
                InjectionOutcome::Silent => {
                    escaped = true;
                    println!("  SILENT escape: seed {} faults {:?}", rec.seed, rec.faults);
                }
                InjectionOutcome::Detected => {
                    unrecovered = true;
                    println!(
                        "  unrecovered detection: seed {} faults {:?}",
                        rec.seed, rec.faults
                    );
                }
                _ => {}
            }
        }
    }
    if escaped {
        eprintln!("\nFAIL: at least one effectful fault escaped every checker");
        std::process::exit(1);
    }
    if unrecovered {
        eprintln!("\nFAIL: at least one detected injection did not recover on re-execution");
        std::process::exit(1);
    }
    println!("\nOK: every effectful fault was detected and every detection recovered");
}
