//! Extension experiment: service resilience vs injected NoC link defects —
//! throughput and tail latency as mesh links fail, ViReC vs banked.
//!
//! The streaming task service runs on a 2x2 mesh fabric while `k` link
//! upsets are injected mid-run (dispatch-clocked, CRC-caught, every one
//! retransmitted), for `k` swept from 0 up to a level that retires and
//! fences links. Each point records what the fault-tolerance story needs:
//!
//! * **goodput / availability** — completed tasks over submitted and
//!   delivered capacity-cycles over the ideal, with retired links earning
//!   zero link-capacity credit and fenced links half;
//! * **retransmissions** — every CRC-caught flit recovers by replay
//!   (`lost == duplicated == silent == 0` is asserted on every cell);
//! * **links retired / fenced** — how the leaky-bucket link trackers
//!   convert repeated upsets into route-arounds, and fencing when no
//!   route survives.
//!
//! The expected curve: goodput stays at 100% across the sweep (link-level
//! retransmission is invisible to the task accounting), availability
//! steps down as retired links shrink the delivered link capacity, and
//! p99 grows as traffic detours — graceful degradation, never a lost
//! task, never a livelock.
//!
//! Knobs: `VIREC_NOC_CORES`, `VIREC_NOC_TASKS`, `VIREC_NOC_SEED`,
//! `VIREC_NOC_MAXFAULTS`. Results land in
//! `results/ext_noc_resilience.json` with provenance metadata like every
//! other figure.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_mem::{FabricConfig, FabricTopology};
use virec_sim::experiment::ExperimentSpec;
use virec_sim::report::{pct, Table};
use virec_sim::serve::{ServeConfig, ServeFaultPlan};
use virec_sim::{run_service, ProtectionConfig, RasConfig};

const THREADS: usize = 4;
/// The paper's sweet spot: 8 registers per thread (80–100% context).
const REGS_PER_THREAD: usize = 8;

const ENGINES: [&str; 2] = ["virec", "banked"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cores = env_u64("VIREC_NOC_CORES", 4) as usize;
    let tasks = env_u64("VIREC_NOC_TASKS", 96) as usize;
    let seed = env_u64("VIREC_NOC_SEED", 0xF00D_5EED);
    let max_faults = env_u64("VIREC_NOC_MAXFAULTS", 12) as usize;
    let sweep: Vec<usize> = (0..=max_faults).step_by(3).collect();

    let mut spec = ExperimentSpec::new("ext_noc_resilience");
    spec.set_meta("cores", cores);
    spec.set_meta("tasks", tasks);
    spec.set_meta("seed", seed);
    spec.set_meta("topology", "mesh2x2");
    spec.set_meta("threads", THREADS);
    spec.set_meta("regs_per_thread", REGS_PER_THREAD);

    for engine in ENGINES {
        for &faults in &sweep {
            spec.custom(format!("{engine}/links{faults}"), move |_| {
                let core = match engine {
                    "virec" => CoreConfig::virec(THREADS, THREADS * REGS_PER_THREAD),
                    _ => CoreConfig::banked(THREADS),
                };
                let mut cfg = ServeConfig::streaming(cores, core, tasks, seed);
                cfg.fabric = FabricConfig {
                    topology: FabricTopology::Mesh { cols: 2, rows: 2 },
                    ..FabricConfig::default()
                };
                cfg.protection = ProtectionConfig::secded();
                cfg.faults = ServeFaultPlan::links(faults);
                cfg.ras = Some(RasConfig::default());
                let r = run_service(cfg)?;
                assert_eq!(r.lost, 0, "link retransmission lost a task");
                assert_eq!(r.duplicated, 0, "link retransmission duplicated a task");
                assert_eq!(r.silent_corruptions, 0, "a corrupted flit escaped the CRC");
                if faults > 0 {
                    assert!(
                        r.fabric.noc_retransmissions >= 1,
                        "injected upsets must force retransmissions"
                    );
                }
                Ok(r.metrics())
            });
        }
    }
    let res = run_spec(&spec);

    let metric = |key: &str, name: &str| res.metric(key, name);
    let int = |key: &str, name: &str| {
        metric(key, name)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    let as_pct = |key: &str, name: &str| {
        metric(key, name)
            .map(pct)
            .unwrap_or_else(|| "-".to_string())
    };

    let mut tbl = Table::new(
        &format!(
            "NoC resilience — {cores} cores x {THREADS} threads on a 2x2 mesh, \
             {tasks} tasks"
        ),
        &[
            "engine/defects",
            "availability",
            "goodput",
            "retrans",
            "retired",
            "fenced",
            "completed",
            "p99",
            "lost",
            "dup",
            "silent",
        ],
    );
    for engine in ENGINES {
        for &faults in &sweep {
            let key = format!("{engine}/links{faults}");
            tbl.row(vec![
                key.clone(),
                as_pct(&key, "availability"),
                as_pct(&key, "goodput"),
                int(&key, "noc_retransmissions"),
                int(&key, "noc_links_retired"),
                int(&key, "noc_links_fenced"),
                int(&key, "completed"),
                int(&key, "p99_cycles"),
                int(&key, "lost"),
                int(&key, "duplicated"),
                int(&key, "silent_corruptions"),
            ]);
        }
    }
    tbl.print();
    res.print_failures();
}
