//! §4.2 experiment: compiler register reduction for outer-loop registers.
//!
//! The nested-loop kernels (spmv, meabo) are rewritten so their
//! outer-loop-only registers live in per-thread memory slots instead of the
//! register context. The paper reports a negligible dynamic-instruction
//! overhead (< 0.1% in their experiments — higher here since our synthetic
//! outer loops run more often) in exchange for a smaller context that the
//! ViReC RF no longer needs to track.

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::report::{f3, pct, Table};
use virec_workloads::{kernels, reduce_workload};

fn main() {
    let n = problem_size().min(4096);
    let threads = 8;
    let mut t = Table::new(
        &format!("Register reduction (§4.2) — 8 threads, 40% context, n={n}"),
        &[
            "workload",
            "demoted",
            "instr_overhead",
            "base_cycles",
            "reduced_cycles",
            "speedup",
            "base_hit",
            "reduced_hit",
        ],
    );
    for ctor in [kernels::sparse::spmv, kernels::meabo::meabo] {
        let base_w = ctor(n, layout0());
        let (red_w, demoted) = reduce_workload(ctor(n, layout0()));
        if demoted.is_empty() {
            continue;
        }
        let cfg = virec_cfg(&base_w, threads, 0.4, PolicyKind::Lrc);
        let base = run(cfg, &base_w);
        // Same physical RF size: the reduced kernel simply stops competing
        // for RF space with cold outer registers.
        let red = run(cfg, &red_w);
        let overhead = red.stats.instructions as f64 / base.stats.instructions as f64 - 1.0;
        t.row(vec![
            base_w.name.to_string(),
            demoted.len().to_string(),
            pct(overhead),
            base.cycles.to_string(),
            red.cycles.to_string(),
            f3(base.cycles as f64 / red.cycles as f64),
            pct(base.stats.rf_hit_rate()),
            pct(red.stats.rf_hit_rate()),
        ]);
    }
    t.print();
}
