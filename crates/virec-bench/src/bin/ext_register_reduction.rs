//! §4.2 experiment: compiler register reduction for outer-loop registers.
//!
//! The nested-loop kernels (spmv, meabo) are rewritten so their
//! outer-loop-only registers live in per-thread memory slots instead of the
//! register context. The paper reports a negligible dynamic-instruction
//! overhead (< 0.1% in their experiments — higher here since our synthetic
//! outer loops run more often) in exchange for a smaller context that the
//! ViReC RF no longer needs to track.
//!
//! Each kernel contributes a base and a reduced cell (the reduced builder
//! applies the rewrite inside the worker); a failed half degrades that
//! column to `-`.

use std::sync::Arc;

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::experiment::{builder, ExperimentSpec, WorkloadBuilder};
use virec_sim::report::{pct, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::{kernels, reduce_workload, WorkloadCtor};

const KERNELS: &[WorkloadCtor] = &[kernels::sparse::spmv, kernels::meabo::meabo];

fn main() {
    let n = problem_size().min(4096);
    let threads = 8;
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("ext_register_reduction");
    spec.set_meta("n", n);
    let mut rows = Vec::new();
    for &ctor in KERNELS {
        let base_w = ctor(n, layout0());
        let (_, demoted) = reduce_workload(ctor(n, layout0()));
        if demoted.is_empty() {
            continue;
        }
        let name = base_w.name.to_string();
        // Same physical RF size: the reduced kernel simply stops competing
        // for RF space with cold outer registers.
        let cfg = virec_cfg(&base_w, threads, 0.4, PolicyKind::Lrc);
        spec.single(
            format!("{name}/base"),
            builder(ctor, n, layout0()),
            cfg,
            &opts,
        );
        let reduced: WorkloadBuilder = Arc::new(move || reduce_workload(ctor(n, layout0())).0);
        spec.single(format!("{name}/reduced"), reduced, cfg, &opts);
        rows.push((name, demoted.len()));
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Register reduction (§4.2) — 8 threads, 40% context, n={n}"),
        &[
            "workload",
            "demoted",
            "instr_overhead",
            "base_cycles",
            "reduced_cycles",
            "speedup",
            "base_hit",
            "reduced_hit",
        ],
    );
    for (name, demoted) in rows {
        let base = res.run(&format!("{name}/base"));
        let red = res.run(&format!("{name}/reduced"));
        let hit = |r: Option<&virec_sim::RunResult>| {
            r.map(|r| pct(r.stats.rf_hit_rate()))
                .unwrap_or_else(|| "-".into())
        };
        let (overhead, speedup) = match (base, red) {
            (Some(b), Some(r)) => (
                pct(r.stats.instructions as f64 / b.stats.instructions as f64 - 1.0),
                opt_f3(Some(b.cycles as f64 / r.cycles as f64)),
            ),
            _ => ("-".into(), "-".into()),
        };
        t.row(vec![
            name.clone(),
            demoted.to_string(),
            overhead,
            cycles_cell(base.map(|r| r.cycles)),
            cycles_cell(red.map(|r| r.cycles)),
            speedup,
            hit(base),
            hit(red),
        ]);
    }
    t.print();
    res.print_failures();
}
