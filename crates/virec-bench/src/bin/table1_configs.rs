//! Table 1: simulation parameters of every modelled processor.
//!
//! No simulation — the cells snapshot the `CoreConfig` constructors and
//! fabric defaults as field rows — but they run through the declarative
//! layer so the modelled parameters land in the machine-readable
//! `results/` JSON next to the measured figures.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_mem::FabricConfig;
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::report::Table;

/// A table row: `(row label, cell key, config constructor)`.
type Processor = (&'static str, &'static str, fn() -> CoreConfig);

/// Every modelled processor.
const PROCESSORS: &[Processor] = &[
    ("inorder (CVA6-like)", "core/inorder", CoreConfig::inorder),
    ("banked 8t", "core/banked_8t", || CoreConfig::banked(8)),
    ("virec 8t (80% ctx of 8)", "core/virec_8t_80", || {
        CoreConfig::virec(8, 52)
    }),
    ("virec 8t (100% ctx of 8)", "core/virec_8t_100", || {
        CoreConfig::virec(8, 64)
    }),
    ("nsf 8t", "core/nsf_8t", || CoreConfig::nsf(8, 52)),
    ("software 8t", "core/software_8t", || {
        CoreConfig::software(8)
    }),
    ("prefetch_full 8t", "core/prefetch_full_8t", || {
        CoreConfig::prefetch_full(8, 8)
    }),
    ("prefetch_exact 8t", "core/prefetch_exact_8t", || {
        CoreConfig::prefetch_exact(8, 8)
    }),
];

fn main() {
    let mut spec = ExperimentSpec::new("table1_configs");
    for (_, key, make) in PROCESSORS {
        spec.custom(*key, move |_| {
            let cfg = make();
            Ok(CellData::fields([
                ("engine", format!("{:?}", cfg.engine)),
                ("threads", cfg.nthreads.to_string()),
                ("regs", cfg.phys_regs.to_string()),
                ("sq", cfg.sq_entries.to_string()),
                (
                    "icache",
                    format!(
                        "{}kB/{}-way",
                        cfg.icache.size_bytes / 1024,
                        cfg.icache.assoc
                    ),
                ),
                (
                    "dcache",
                    format!(
                        "{}kB/{}-way/{}cyc",
                        cfg.dcache.size_bytes / 1024,
                        cfg.dcache.assoc,
                        cfg.dcache.hit_latency
                    ),
                ),
                ("policy", format!("{:?}", cfg.policy)),
            ]))
        });
    }
    spec.custom("memory_system", |_| {
        let f = FabricConfig::default();
        let d = f.dram;
        Ok(CellData::fields([
            ("DRAM channels", d.channels.to_string()),
            ("banks/channel", d.banks_per_channel.to_string()),
            (
                "tRP-tRCD-tCL (cycles)",
                format!("{}-{}-{}", d.t_rp, d.t_rcd, d.t_cl),
            ),
            ("burst (cycles)", d.t_burst.to_string()),
            ("row buffer (lines)", d.lines_per_row.to_string()),
            ("crossbar hop (cycles)", f.xbar_latency.to_string()),
            (
                "crossbar accepts/cycle",
                f.xbar_accepts_per_cycle.to_string(),
            ),
        ]))
    });
    let res = run_spec(&spec);

    let field = |key: &str, name: &str| {
        res.field(key, name)
            .map(str::to_string)
            .unwrap_or_else(|| "-".into())
    };

    let mut t = Table::new(
        "Table 1 — performance simulation parameters",
        &[
            "processor",
            "engine",
            "threads",
            "regs",
            "SQ",
            "icache",
            "dcache",
            "policy",
        ],
    );
    for (label, key, _) in PROCESSORS {
        t.row(vec![
            (*label).into(),
            field(key, "engine"),
            field(key, "threads"),
            field(key, "regs"),
            field(key, "sq"),
            field(key, "icache"),
            field(key, "dcache"),
            field(key, "policy"),
        ]);
    }
    t.print();

    let mut m = Table::new("Table 1 — memory system", &["parameter", "value"]);
    for name in [
        "DRAM channels",
        "banks/channel",
        "tRP-tRCD-tCL (cycles)",
        "burst (cycles)",
        "row buffer (lines)",
        "crossbar hop (cycles)",
        "crossbar accepts/cycle",
    ] {
        m.row(vec![name.into(), field("memory_system", name)]);
    }
    m.print();
    res.print_failures();
}
