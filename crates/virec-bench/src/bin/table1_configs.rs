//! Table 1: simulation parameters of every modelled processor.

use virec_core::CoreConfig;
use virec_mem::{DramConfig, FabricConfig};
use virec_sim::report::Table;

fn describe(name: &str, cfg: &CoreConfig, t: &mut Table) {
    t.row(vec![
        name.into(),
        format!("{:?}", cfg.engine),
        cfg.nthreads.to_string(),
        cfg.phys_regs.to_string(),
        cfg.sq_entries.to_string(),
        format!(
            "{}kB/{}-way",
            cfg.icache.size_bytes / 1024,
            cfg.icache.assoc
        ),
        format!(
            "{}kB/{}-way/{}cyc",
            cfg.dcache.size_bytes / 1024,
            cfg.dcache.assoc,
            cfg.dcache.hit_latency
        ),
        format!("{:?}", cfg.policy),
    ]);
}

fn main() {
    let mut t = Table::new(
        "Table 1 — performance simulation parameters",
        &[
            "processor",
            "engine",
            "threads",
            "regs",
            "SQ",
            "icache",
            "dcache",
            "policy",
        ],
    );
    describe("inorder (CVA6-like)", &CoreConfig::inorder(), &mut t);
    describe("banked 8t", &CoreConfig::banked(8), &mut t);
    describe("virec 8t (80% ctx of 8)", &CoreConfig::virec(8, 52), &mut t);
    describe(
        "virec 8t (100% ctx of 8)",
        &CoreConfig::virec(8, 64),
        &mut t,
    );
    describe("nsf 8t", &CoreConfig::nsf(8, 52), &mut t);
    describe("software 8t", &CoreConfig::software(8), &mut t);
    describe("prefetch_full 8t", &CoreConfig::prefetch_full(8, 8), &mut t);
    describe(
        "prefetch_exact 8t",
        &CoreConfig::prefetch_exact(8, 8),
        &mut t,
    );
    t.print();

    let f = FabricConfig::default();
    let d: DramConfig = f.dram;
    let mut m = Table::new("Table 1 — memory system", &["parameter", "value"]);
    m.row(vec!["DRAM channels".into(), d.channels.to_string()]);
    m.row(vec![
        "banks/channel".into(),
        d.banks_per_channel.to_string(),
    ]);
    m.row(vec![
        "tRP-tRCD-tCL (cycles)".into(),
        format!("{}-{}-{}", d.t_rp, d.t_rcd, d.t_cl),
    ]);
    m.row(vec!["burst (cycles)".into(), d.t_burst.to_string()]);
    m.row(vec![
        "row buffer (lines)".into(),
        d.lines_per_row.to_string(),
    ]);
    m.row(vec![
        "crossbar hop (cycles)".into(),
        f.xbar_latency.to_string(),
    ]);
    m.row(vec![
        "crossbar accepts/cycle".into(),
        f.xbar_accepts_per_cycle.to_string(),
    ]);
    m.print();
}
