//! Figure 11: performance scaling with increased system load.
//!
//! 1/2/4/8 ViReC processors share the crossbar and DRAM, all running
//! gather with 8 or 10 threads per core on a fixed 64-register RF (100%
//! context at 8 threads, 80% at 10). Paper shape: with 1–2 active cores,
//! 8 threads suffice to hide memory latency; as contention raises the
//! observed latency, 10 threads win for the 4- and 8-core systems —
//! the thread-scaling flexibility a statically banked core lacks.
//!
//! Each (cores, threads) point is one `System` cell of a declarative
//! sweep; a failed point degrades to a `FAILED` row.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_sim::experiment::ExperimentSpec;
use virec_sim::report::{f3, Table};
use virec_sim::SystemConfig;
use virec_workloads::kernels;

const CORES: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 2] = [8, 10];

fn main() {
    let n = problem_size();

    let mut spec = ExperimentSpec::new("fig11_system_load");
    spec.set_meta("n", n);
    for ncores in CORES {
        for threads in THREADS {
            let mut core = CoreConfig::virec(threads, 64);
            core.max_cycles = 2_000_000_000;
            let cfg = SystemConfig {
                ncores,
                core,
                fabric: Default::default(),
            };
            spec.system(
                format!("{ncores}c/{threads}t"),
                cfg,
                kernels::spatter::gather,
                n,
            );
        }
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Figure 11 — system-load scaling, gather n={n}, ViReC 64 regs"),
        &[
            "cores",
            "threads",
            "cycles",
            "core0_ipc",
            "mean_ipc",
            "observed_queue_delay",
        ],
    );
    for ncores in CORES {
        for threads in THREADS {
            match res.system(&format!("{ncores}c/{threads}t")) {
                Some(r) => t.row(vec![
                    ncores.to_string(),
                    threads.to_string(),
                    r.cycles.to_string(),
                    f3(r.per_core[0].ipc()),
                    f3(r.mean_core_ipc()),
                    f3(r.mean_queue_delay()),
                ]),
                None => t.row(vec![
                    ncores.to_string(),
                    threads.to_string(),
                    "FAILED".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    t.print();
    res.print_failures();
}
