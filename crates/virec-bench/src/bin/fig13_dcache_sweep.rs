//! Figure 13: backing-store sensitivity — dcache latency and capacity.
//!
//! One processor, eight threads, IPC geometric mean over the workload
//! suite, for ViReC (80% context) and banked. Paper shape: all approaches
//! lose performance as dcache latency grows, ViReC faster (fills ride the
//! dcache); shrinking the dcache hurts ViReC earlier than banked because
//! pinned register lines consume capacity.
//!
//! A failed run becomes a structured failure row and the sweep continues;
//! the geomeans aggregate only the workloads that completed.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::report::{f3, geomean, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::suite;

fn run_geomean(
    mut cfg_virec: CoreConfig,
    cfg_banked: CoreConfig,
    n: u64,
    point: &str,
    log: &mut SweepLog,
) -> (Option<f64>, Option<f64>) {
    let opts = RunOptions::default();
    let mut v = Vec::new();
    let mut b = Vec::new();
    for w in suite(n, layout0()) {
        // Context-size the ViReC RF per workload at 80%.
        let sized = virec_cfg(&w, cfg_virec.nthreads, 0.8, PolicyKind::Lrc);
        cfg_virec.phys_regs = sized.phys_regs;
        if let Some(r) = log
            .cell(&format!("{point}/{}/virec80", w.name), cfg_virec, &w, &opts)
            .done()
        {
            v.push(r.ipc());
        }
        if let Some(r) = log
            .cell(&format!("{point}/{}/banked", w.name), cfg_banked, &w, &opts)
            .done()
        {
            b.push(r.ipc());
        }
    }
    let gm = |xs: &[f64]| {
        if xs.is_empty() {
            None
        } else {
            Some(geomean(xs))
        }
    };
    (gm(&v), gm(&b))
}

fn opt_f3(x: Option<f64>) -> String {
    x.map(f3).unwrap_or_else(|| "-".into())
}

fn main() {
    let n = problem_size().min(4096);
    let threads = 8;
    let mut log = SweepLog::new();

    let mut lat = Table::new(
        &format!("Figure 13a — dcache latency sweep, 8 threads, n={n}"),
        &[
            "dcache_latency",
            "virec80_ipc",
            "banked_ipc",
            "virec/banked",
        ],
    );
    for latency in [1u32, 2, 4, 8, 16] {
        let mut cv = CoreConfig::virec(threads, 64);
        cv.dcache.hit_latency = latency;
        let mut cb = CoreConfig::banked(threads);
        cb.dcache.hit_latency = latency;
        let (v, b) = run_geomean(cv, cb, n, &format!("lat{latency}"), &mut log);
        let ratio = match (v, b) {
            (Some(v), Some(b)) => f3(v / b),
            _ => "-".into(),
        };
        lat.row(vec![latency.to_string(), opt_f3(v), opt_f3(b), ratio]);
    }
    lat.print();

    let mut cap = Table::new(
        &format!("Figure 13b — dcache capacity sweep, 8 threads, n={n}"),
        &["dcache_kB", "virec80_ipc", "banked_ipc", "virec/banked"],
    );
    for kb in [2usize, 4, 8, 16, 32] {
        let mut cv = CoreConfig::virec(threads, 64);
        cv.dcache.size_bytes = kb * 1024;
        let mut cb = CoreConfig::banked(threads);
        cb.dcache.size_bytes = kb * 1024;
        let (v, b) = run_geomean(cv, cb, n, &format!("cap{kb}k"), &mut log);
        let ratio = match (v, b) {
            (Some(v), Some(b)) => f3(v / b),
            _ => "-".into(),
        };
        cap.row(vec![kb.to_string(), opt_f3(v), opt_f3(b), ratio]);
    }
    cap.print();
    log.print();
}
