//! Figure 13: backing-store sensitivity — dcache latency and capacity.
//!
//! One processor, eight threads, IPC geometric mean over the workload
//! suite, for ViReC (80% context) and banked. Paper shape: all approaches
//! lose performance as dcache latency grows, ViReC faster (fills ride the
//! dcache); shrinking the dcache hurts ViReC earlier than banked because
//! pinned register lines consume capacity.
//!
//! Both sweeps (latency points × suite × engine, capacity points × suite
//! × engine) run as one declarative grid. A failed run becomes a
//! structured failure row and the sweep continues; the geomeans aggregate
//! only the workloads that completed.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::{f3, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::SUITE;

const THREADS: usize = 8;
const LATENCIES: [u32; 5] = [1, 2, 4, 8, 16];
const CAPACITIES_KB: [usize; 5] = [2, 4, 8, 16, 32];

/// Declares the suite at one sweep point: per-workload ViReC (80%, RF
/// sized per workload) and banked cells, both with `tweak` applied to the
/// dcache config.
fn declare_point(spec: &mut ExperimentSpec, n: u64, point: &str, tweak: impl Fn(&mut CoreConfig)) {
    let opts = RunOptions::default();
    for (name, ctor) in SUITE {
        let w = ctor(n, layout0());
        let build = builder(*ctor, n, layout0());
        let mut cv = virec_cfg(&w, THREADS, 0.8, PolicyKind::Lrc);
        tweak(&mut cv);
        spec.single(format!("{point}/{name}/virec80"), build.clone(), cv, &opts);
        let mut cb = CoreConfig::banked(THREADS);
        tweak(&mut cb);
        spec.single(format!("{point}/{name}/banked"), build, cb, &opts);
    }
}

/// Geomean IPC over the suite for one (point, engine), completed runs only.
fn point_geomean(res: &virec_sim::ExperimentResult, point: &str, engine: &str) -> Option<f64> {
    let mut rel = RelTracker::new();
    for (name, _) in SUITE {
        if let Some(r) = res.run(&format!("{point}/{name}/{engine}")) {
            rel.push("ipc", r.ipc());
        }
    }
    rel.geomean("ipc")
}

fn main() {
    let n = problem_size().min(4096);

    let mut spec = ExperimentSpec::new("fig13_dcache_sweep");
    spec.set_meta("n", n);
    for latency in LATENCIES {
        declare_point(&mut spec, n, &format!("lat{latency}"), |c| {
            c.dcache.hit_latency = latency;
        });
    }
    for kb in CAPACITIES_KB {
        declare_point(&mut spec, n, &format!("cap{kb}k"), |c| {
            c.dcache.size_bytes = kb * 1024;
        });
    }
    let res = run_spec(&spec);

    let point_row = |t: &mut Table, label: String, point: &str| {
        let v = point_geomean(&res, point, "virec80");
        let b = point_geomean(&res, point, "banked");
        let ratio = match (v, b) {
            (Some(v), Some(b)) => f3(v / b),
            _ => "-".into(),
        };
        t.row(vec![label, opt_f3(v), opt_f3(b), ratio]);
    };

    let mut lat = Table::new(
        &format!("Figure 13a — dcache latency sweep, 8 threads, n={n}"),
        &[
            "dcache_latency",
            "virec80_ipc",
            "banked_ipc",
            "virec/banked",
        ],
    );
    for latency in LATENCIES {
        point_row(&mut lat, latency.to_string(), &format!("lat{latency}"));
    }
    lat.print();

    let mut cap = Table::new(
        &format!("Figure 13b — dcache capacity sweep, 8 threads, n={n}"),
        &["dcache_kB", "virec80_ipc", "banked_ipc", "virec/banked"],
    );
    for kb in CAPACITIES_KB {
        point_row(&mut cap, kb.to_string(), &format!("cap{kb}k"));
    }
    cap.print();
    res.print_failures();
}
