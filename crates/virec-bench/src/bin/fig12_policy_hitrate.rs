//! Figure 12: register replacement-policy hit rates.
//!
//! One ViReC processor, eight threads, 80% and 40% context, comparing LRC
//! against MRT-PLRU, PLRU, and the perfect variants (LRU, MRT-LRU) across
//! the workload suite. Paper shape targets: scheduling-aware policies beat
//! scheduling-oblivious ones decisively; LRC tracks MRT-LRU (perfect
//! commit knowledge) within a fraction of a percent and beats MRT-PLRU;
//! mean hit rates around 94%/83% at 80%/40% context; LRC speeds up over
//! PLRU substantially more at 80% than at 40% context.
//!
//! A failed policy run becomes a structured failure row and the sweep
//! continues; the mean rows aggregate only the runs that completed, and
//! speedups are only reported where the PLRU normalizer completed.

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::report::{f3, geomean, pct, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::suite;

const POLICIES: &[PolicyKind] = &[
    PolicyKind::Lrc,
    PolicyKind::MrtLru,
    PolicyKind::MrtPlru,
    PolicyKind::Plru,
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Random,
    PolicyKind::Srrip,
];

fn main() {
    let n = problem_size();
    let threads = 8;
    let opts = RunOptions::default();
    let mut log = SweepLog::new();
    for frac in [0.8f64, 0.4] {
        let mut t = Table::new(
            &format!(
                "Figure 12 — policy hit rate, 8 threads, {:.0}% context, n={n}",
                frac * 100.0
            ),
            &[
                "workload", "LRC", "MRT-LRU", "MRT-PLRU", "PLRU", "LRU", "FIFO", "Random", "SRRIP",
            ],
        );
        let mut hit: std::collections::HashMap<PolicyKind, Vec<f64>> = Default::default();
        let mut speed: std::collections::HashMap<PolicyKind, Vec<f64>> = Default::default();
        for w in suite(n, layout0()) {
            let mut cells = vec![w.name.to_string()];
            let mut results = std::collections::HashMap::new();
            for &p in POLICIES {
                let cfg = virec_cfg(&w, threads, frac, p);
                let label = format!("{}/{:.0}%/{}", w.name, frac * 100.0, p.label());
                results.insert(p, log.cell(&label, cfg, &w, &opts));
            }
            // Speedups are normalized to PLRU, so they are only recorded
            // for workloads where the PLRU run completed.
            let plru_cycles = results[&PolicyKind::Plru].cycles().map(|c| c as f64);
            for &p in POLICIES {
                match results[&p].done() {
                    Some(r) => {
                        cells.push(pct(r.stats.rf_hit_rate()));
                        hit.entry(p).or_default().push(r.stats.rf_hit_rate());
                        if let Some(plru_cycles) = plru_cycles {
                            speed
                                .entry(p)
                                .or_default()
                                .push(plru_cycles / r.cycles as f64);
                        }
                    }
                    None => cells.push("FAILED".into()),
                }
            }
            t.row(cells);
        }
        t.print();

        let mut m = Table::new(
            &format!(
                "Figure 12 — means at {:.0}% context (completed runs only)",
                frac * 100.0
            ),
            &["policy", "mean_hit_rate", "geomean_speedup_vs_PLRU"],
        );
        for &p in POLICIES {
            let hits = hit.get(&p).map(Vec::as_slice).unwrap_or(&[]);
            let mean_hit = if hits.is_empty() {
                "-".into()
            } else {
                pct(hits.iter().sum::<f64>() / hits.len() as f64)
            };
            let speedup = match speed.get(&p) {
                Some(v) if !v.is_empty() => f3(geomean(v)),
                _ => "-".into(),
            };
            m.row(vec![p.label().into(), mean_hit, speedup]);
        }
        m.print();
    }
    log.print();
}
