//! Figure 12: register replacement-policy hit rates.
//!
//! One ViReC processor, eight threads, 80% and 40% context, comparing LRC
//! against MRT-PLRU, PLRU, and the perfect variants (LRU, MRT-LRU) across
//! the workload suite. Paper shape targets: scheduling-aware policies beat
//! scheduling-oblivious ones decisively; LRC tracks MRT-LRU (perfect
//! commit knowledge) within a fraction of a percent and beats MRT-PLRU;
//! mean hit rates around 94%/83% at 80%/40% context; LRC speeds up over
//! PLRU substantially more at 80% than at 40% context.
//!
//! The full fractions × workloads × policies grid is one declarative
//! sweep. A failed policy run becomes a structured failure row and the
//! sweep continues; the mean rows aggregate only the runs that completed,
//! and speedups are only reported where the PLRU normalizer completed.

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::{pct, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::SUITE;

const POLICIES: &[PolicyKind] = &[
    PolicyKind::Lrc,
    PolicyKind::MrtLru,
    PolicyKind::MrtPlru,
    PolicyKind::Plru,
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Random,
    PolicyKind::Srrip,
];

const FRACS: [f64; 2] = [0.8, 0.4];

fn key(name: &str, frac: f64, policy: PolicyKind) -> String {
    format!("{}/{:.0}%/{}", name, frac * 100.0, policy.label())
}

fn main() {
    let n = problem_size();
    let threads = 8;
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("fig12_policy_hitrate");
    spec.set_meta("n", n);
    for frac in FRACS {
        for (name, ctor) in SUITE {
            let w = ctor(n, layout0());
            let build = builder(*ctor, n, layout0());
            for &p in POLICIES {
                spec.single(
                    key(name, frac, p),
                    build.clone(),
                    virec_cfg(&w, threads, frac, p),
                    &opts,
                );
            }
        }
    }
    let res = run_spec(&spec);

    for frac in FRACS {
        let mut t = Table::new(
            &format!(
                "Figure 12 — policy hit rate, 8 threads, {:.0}% context, n={n}",
                frac * 100.0
            ),
            &[
                "workload", "LRC", "MRT-LRU", "MRT-PLRU", "PLRU", "LRU", "FIFO", "Random", "SRRIP",
            ],
        );
        let mut hit = RelTracker::new();
        let mut speed = RelTracker::new();
        for (name, _) in SUITE {
            let mut cells = vec![name.to_string()];
            // Speedups are normalized to PLRU, so they are only recorded
            // for workloads where the PLRU run completed.
            let plru_cycles = res.cycles(&key(name, frac, PolicyKind::Plru));
            for &p in POLICIES {
                match res.run(&key(name, frac, p)) {
                    Some(r) => {
                        cells.push(pct(r.stats.rf_hit_rate()));
                        hit.push(p.label(), r.stats.rf_hit_rate());
                        if let Some(plru) = plru_cycles {
                            speed.push(p.label(), plru as f64 / r.cycles as f64);
                        }
                    }
                    None => cells.push("FAILED".into()),
                }
            }
            t.row(cells);
        }
        t.print();

        let mut m = Table::new(
            &format!(
                "Figure 12 — means at {:.0}% context (completed runs only)",
                frac * 100.0
            ),
            &["policy", "mean_hit_rate", "geomean_speedup_vs_PLRU"],
        );
        for &p in POLICIES {
            let mean_hit = hit.mean(p.label()).map(pct).unwrap_or_else(|| "-".into());
            m.row(vec![
                p.label().into(),
                mean_hit,
                speed.geomean_cell(p.label()),
            ]);
        }
        m.print();
    }
    res.print_failures();
}
