//! Figure 12: register replacement-policy hit rates.
//!
//! One ViReC processor, eight threads, 80% and 40% context, comparing LRC
//! against MRT-PLRU, PLRU, and the perfect variants (LRU, MRT-LRU) across
//! the workload suite. Paper shape targets: scheduling-aware policies beat
//! scheduling-oblivious ones decisively; LRC tracks MRT-LRU (perfect
//! commit knowledge) within a fraction of a percent and beats MRT-PLRU;
//! mean hit rates around 94%/83% at 80%/40% context; LRC speeds up over
//! PLRU substantially more at 80% than at 40% context.

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::report::{f3, geomean, pct, Table};
use virec_workloads::suite;

const POLICIES: &[PolicyKind] = &[
    PolicyKind::Lrc,
    PolicyKind::MrtLru,
    PolicyKind::MrtPlru,
    PolicyKind::Plru,
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Random,
    PolicyKind::Srrip,
];

fn main() {
    let n = problem_size();
    let threads = 8;
    for frac in [0.8f64, 0.4] {
        let mut t = Table::new(
            &format!(
                "Figure 12 — policy hit rate, 8 threads, {:.0}% context, n={n}",
                frac * 100.0
            ),
            &[
                "workload", "LRC", "MRT-LRU", "MRT-PLRU", "PLRU", "LRU", "FIFO", "Random", "SRRIP",
            ],
        );
        let mut hit: std::collections::HashMap<PolicyKind, Vec<f64>> = Default::default();
        let mut speed: std::collections::HashMap<PolicyKind, Vec<f64>> = Default::default();
        for w in suite(n, layout0()) {
            let mut cells = vec![w.name.to_string()];
            // Run PLRU first to normalize speedups.
            let plru_cfg = virec_cfg(&w, threads, frac, PolicyKind::Plru);
            let plru = run(plru_cfg, &w);
            let plru_cycles = plru.cycles as f64;
            let mut results = std::collections::HashMap::new();
            results.insert(PolicyKind::Plru, plru);
            for &p in POLICIES {
                if p == PolicyKind::Plru {
                    continue;
                }
                let cfg = virec_cfg(&w, threads, frac, p);
                results.insert(p, run(cfg, &w));
            }
            for &p in POLICIES {
                let r = &results[&p];
                cells.push(pct(r.stats.rf_hit_rate()));
                hit.entry(p).or_default().push(r.stats.rf_hit_rate());
                speed
                    .entry(p)
                    .or_default()
                    .push(plru_cycles / r.cycles as f64);
            }
            t.row(cells);
        }
        t.print();

        let mut m = Table::new(
            &format!("Figure 12 — means at {:.0}% context", frac * 100.0),
            &["policy", "mean_hit_rate", "geomean_speedup_vs_PLRU"],
        );
        for &p in POLICIES {
            let hits = &hit[&p];
            let mean_hit = hits.iter().sum::<f64>() / hits.len() as f64;
            m.row(vec![
                p.label().into(),
                pct(mean_hit),
                f3(geomean(&speed[&p])),
            ]);
        }
        m.print();
    }
}
