//! Figure 1: performance-area trade-off for the gather kernel.
//!
//! Points: a single in-order core, the OoO host core, banked multithreaded
//! cores with 4/8 banks (256/512 registers counting the FP half), and ViReC
//! at 40–100% of the active context for 4 and 8 threads. Performance is
//! normalized to the single in-order core; area comes from the analytic
//! 45 nm model.
//!
//! Paper shape targets: OoO ≈ 5.3x InO performance at ≈19x area; banked
//! and ViReC dominate OoO in performance/area; ViReC-100% matches banked
//! performance at ~40% less area; ViReC degrades gracefully as the stored
//! context shrinks.
//!
//! All points — including the trace-model OoO host, declared as a custom
//! cell — run as one declarative grid; only the normalizing in-order run
//! is fatal to lose.

use virec_area::AreaModel;
use virec_bench::harness::*;
use virec_core::ooo::{run_ooo, OooConfig};
use virec_core::{CoreConfig, PolicyKind};
use virec_isa::FlatMem;
use virec_sim::experiment::{builder, CellData, ExperimentSpec};
use virec_sim::report::{f3, Table};
use virec_sim::runner::RunOptions;
use virec_workloads::kernels;

fn main() {
    // Figure 1 needs a footprint well past the OoO core's 1 MiB L2, or the
    // host-processor point is unrealistically fast.
    let n = std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(262_144);
    let w = kernels::spatter::gather(n, layout0());
    let build = builder(kernels::spatter::gather, n, layout0());
    let opts = RunOptions::default();
    let area = AreaModel::default();

    let mut spec = ExperimentSpec::new("fig01_perf_area");
    spec.set_meta("n", n);
    // Single in-order core: the normalization baseline.
    spec.single("inorder", build.clone(), CoreConfig::banked(1), &opts);
    // OoO host core (trace model, clock-normalized to the 1 GHz domain).
    let ooo_build = build.clone();
    spec.custom("ooo", move |_| {
        let w = ooo_build();
        let mut mem = FlatMem::new(0, virec_workloads::layout::mem_size(1));
        w.init_mem(&mut mem);
        let init = w.thread_ctx(0, 1);
        let r = run_ooo(
            &OooConfig::default(),
            w.program(),
            &mut mem,
            &init,
            200_000_000,
        );
        Ok(CellData::metrics([(
            "cycles",
            r.nmp_equivalent_cycles as f64,
        )]))
    });
    for threads in [4usize, 8] {
        spec.single(
            format!("banked_{threads}t"),
            build.clone(),
            CoreConfig::banked(threads),
            &opts,
        );
        for (label, frac) in CTX_FRACTIONS {
            spec.single(
                format!("virec_{threads}t_{label}"),
                build.clone(),
                virec_cfg(&w, threads, *frac, PolicyKind::Lrc),
                &opts,
            );
        }
    }
    let res = run_spec(&spec);

    // Everything is relative to the in-order point, so its failure is fatal.
    let Some(ino_cycles) = res.cycles("inorder").map(|c| c as f64) else {
        res.print_failures();
        eprintln!("figure 1: the normalizing in-order run failed; aborting");
        std::process::exit(1);
    };

    let mut t = Table::new(
        &format!("Figure 1 — performance-area tradeoff, gather n={n}"),
        &["config", "area_mm2", "cycles", "perf_norm", "perf_per_mm2"],
    );
    let mut push = |key: &str, mm2: f64| match res.cycles(key) {
        Some(cycles) => {
            let perf = ino_cycles / cycles as f64;
            t.row(vec![
                key.to_string(),
                f3(mm2),
                cycles.to_string(),
                f3(perf),
                f3(perf / mm2),
            ]);
        }
        None => t.row(vec![
            key.to_string(),
            f3(mm2),
            "FAILED".into(),
            "-".into(),
            "-".into(),
        ]),
    };
    push("inorder", area.inorder_core());
    push("ooo", area.ooo_core());
    for threads in [4usize, 8] {
        push(&format!("banked_{threads}t"), area.banked_core(threads));
        for (label, frac) in CTX_FRACTIONS {
            let cfg = virec_cfg(&w, threads, *frac, PolicyKind::Lrc);
            push(
                &format!("virec_{threads}t_{label}"),
                area.virec_core(cfg.phys_regs),
            );
        }
    }
    t.print();
    res.print_failures();
}
