//! Figure 1: performance-area trade-off for the gather kernel.
//!
//! Points: a single in-order core, the OoO host core, banked multithreaded
//! cores with 4/8 banks (256/512 registers counting the FP half), and ViReC
//! at 40–100% of the active context for 4 and 8 threads. Performance is
//! normalized to the single in-order core; area comes from the analytic
//! 45 nm model.
//!
//! Paper shape targets: OoO ≈ 5.3x InO performance at ≈19x area; banked
//! and ViReC dominate OoO in performance/area; ViReC-100% matches banked
//! performance at ~40% less area; ViReC degrades gracefully as the stored
//! context shrinks.

use virec_area::AreaModel;
use virec_bench::harness::*;
use virec_core::ooo::{run_ooo, OooConfig};
use virec_core::{CoreConfig, PolicyKind};
use virec_isa::FlatMem;
use virec_sim::report::{f3, Table};
use virec_workloads::kernels;

fn main() {
    // Figure 1 needs a footprint well past the OoO core's 1 MiB L2, or the
    // host-processor point is unrealistically fast.
    let n = std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(262_144);
    let w = kernels::spatter::gather(n, layout0());
    let area = AreaModel::default();
    let mut t = Table::new(
        &format!("Figure 1 — performance-area tradeoff, gather n={n}"),
        &["config", "area_mm2", "cycles", "perf_norm", "perf_per_mm2"],
    );

    // Single in-order core: the normalization baseline.
    let ino = run(CoreConfig::banked(1), &w);
    let ino_cycles = ino.cycles as f64;
    let mut push = |name: String, mm2: f64, cycles: f64| {
        let perf = ino_cycles / cycles;
        t.row(vec![
            name,
            f3(mm2),
            format!("{}", cycles as u64),
            f3(perf),
            f3(perf / mm2),
        ]);
    };
    push("inorder".into(), area.inorder_core(), ino_cycles);

    // OoO host core (trace model, clock-normalized to the 1 GHz domain).
    {
        let mut mem = FlatMem::new(0, virec_workloads::layout::mem_size(1));
        w.init_mem(&mut mem);
        let init = w.thread_ctx(0, 1);
        let r = run_ooo(
            &OooConfig::default(),
            w.program(),
            &mut mem,
            &init,
            200_000_000,
        );
        push(
            "ooo".into(),
            area.ooo_core(),
            r.nmp_equivalent_cycles as f64,
        );
    }

    for threads in [4usize, 8] {
        let b = run(CoreConfig::banked(threads), &w);
        push(
            format!("banked_{threads}t"),
            area.banked_core(threads),
            b.cycles as f64,
        );
        for (label, frac) in CTX_FRACTIONS {
            let cfg = virec_cfg(&w, threads, *frac, PolicyKind::Lrc);
            let r = run(cfg, &w);
            push(
                format!("virec_{threads}t_{label}"),
                area.virec_core(cfg.phys_regs),
                r.cycles as f64,
            );
        }
    }
    t.print();
}
