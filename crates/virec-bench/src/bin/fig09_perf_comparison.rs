//! Figure 9: performance of ViReC vs banked vs NSF vs RF prefetching.
//!
//! For every workload and 4/6/8 threads, performance is shown relative to
//! the similarly-threaded banked core (= 1.0). ViReC is swept over 40–80%
//! of the active context; prefetching is evaluated in full-context and
//! oracle-exact variants; the NSF baseline \[41\] is ViReC with PLRU and no
//! system optimizations at the 80% RF size.
//!
//! Paper shape targets: ViReC-80% within ~4–10% of banked (drop grows with
//! threads); ViReC-40% within ~11–22%; full-context prefetch almost always
//! worst; exact prefetch beats ViReC-40% but loses to ViReC-60/80%; ViReC
//! clearly beats the NSF.
//!
//! Failed configurations become structured failure rows (error kind plus
//! diagnostics) and the sweep continues; the geomean rows only aggregate
//! the configurations that completed.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::report::{f3, geomean, Table};
use virec_sim::runner::{try_run_prefetch_exact, RunOptions};
use virec_workloads::suite;

fn main() {
    let n = problem_size();
    let threads_list = [4usize, 6, 8];
    let opts = RunOptions::default();
    let mut log = SweepLog::new();
    let mut t = Table::new(
        &format!("Figure 9 — relative performance vs banked, n={n}"),
        &[
            "workload",
            "threads",
            "banked_cyc",
            "virec40",
            "virec60",
            "virec80",
            "nsf80",
            "pf_full",
            "pf_exact",
        ],
    );

    // Collect relative performances for the mean rows.
    let mut rel: std::collections::HashMap<(&str, usize), Vec<f64>> = Default::default();

    for w in suite(n, layout0()) {
        for &threads in &threads_list {
            let banked = log.cell(
                &format!("{}/{threads}t/banked", w.name),
                CoreConfig::banked(threads),
                &w,
                &opts,
            );
            let mut cells = vec![w.name.to_string(), threads.to_string()];
            let base = match banked.cycles() {
                Some(c) => {
                    cells.push(c.to_string());
                    Some(c as f64)
                }
                None => {
                    cells.push("FAILED".into());
                    None
                }
            };
            // Records the relative performance of a variant run, or a
            // failure marker when either side of the ratio is missing.
            let mut push_rel =
                |cells: &mut Vec<String>, key: &'static str, cycles: Option<u64>| match (
                    base, cycles,
                ) {
                    (Some(base), Some(c)) => {
                        let rp = base / c as f64;
                        rel.entry((key, threads)).or_default().push(rp);
                        cells.push(f3(rp));
                    }
                    _ => cells.push("-".into()),
                };
            for (key, frac) in [("virec40", 0.4), ("virec60", 0.6), ("virec80", 0.8)] {
                let cfg = virec_cfg(&w, threads, frac, PolicyKind::Lrc);
                let r = log.cell(&format!("{}/{threads}t/{key}", w.name), cfg, &w, &opts);
                push_rel(&mut cells, key, r.cycles());
            }
            {
                let cfg80 = virec_cfg(&w, threads, 0.8, PolicyKind::Lrc);
                let nsf = log.cell(
                    &format!("{}/{threads}t/nsf80", w.name),
                    CoreConfig::nsf(threads, cfg80.phys_regs),
                    &w,
                    &opts,
                );
                push_rel(&mut cells, "nsf80", nsf.cycles());
            }
            {
                let pf = log.cell(
                    &format!("{}/{threads}t/pf_full", w.name),
                    CoreConfig::prefetch_full(threads, w.active_context_size()),
                    &w,
                    &opts,
                );
                push_rel(&mut cells, "pf_full", pf.cycles());
            }
            {
                let pe = log.cell_from(
                    &format!("{}/{threads}t/pf_exact", w.name),
                    try_run_prefetch_exact(
                        threads,
                        w.active_context_size(),
                        &w,
                        Default::default(),
                    ),
                );
                push_rel(&mut cells, "pf_exact", pe.map(|r| r.cycles));
            }
            t.row(cells);
        }
    }
    t.print();

    let mut means = Table::new(
        "Figure 9 — geomean relative performance (banked = 1.0, completed runs only)",
        &["config", "4t", "6t", "8t"],
    );
    for key in [
        "virec40", "virec60", "virec80", "nsf80", "pf_full", "pf_exact",
    ] {
        let mut row = vec![key.to_string()];
        for &threads in &threads_list {
            match rel.get(&(key, threads)) {
                Some(v) if !v.is_empty() => row.push(f3(geomean(v))),
                _ => row.push("-".into()),
            }
        }
        means.row(row);
    }
    means.print();
    log.print();
}
