//! Figure 9: performance of ViReC vs banked vs NSF vs RF prefetching.
//!
//! For every workload and 4/6/8 threads, performance is shown relative to
//! the similarly-threaded banked core (= 1.0). ViReC is swept over 40–80%
//! of the active context; prefetching is evaluated in full-context and
//! oracle-exact variants; the NSF baseline \[41\] is ViReC with PLRU and no
//! system optimizations at the 80% RF size.
//!
//! Paper shape targets: ViReC-80% within ~4–10% of banked (drop grows with
//! threads); ViReC-40% within ~11–22%; full-context prefetch almost always
//! worst; exact prefetch beats ViReC-40% but loses to ViReC-60/80%; ViReC
//! clearly beats the NSF.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::report::{f3, geomean, Table};
use virec_sim::runner::run_prefetch_exact;
use virec_workloads::suite;

fn main() {
    let n = problem_size();
    let threads_list = [4usize, 6, 8];
    let mut t = Table::new(
        &format!("Figure 9 — relative performance vs banked, n={n}"),
        &[
            "workload",
            "threads",
            "banked_cyc",
            "virec40",
            "virec60",
            "virec80",
            "nsf80",
            "pf_full",
            "pf_exact",
        ],
    );

    // Collect relative performances for the mean rows.
    let mut rel: std::collections::HashMap<(&str, usize), Vec<f64>> = Default::default();

    for w in suite(n, layout0()) {
        for &threads in &threads_list {
            let banked = run(CoreConfig::banked(threads), &w);
            let base = banked.cycles as f64;
            let mut cells = vec![
                w.name.to_string(),
                threads.to_string(),
                banked.cycles.to_string(),
            ];
            for (key, frac) in [("virec40", 0.4), ("virec60", 0.6), ("virec80", 0.8)] {
                let cfg = virec_cfg(&w, threads, frac, PolicyKind::Lrc);
                let r = run(cfg, &w);
                let rp = base / r.cycles as f64;
                rel.entry((key, threads)).or_default().push(rp);
                cells.push(f3(rp));
            }
            {
                let cfg80 = virec_cfg(&w, threads, 0.8, PolicyKind::Lrc);
                let nsf = run(CoreConfig::nsf(threads, cfg80.phys_regs), &w);
                let rp = base / nsf.cycles as f64;
                rel.entry(("nsf80", threads)).or_default().push(rp);
                cells.push(f3(rp));
            }
            {
                let pf = run(
                    CoreConfig::prefetch_full(threads, w.active_context_size()),
                    &w,
                );
                let rp = base / pf.cycles as f64;
                rel.entry(("pf_full", threads)).or_default().push(rp);
                cells.push(f3(rp));
            }
            {
                let pe =
                    run_prefetch_exact(threads, w.active_context_size(), &w, Default::default());
                let rp = base / pe.cycles as f64;
                rel.entry(("pf_exact", threads)).or_default().push(rp);
                cells.push(f3(rp));
            }
            t.row(cells);
        }
    }
    t.print();

    let mut means = Table::new(
        "Figure 9 — geomean relative performance (banked = 1.0)",
        &["config", "4t", "6t", "8t"],
    );
    for key in [
        "virec40", "virec60", "virec80", "nsf80", "pf_full", "pf_exact",
    ] {
        let mut row = vec![key.to_string()];
        for &threads in &threads_list {
            row.push(f3(geomean(&rel[&(key, threads)])));
        }
        means.row(row);
    }
    means.print();
}
