//! Figure 9: performance of ViReC vs banked vs NSF vs RF prefetching.
//!
//! For every workload and 4/6/8 threads, performance is shown relative to
//! the similarly-threaded banked core (= 1.0). ViReC is swept over 40–80%
//! of the active context; prefetching is evaluated in full-context and
//! oracle-exact variants; the NSF baseline \[41\] is ViReC with PLRU and no
//! system optimizations at the 80% RF size.
//!
//! Paper shape targets: ViReC-80% within ~4–10% of banked (drop grows with
//! threads); ViReC-40% within ~11–22%; full-context prefetch almost always
//! worst; exact prefetch beats ViReC-40% but loses to ViReC-60/80%; ViReC
//! clearly beats the NSF.
//!
//! The whole grid is declared as one [`ExperimentSpec`] and executed on the
//! worker pool (`VIREC_JOBS`); failed configurations become structured
//! failure rows and the geomean rows only aggregate completed runs.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::Table;
use virec_sim::runner::RunOptions;
use virec_workloads::SUITE;

/// Non-baseline configurations, in column order.
const CONFIGS: &[&str] = &[
    "virec40", "virec60", "virec80", "nsf80", "pf_full", "pf_exact",
];

const THREADS: [usize; 3] = [4, 6, 8];

fn main() {
    let n = problem_size();
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("fig09_perf_comparison");
    spec.set_meta("n", n);
    for (name, ctor) in SUITE {
        let w = ctor(n, layout0());
        let build = builder(*ctor, n, layout0());
        for &threads in &THREADS {
            spec.single(
                format!("{name}/{threads}t/banked"),
                build.clone(),
                CoreConfig::banked(threads),
                &opts,
            );
            for (key, frac) in [("virec40", 0.4), ("virec60", 0.6), ("virec80", 0.8)] {
                spec.single(
                    format!("{name}/{threads}t/{key}"),
                    build.clone(),
                    virec_cfg(&w, threads, frac, PolicyKind::Lrc),
                    &opts,
                );
            }
            let cfg80 = virec_cfg(&w, threads, 0.8, PolicyKind::Lrc);
            spec.single(
                format!("{name}/{threads}t/nsf80"),
                build.clone(),
                CoreConfig::nsf(threads, cfg80.phys_regs),
                &opts,
            );
            spec.single(
                format!("{name}/{threads}t/pf_full"),
                build.clone(),
                CoreConfig::prefetch_full(threads, w.active_context_size()),
                &opts,
            );
            spec.prefetch_exact(
                format!("{name}/{threads}t/pf_exact"),
                build.clone(),
                threads,
                w.active_context_size(),
                Default::default(),
            );
        }
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Figure 9 — relative performance vs banked, n={n}"),
        &[
            "workload",
            "threads",
            "banked_cyc",
            "virec40",
            "virec60",
            "virec80",
            "nsf80",
            "pf_full",
            "pf_exact",
        ],
    );
    let mut rel = RelTracker::new();
    for (name, _) in SUITE {
        for &threads in &THREADS {
            let base = res.cycles(&format!("{name}/{threads}t/banked"));
            let mut cells = vec![name.to_string(), threads.to_string(), cycles_cell(base)];
            for key in CONFIGS {
                let cycles = res.cycles(&format!("{name}/{threads}t/{key}"));
                cells.push(rel.rel_cell(&format!("{key}/{threads}t"), base, cycles));
            }
            t.row(cells);
        }
    }
    t.print();

    let mut means = Table::new(
        "Figure 9 — geomean relative performance (banked = 1.0, completed runs only)",
        &["config", "4t", "6t", "8t"],
    );
    for key in CONFIGS {
        let mut row = vec![key.to_string()];
        for &threads in &THREADS {
            row.push(rel.geomean_cell(&format!("{key}/{threads}t")));
        }
        means.row(row);
    }
    means.print();
    res.print_failures();
}
