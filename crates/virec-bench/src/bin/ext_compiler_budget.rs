//! §4.2 via the mini-compiler: sweep the register-allocation budget for a
//! compiled gather kernel and measure the static/dynamic spill overhead
//! against the active-context shrinkage — the trade-off the paper's
//! compiler register reduction navigates.
//!
//! Each budget point is measured under *both* allocators — Chaitin-Briggs
//! graph coloring (the default) and the linear-scan baseline — so the
//! table doubles as the allocator comparison: at tight budgets graph
//! coloring's loop-depth-weighted spill costs keep hot temps in registers
//! and emit measurably fewer spill loads/stores, which shows up directly
//! in cycles.
//!
//! Each point compiles and drives its own core inside a custom cell; a
//! point that exhausts the 500M-cycle cap becomes a structured
//! `cycle_budget` failure row instead of aborting the sweep.

use virec_bench::harness::*;
use virec_cc::{compile_with, AllocStrategy};
use virec_core::{Core, CoreConfig, RegRegion};
use virec_isa::analysis::RegisterUsage;
use virec_isa::{FlatMem, Reg};
use virec_mem::{Fabric, FabricConfig};
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::report::Table;
use virec_sim::{RunDiagnostics, SimError};
use virec_workloads::gather_cc_ir;

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const FRAME_BASE: u64 = 0x8000;
const CODE_BASE: u64 = 0x4000_0000;
const CYCLE_CAP: u64 = 500_000_000;

const BUDGETS: [usize; 7] = [2, 3, 4, 6, 8, 10, 14];
const STRATEGIES: [AllocStrategy; 2] = [AllocStrategy::GraphColor, AllocStrategy::LinearScan];

/// Compiles gather at `budget` registers with `strategy` and runs it to
/// completion on a ViReC core sized at 100% of the compiled active context.
fn run_budget(
    budget: usize,
    strategy: AllocStrategy,
    n: u64,
    nthreads: usize,
) -> Result<CellData, SimError> {
    let c = compile_with(&gather_cc_ir(), budget, strategy).expect("compiles");
    let active = RegisterUsage::analyze(&c.program).active_context_size();
    // Size the ViReC RF at 100% of the *compiled* active context.
    let phys = (active * nthreads).max(12);

    let mut mem = FlatMem::new(0, 0x200_000);
    for i in 0..n {
        mem.write_u64(DATA_BASE + i * 8, i * 17);
        mem.write_u64(DATA_BASE + n * 8 + i * 8, (i * 13) % n);
    }
    let region = RegRegion::new(REGION_BASE, nthreads);
    for th in 0..nthreads {
        let args = [DATA_BASE, DATA_BASE + n * 8, n, th as u64, nthreads as u64];
        for (i, &v) in args.iter().enumerate() {
            mem.write_u64(region.reg_addr(th, Reg::new(i as u8)), v);
        }
        mem.write_u64(
            region.reg_addr(th, c.frame_reg),
            FRAME_BASE + th as u64 * 0x100,
        );
    }
    let cfg = CoreConfig::virec(nthreads, phys);
    let mut core = Core::new(cfg, c.program.clone(), region, CODE_BASE, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0u64;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        if now >= CYCLE_CAP {
            return Err(SimError::CycleBudgetExceeded {
                budget: CYCLE_CAP,
                diag: RunDiagnostics::capture("gather_cc", &core, now),
            });
        }
    }
    core.finalize_stats();
    Ok(CellData::metrics([
        ("spilled", c.spilled as f64),
        ("spill_loads", c.spill_loads as f64),
        ("spill_stores", c.spill_stores as f64),
        ("static_instrs", c.program.len() as f64),
        ("active_ctx", active as f64),
        ("virec_regs", phys as f64),
        ("cycles", now as f64),
        ("ipc", core.stats().ipc()),
    ]))
}

fn main() {
    let n: u64 = std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let nthreads = 8;

    let mut spec = ExperimentSpec::new("ext_compiler_budget");
    spec.set_meta("n", n);
    for budget in BUDGETS {
        for strategy in STRATEGIES {
            spec.custom(format!("budget{budget}_{}", strategy.name()), move |_| {
                run_budget(budget, strategy, n, nthreads)
            });
        }
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Compiler register budget sweep — compiled gather, 8 threads, n={n}"),
        &[
            "budget",
            "alloc",
            "spilled",
            "loads",
            "stores",
            "static_instrs",
            "active_ctx",
            "virec_regs",
            "cycles",
            "ipc",
        ],
    );
    for budget in BUDGETS {
        for strategy in STRATEGIES {
            let key = format!("budget{budget}_{}", strategy.name());
            let int = |name: &str| {
                res.metric(&key, name)
                    .map(|v| (v as u64).to_string())
                    .unwrap_or_else(|| "-".into())
            };
            let mut row = vec![budget.to_string(), strategy.name().into()];
            if res.data(&key).is_some() {
                row.extend([
                    int("spilled"),
                    int("spill_loads"),
                    int("spill_stores"),
                    int("static_instrs"),
                    int("active_ctx"),
                    int("virec_regs"),
                    int("cycles"),
                    opt_f3(res.metric(&key, "ipc")),
                ]);
            } else {
                row.extend(std::iter::repeat_n::<String>("-".into(), 7));
                row.push("FAILED".into());
            }
            t.row(row);
        }
    }
    t.print();
    res.print_failures();
}
