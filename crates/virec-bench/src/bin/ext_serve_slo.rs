//! Extension experiment: serving-layer SLO metrics for the fault-tolerant
//! streaming task service (`virec_sim::serve`).
//!
//! Three scenarios per engine, virec vs banked, on the same seeded arrival
//! process:
//!
//! * **nominal** — the streaming defaults: the service keeps up, goodput
//!   and availability are 100%, and the latency percentiles measure the
//!   raw dispatch + offload + kernel path.
//! * **faulty** — a fault campaign (`VIREC_SERVE_FAULTS` transient upsets,
//!   default 64, plus one sticky-bad core) under SEC-DED: transients
//!   correct in place, the sticky core quarantines and its in-flight task
//!   fails over, and the accounting invariants (`lost == duplicated ==
//!   silent_corruptions == 0`) must hold.
//! * **overload** — arrivals at roughly twice the service capacity: the
//!   bounded admission queue sheds with typed rejections instead of
//!   deadlocking, and goodput degrades gracefully.
//!
//! Knobs: `VIREC_SERVE_CORES`, `VIREC_SERVE_TASKS`, `VIREC_SERVE_FAULTS`,
//! `VIREC_SERVE_SEED`. Results land in `results/ext_serve_slo.json` with
//! provenance metadata like every other figure.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_sim::experiment::ExperimentSpec;
use virec_sim::report::{pct, Table};
use virec_sim::serve::{ServeConfig, ServeFaultPlan};
use virec_sim::{run_service, ProtectionConfig};

const THREADS: usize = 4;
/// The paper's sweet spot: 8 registers per thread (80–100% context).
const REGS_PER_THREAD: usize = 8;
/// Mean inter-arrival gap for the overload scenario: roughly half the
/// per-task service time divided across the cores, i.e. ~2x capacity.
const OVERLOAD_INTERARRIVAL: u64 = 200;

const ENGINES: [&str; 2] = ["virec", "banked"];
const SCENARIOS: [&str; 3] = ["nominal", "faulty", "overload"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cores = env_u64("VIREC_SERVE_CORES", 4) as usize;
    let tasks = env_u64("VIREC_SERVE_TASKS", 192) as usize;
    let faults = env_u64("VIREC_SERVE_FAULTS", 64) as usize;
    let seed = env_u64("VIREC_SERVE_SEED", 0xF00D_5EED);

    let mut spec = ExperimentSpec::new("ext_serve_slo");
    spec.set_meta("cores", cores);
    spec.set_meta("tasks", tasks);
    spec.set_meta("faults", faults);
    spec.set_meta("seed", seed);
    spec.set_meta("threads", THREADS);
    spec.set_meta("regs_per_thread", REGS_PER_THREAD);
    spec.set_meta("overload_interarrival", OVERLOAD_INTERARRIVAL);

    for engine in ENGINES {
        for scenario in SCENARIOS {
            spec.custom(format!("{engine}/{scenario}"), move |_| {
                let core = match engine {
                    "virec" => CoreConfig::virec(THREADS, THREADS * REGS_PER_THREAD),
                    _ => CoreConfig::banked(THREADS),
                };
                let mut cfg = ServeConfig::streaming(cores, core, tasks, seed);
                match scenario {
                    "faulty" => {
                        cfg.faults = ServeFaultPlan::campaign(faults, 1);
                        cfg.protection = ProtectionConfig::secded();
                    }
                    "overload" => cfg.mean_interarrival = OVERLOAD_INTERARRIVAL,
                    _ => {}
                }
                Ok(run_service(cfg)?.metrics())
            });
        }
    }
    let res = run_spec(&spec);

    let metric = |key: &str, name: &str| res.metric(key, name);
    let int = |key: &str, name: &str| {
        metric(key, name)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    let as_pct = |key: &str, name: &str| {
        metric(key, name)
            .map(pct)
            .unwrap_or_else(|| "-".to_string())
    };

    let mut slo = Table::new(
        &format!("Serve SLO — {cores} cores x {THREADS} threads, {tasks} tasks"),
        &[
            "engine/scenario",
            "tasks_per_sec",
            "p50",
            "p99",
            "p999",
            "availability",
            "goodput",
            "completed",
            "rejected",
        ],
    );
    for engine in ENGINES {
        for scenario in SCENARIOS {
            let key = format!("{engine}/{scenario}");
            let rejected = metric(&key, "rejected_queue_full")
                .zip(metric(&key, "rejected_quarantined"))
                .map(|(q, c)| q + c);
            slo.row(vec![
                key.clone(),
                int(&key, "tasks_per_sec"),
                int(&key, "p50_cycles"),
                int(&key, "p99_cycles"),
                int(&key, "p999_cycles"),
                as_pct(&key, "availability"),
                as_pct(&key, "goodput"),
                int(&key, "completed"),
                rejected
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    slo.print();

    let mut rob = Table::new(
        "Serve robustness — fault campaign and accounting invariants",
        &[
            "engine/scenario",
            "injected",
            "corrected",
            "uncorrect",
            "retries",
            "failovers",
            "quarantined",
            "lost",
            "dup",
            "silent",
        ],
    );
    for engine in ENGINES {
        for scenario in SCENARIOS {
            let key = format!("{engine}/{scenario}");
            rob.row(vec![
                key.clone(),
                int(&key, "faults_injected"),
                int(&key, "faults_corrected"),
                int(&key, "faults_uncorrectable"),
                int(&key, "retries"),
                int(&key, "failovers"),
                int(&key, "quarantined_cores"),
                int(&key, "lost"),
                int(&key, "duplicated"),
                int(&key, "silent_corruptions"),
            ]);
        }
    }
    rob.print();
    res.print_failures();
}
