//! Extensions beyond the paper (its stated future work, §8): group
//! evictions and a prefetch+caching hybrid, evaluated against baseline
//! ViReC at 8 threads across context sizes.
//!
//! The fracs × workloads × variants grid runs as one declarative sweep;
//! speedups are relative to each workload's baseline cell, so a failed
//! variant degrades to `-` without losing the row.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::Table;
use virec_sim::runner::RunOptions;
use virec_workloads::SUITE;

/// A named configuration mutation.
type Variant = (&'static str, fn(CoreConfig) -> CoreConfig);

const VARIANTS: &[Variant] = &[
    ("group_evict2", |mut c| {
        c.group_evict = 2;
        c
    }),
    ("group_evict4", |mut c| {
        c.group_evict = 4;
        c
    }),
    ("switch_prefetch", |mut c| {
        c.switch_prefetch = true;
        c
    }),
    ("both", |mut c| {
        c.group_evict = 2;
        c.switch_prefetch = true;
        c
    }),
];

const FRACS: [f64; 2] = [0.8, 0.4];

fn key(name: &str, frac: f64, variant: &str) -> String {
    format!("{}/{:.0}%/{}", name, frac * 100.0, variant)
}

fn main() {
    let n = problem_size();
    let threads = 8;
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("ext_future_work");
    spec.set_meta("n", n);
    for frac in FRACS {
        for (name, ctor) in SUITE {
            let w = ctor(n, layout0());
            let build = builder(*ctor, n, layout0());
            let base_cfg = virec_cfg(&w, threads, frac, PolicyKind::Lrc);
            spec.single(key(name, frac, "baseline"), build.clone(), base_cfg, &opts);
            for (vname, mutate) in VARIANTS {
                spec.single(
                    key(name, frac, vname),
                    build.clone(),
                    mutate(base_cfg),
                    &opts,
                );
            }
        }
    }
    let res = run_spec(&spec);

    for frac in FRACS {
        let mut t = Table::new(
            &format!(
                "Future-work extensions — 8 threads, {:.0}% context, n={n}",
                frac * 100.0
            ),
            &[
                "workload",
                "baseline_cyc",
                "group_evict2",
                "group_evict4",
                "switch_prefetch",
                "both",
            ],
        );
        let mut rel = RelTracker::new();
        for (name, _) in SUITE {
            let base = res.cycles(&key(name, frac, "baseline"));
            let mut row = vec![name.to_string(), cycles_cell(base)];
            for (vname, _) in VARIANTS {
                let cycles = res.cycles(&key(name, frac, vname));
                row.push(rel.rel_cell(vname, base, cycles));
            }
            t.row(row);
        }
        t.print();

        let mut m = Table::new(
            &format!(
                "Future-work extensions — geomean speedup at {:.0}% context (completed runs only)",
                frac * 100.0
            ),
            &["variant", "geomean_speedup"],
        );
        for (vname, _) in VARIANTS {
            m.row(vec![vname.to_string(), rel.geomean_cell(vname)]);
        }
        m.print();
    }
    res.print_failures();
}
