//! Extensions beyond the paper (its stated future work, §8): group
//! evictions and a prefetch+caching hybrid, evaluated against baseline
//! ViReC at 8 threads across context sizes.

use virec_bench::harness::*;
use virec_core::PolicyKind;
use virec_sim::report::{f3, geomean, Table};
use virec_workloads::suite;

fn main() {
    let n = problem_size();
    let threads = 8;
    for frac in [0.8f64, 0.4] {
        let mut t = Table::new(
            &format!(
                "Future-work extensions — 8 threads, {:.0}% context, n={n}",
                frac * 100.0
            ),
            &[
                "workload",
                "baseline_cyc",
                "group_evict2",
                "group_evict4",
                "switch_prefetch",
                "both",
            ],
        );
        let mut rel = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for w in suite(n, layout0()) {
            let base_cfg = virec_cfg(&w, threads, frac, PolicyKind::Lrc);
            let base = run(base_cfg, &w).cycles as f64;
            let mut row = vec![w.name.to_string(), format!("{}", base as u64)];
            let variants = [
                {
                    let mut c = base_cfg;
                    c.group_evict = 2;
                    c
                },
                {
                    let mut c = base_cfg;
                    c.group_evict = 4;
                    c
                },
                {
                    let mut c = base_cfg;
                    c.switch_prefetch = true;
                    c
                },
                {
                    let mut c = base_cfg;
                    c.group_evict = 2;
                    c.switch_prefetch = true;
                    c
                },
            ];
            for (i, cfg) in variants.into_iter().enumerate() {
                let r = run(cfg, &w);
                let speedup = base / r.cycles as f64;
                rel[i].push(speedup);
                row.push(f3(speedup));
            }
            t.row(row);
        }
        t.print();
        let mut m = Table::new(
            &format!(
                "Future-work extensions — geomean speedup at {:.0}% context",
                frac * 100.0
            ),
            &["variant", "geomean_speedup"],
        );
        for (name, v) in ["group_evict2", "group_evict4", "switch_prefetch", "both"]
            .iter()
            .zip(&rel)
        {
            m.row(vec![name.to_string(), f3(geomean(v))]);
        }
        m.print();
    }
}
