//! Ablation of the ViReC system optimizations (§5.3), beyond the paper's
//! figures: starting from the full ViReC design at 8 threads / 80% context,
//! each optimization is disabled in turn:
//!
//! * `no_dummy`     — destination-only registers wait for real fills;
//! * `no_pinning`   — register lines are ordinary data lines in the dcache;
//! * `blocking_bsi` — one backing-store request at a time;
//! * `no_branchpred`— static not-taken only;
//! * `nsf`          — all of the above plus PLRU (the NSF baseline \[41\]).

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::report::{f3, geomean, Table};
use virec_workloads::suite;

/// A named configuration mutation.
type Variant = (&'static str, Box<dyn Fn(CoreConfig) -> CoreConfig>);

fn main() {
    let n = problem_size();
    let threads = 8;
    let variants: Vec<Variant> = vec![
        ("full", Box::new(|c| c)),
        (
            "no_dummy",
            Box::new(|mut c: CoreConfig| {
                c.dummy_fill_opt = false;
                c
            }),
        ),
        (
            "no_pinning",
            Box::new(|mut c: CoreConfig| {
                c.reg_line_pinning = false;
                c
            }),
        ),
        (
            "blocking_bsi",
            Box::new(|mut c: CoreConfig| {
                c.nonblocking_bsi = false;
                c
            }),
        ),
        (
            "no_branchpred",
            Box::new(|mut c: CoreConfig| {
                c.branch_pred = false;
                c
            }),
        ),
        (
            "nsf",
            Box::new(|mut c: CoreConfig| {
                c.dummy_fill_opt = false;
                c.reg_line_pinning = false;
                c.nonblocking_bsi = false;
                c.policy = PolicyKind::Plru;
                c
            }),
        ),
    ];

    let mut t = Table::new(
        &format!("Ablation — ViReC optimizations, 8 threads, 80% ctx, n={n}"),
        &[
            "workload",
            "full",
            "no_dummy",
            "no_pinning",
            "blocking_bsi",
            "no_branchpred",
            "nsf",
        ],
    );
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for w in suite(n, layout0()) {
        let base_cfg = virec_cfg(&w, threads, 0.8, PolicyKind::Lrc);
        let full_cycles = run(base_cfg, &w).cycles as f64;
        let mut cells = vec![w.name.to_string()];
        for (vi, (_, f)) in variants.iter().enumerate() {
            let cfg = f(base_cfg);
            let r = run(cfg, &w);
            let relative = full_cycles / r.cycles as f64; // <1 = slower than full
            per_variant[vi].push(relative);
            cells.push(f3(relative));
        }
        t.row(cells);
    }
    t.print();

    let mut m = Table::new(
        "Ablation — geomean performance relative to full ViReC",
        &["variant", "geomean"],
    );
    for (vi, (name, _)) in variants.iter().enumerate() {
        m.row(vec![name.to_string(), f3(geomean(&per_variant[vi]))]);
    }
    m.print();
}
