//! Ablation of the ViReC system optimizations (§5.3), beyond the paper's
//! figures: starting from the full ViReC design at 8 threads / 80% context,
//! each optimization is disabled in turn:
//!
//! * `no_dummy`     — destination-only registers wait for real fills;
//! * `no_pinning`   — register lines are ordinary data lines in the dcache;
//! * `blocking_bsi` — one backing-store request at a time;
//! * `no_branchpred`— static not-taken only;
//! * `nsf`          — all of the above plus PLRU (the NSF baseline \[41\]).
//!
//! The workloads × variants grid runs as one declarative sweep; relative
//! performance is computed against each workload's `full` cell, so a
//! failed variant degrades to `-` without losing the row.

use virec_bench::harness::*;
use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, ExperimentSpec};
use virec_sim::report::Table;
use virec_sim::runner::RunOptions;
use virec_workloads::SUITE;

/// A named configuration mutation.
type Variant = (&'static str, fn(CoreConfig) -> CoreConfig);

/// Named configuration mutations, in column order (`full` first: it is the
/// normalization baseline).
const VARIANTS: &[Variant] = &[
    ("full", |c| c),
    ("no_dummy", |mut c| {
        c.dummy_fill_opt = false;
        c
    }),
    ("no_pinning", |mut c| {
        c.reg_line_pinning = false;
        c
    }),
    ("blocking_bsi", |mut c| {
        c.nonblocking_bsi = false;
        c
    }),
    ("no_branchpred", |mut c| {
        c.branch_pred = false;
        c
    }),
    ("nsf", |mut c| {
        c.dummy_fill_opt = false;
        c.reg_line_pinning = false;
        c.nonblocking_bsi = false;
        c.policy = PolicyKind::Plru;
        c
    }),
];

fn main() {
    let n = problem_size();
    let threads = 8;
    let opts = RunOptions::default();

    let mut spec = ExperimentSpec::new("ablation_virec_opts");
    spec.set_meta("n", n);
    for (name, ctor) in SUITE {
        let w = ctor(n, layout0());
        let build = builder(*ctor, n, layout0());
        let base_cfg = virec_cfg(&w, threads, 0.8, PolicyKind::Lrc);
        for (vname, mutate) in VARIANTS {
            spec.single(
                format!("{name}/{vname}"),
                build.clone(),
                mutate(base_cfg),
                &opts,
            );
        }
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Ablation — ViReC optimizations, 8 threads, 80% ctx, n={n}"),
        &[
            "workload",
            "full",
            "no_dummy",
            "no_pinning",
            "blocking_bsi",
            "no_branchpred",
            "nsf",
        ],
    );
    let mut rel = RelTracker::new();
    for (name, _) in SUITE {
        let full = res.cycles(&format!("{name}/full"));
        let mut cells = vec![name.to_string()];
        for (vname, _) in VARIANTS {
            let cycles = res.cycles(&format!("{name}/{vname}"));
            // <1 = slower than full ViReC
            cells.push(rel.rel_cell(vname, full, cycles));
        }
        t.row(cells);
    }
    t.print();

    let mut m = Table::new(
        "Ablation — geomean performance relative to full ViReC (completed runs only)",
        &["variant", "geomean"],
    );
    for (vname, _) in VARIANTS {
        m.row(vec![vname.to_string(), rel.geomean_cell(vname)]);
    }
    m.print();
    res.print_failures();
}
