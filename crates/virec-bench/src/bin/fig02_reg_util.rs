//! Figure 2: register utilization of the memory-intensive workloads.
//!
//! For each kernel we report the innermost-loop register working set from
//! static analysis (the fraction of the 31-register architectural context),
//! plus the dynamically-measured mean per-quantum register use from a
//! recorded banked run. Paper shape: most workloads use well under 30% of
//! the context in the loops where they spend their runtime.

use virec_bench::harness::*;
use virec_sim::report::{pct, Table};
use virec_sim::runner::record_oracle;
use virec_workloads::suite;

fn main() {
    let n = problem_size().min(4096);
    let mut t = Table::new(
        &format!("Figure 2 — register utilization, n={n}"),
        &[
            "workload",
            "inner_regs",
            "all_regs",
            "inner_util",
            "mean_quantum_regs",
            "loop_depth",
        ],
    );
    for w in suite(n, layout0()) {
        let u = w.register_usage();
        // Dynamic: mean registers touched per scheduling quantum on a
        // 4-thread banked core.
        let oracle = record_oracle(&w, 4, Default::default());
        let (sum, count) = oracle
            .sets
            .iter()
            .flatten()
            .fold((0u64, 0u64), |(s, c), m| (s + m.count_ones() as u64, c + 1));
        let mean_q = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        t.row(vec![
            w.name.to_string(),
            u.innermost.len().to_string(),
            u.all_used.len().to_string(),
            pct(u.innermost_utilization()),
            format!("{mean_q:.1}"),
            u.max_depth.to_string(),
        ]);
    }
    t.print();
}
