//! Figure 2: register utilization of the memory-intensive workloads.
//!
//! For each kernel we report the innermost-loop register working set from
//! static analysis (the fraction of the 31-register architectural context),
//! the *exact* live register set at the innermost loop head from dataflow
//! liveness (what an oracle prefetcher would actually fill: smaller than
//! the referenced set where registers are written before read, larger for
//! nested kernels where outer-loop state stays live across the inner
//! head), plus the dynamically-measured mean per-quantum register use from
//! a recorded banked run. Paper shape: most workloads use
//! well under 30% of the context in the loops where they spend their
//! runtime.
//!
//! The dynamic recording runs as one custom cell per workload; static
//! analysis happens at render time. A failed recording degrades to `-`.

use virec_bench::harness::*;
use virec_core::CoreConfig;
use virec_sim::experiment::{builder, CellData, ExperimentSpec};
use virec_sim::report::{pct, Table};
use virec_sim::runner::{try_run_single, RunOptions};
use virec_verify::StaticOracle;
use virec_workloads::{suite, SUITE};

fn main() {
    let n = problem_size().min(4096);

    let mut spec = ExperimentSpec::new("fig02_reg_util");
    spec.set_meta("n", n);
    for (name, ctor) in SUITE {
        let build = builder(*ctor, n, layout0());
        // Dynamic: mean registers touched per scheduling quantum on a
        // 4-thread banked core, from an oracle-recording run.
        spec.custom(name.to_string(), move |_| {
            let w = build();
            let opts = RunOptions {
                verify: false,
                record_oracle: true,
                ..RunOptions::default()
            };
            let r = try_run_single(CoreConfig::banked(4), &w, &opts)?;
            let (sum, count) = r
                .oracle
                .sets
                .iter()
                .flatten()
                .fold((0u64, 0u64), |(s, c), m| (s + m.count_ones() as u64, c + 1));
            let mean_q = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            Ok(CellData::metrics([("mean_quantum_regs", mean_q)]))
        });
    }
    let res = run_spec(&spec);

    let mut t = Table::new(
        &format!("Figure 2 — register utilization, n={n}"),
        &[
            "workload",
            "inner_regs",
            "live_at_head",
            "delta",
            "all_regs",
            "inner_util",
            "mean_quantum_regs",
            "loop_depth",
        ],
    );
    for w in suite(n, layout0()) {
        let u = w.register_usage();
        let mean_q = res
            .metric(w.name, "mean_quantum_regs")
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into());
        // Exact liveness at the head of the (first) innermost loop: the
        // registers an oracle prefetcher must fill for execution to
        // proceed when a quantum resumes there (halt_live = 0: final-state
        // values can be demand-filled, so only the dataflow of the
        // remaining execution counts). `delta` = referenced-but-not-live
        // in the innermost body — registers the span-based analysis counts
        // that a dataflow-exact context could drop (dummy-fillable).
        let (live, delta) = match StaticOracle::build(w.program(), 0) {
            Ok(o) => match u.loops.iter().find(|l| l.depth == u.max_depth) {
                Some(inner) => {
                    let live = o.prefetch_mask(inner.head).count_ones();
                    let delta = u.innermost.len() as i64 - live as i64;
                    (live.to_string(), format!("{delta:+}"))
                }
                None => ("-".into(), "-".into()),
            },
            Err(_) => ("-".into(), "-".into()),
        };
        t.row(vec![
            w.name.to_string(),
            u.innermost.len().to_string(),
            live,
            delta,
            u.all_used.len().to_string(),
            pct(u.innermost_utilization()),
            mean_q,
            u.max_depth.to_string(),
        ]);
    }
    t.print();
    res.print_failures();
}
