//! The compiler/architecture budget tuner: sweeps the `virec-cc` register
//! budget against the VRMU physical-register capacity and maps the
//! perf × area trade space.
//!
//! Each point compiles `gather_cc` at a budget, translation-validates the
//! exact artifact (the TV gate is a hard preflight — a miscompiled point
//! must never produce a "fast" datapoint), runs it to completion on the
//! event-driven single-core harness at a VRMU capacity, and prices the
//! fully-protected core (base + ECC + RAS) at that capacity. The Pareto
//! front over (cycles, mm²) is what `virec-cli tune` reports, along with
//! the best point inside a caller-supplied area envelope.

use crate::harness::run_spec;
use virec_area::{AreaModel, EccAreaModel, RasAreaModel};
use virec_core::CoreConfig;
use virec_sim::experiment::{CellData, ExperimentSpec};
use virec_sim::runner::{try_run_single, RunOptions};
use virec_verify::suite::tv_compiled_budgets;
use virec_verify::tv::{validate, TvCase};
use virec_workloads::{gather_cc, gather_cc_ir, Layout};

pub use virec_cc::AllocStrategy;

/// One evaluated (budget × capacity) design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunePoint {
    /// Compiler register budget (1..=17).
    pub budget: usize,
    /// VRMU physical-register capacity.
    pub capacity: usize,
    /// End-to-end cycles on the event-driven runner.
    pub cycles: u64,
    /// Fully-protected core area (base + ECC + RAS) at this capacity.
    pub area_mm2: f64,
    /// Temps the allocator sent to the frame.
    pub spilled: usize,
    /// Static spill reloads in the text.
    pub spill_loads: usize,
    /// Static spill writebacks in the text.
    pub spill_stores: usize,
    /// Committed IPC.
    pub ipc: f64,
}

/// Tuner sweep configuration.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Problem size (elements).
    pub n: u64,
    /// Hardware threads.
    pub nthreads: usize,
    /// Compiler budgets to sweep.
    pub budgets: Vec<usize>,
    /// VRMU capacities to sweep.
    pub capacities: Vec<usize>,
    /// Allocation strategy under tune.
    pub strategy: AllocStrategy,
}

impl Default for TuneConfig {
    fn default() -> TuneConfig {
        TuneConfig {
            n: 1024,
            nthreads: 4,
            budgets: virec_verify::suite::LINT_BUDGETS.to_vec(),
            capacities: vec![8, 12, 16, 24, 32],
            strategy: AllocStrategy::GraphColor,
        }
    }
}

/// Concrete TV inputs for the five-parameter `gather_cc` kernel, small
/// enough to interpret symbolically-checked artifacts in microseconds.
fn gather_cc_cases() -> Vec<TvCase> {
    let n = 16u64;
    let data = 0x1000u64;
    let idx = data + n * 8;
    let mut mem = Vec::new();
    for i in 0..n {
        mem.push((data + i * 8, i.wrapping_mul(17)));
        mem.push((idx + i * 8, (i * 13) % n));
    }
    vec![TvCase {
        args: vec![data, idx, n, 0, 1],
        mem,
    }]
}

/// The suite-wide TV preflight: every compiled kernel at every budget and
/// both strategies must translation-validate before any sweep cell runs.
/// Returns the violation listing on failure.
pub fn tv_preflight() -> Result<(), String> {
    let mut bad = Vec::new();
    for r in tv_compiled_budgets() {
        if !r.is_valid() {
            for v in &r.violations {
                bad.push(format!("{}: {v}", r.name));
            }
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad.join("\n"))
    }
}

/// Sweeps budgets × capacities through the experiment layer and returns
/// every point that completed. Points whose runs fail (livelock at an
/// undersized capacity, cycle caps) are dropped — the experiment layer
/// records them as structured failures, not panics.
///
/// # Panics
///
/// Panics if the TV preflight rejects any compiled kernel, or if a
/// specific sweep artifact fails validation — a miscompile must kill the
/// tuner, not bias it.
pub fn tune_sweep(cfg: &TuneConfig) -> Vec<TunePoint> {
    if let Err(e) = tv_preflight() {
        panic!("translation-validation preflight failed:\n{e}");
    }

    let layout = Layout::for_core(0);
    let cases = gather_cc_cases();
    let ir = gather_cc_ir();

    let mut spec = ExperimentSpec::new("ext_tune_pareto");
    spec.set_meta("n", cfg.n);
    spec.set_meta("nthreads", cfg.nthreads);
    spec.set_meta("strategy", cfg.strategy.name());
    let mut compiled_meta = Vec::new();
    for &budget in &cfg.budgets {
        let cw = match gather_cc(cfg.n, layout, budget, cfg.strategy) {
            Ok(cw) => cw,
            Err(e) => panic!("budget {budget}: {e}"),
        };
        // Per-artifact TV: the exact program about to be driven.
        let report = validate(
            &format!("gather_cc@b{budget}/{}", cfg.strategy.name()),
            &ir,
            &cw.compiled,
            &cases,
        );
        assert!(
            report.is_valid(),
            "tune artifact failed translation validation:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        compiled_meta.push((
            budget,
            cw.compiled.spilled,
            cw.compiled.spill_loads,
            cw.compiled.spill_stores,
        ));
        for &capacity in &cfg.capacities {
            let n = cfg.n;
            let nthreads = cfg.nthreads;
            let strategy = cfg.strategy;
            spec.custom(format!("b{budget}_c{capacity}"), move |_| {
                let cw = gather_cc(n, layout, budget, strategy).expect("preflighted budget");
                let core_cfg = CoreConfig::virec(nthreads, capacity);
                let r = try_run_single(core_cfg, &cw.workload, &RunOptions::default())?;
                Ok(CellData::metrics([
                    ("cycles", r.cycles as f64),
                    ("ipc", r.stats.ipc()),
                ]))
            });
        }
    }
    let res = run_spec(&spec);

    let area = |capacity: usize| {
        RasAreaModel::default().virec_core(
            &AreaModel::default(),
            &EccAreaModel::default(),
            capacity,
        )
    };
    let mut points = Vec::new();
    for &(budget, spilled, spill_loads, spill_stores) in &compiled_meta {
        for &capacity in &cfg.capacities {
            let key = format!("b{budget}_c{capacity}");
            let Some(cycles) = res.metric(&key, "cycles") else {
                continue; // structured failure (e.g. undersized capacity)
            };
            points.push(TunePoint {
                budget,
                capacity,
                cycles: cycles as u64,
                area_mm2: area(capacity),
                spilled,
                spill_loads,
                spill_stores,
                ipc: res.metric(&key, "ipc").unwrap_or(0.0),
            });
        }
    }
    points
}

/// The non-dominated set under (minimize cycles, minimize area), sorted by
/// area ascending (so cycles descend along the front).
pub fn pareto_front(points: &[TunePoint]) -> Vec<TunePoint> {
    let mut front: Vec<TunePoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                q.cycles <= p.cycles
                    && q.area_mm2 <= p.area_mm2
                    && (q.cycles < p.cycles || q.area_mm2 < p.area_mm2)
            })
        })
        .copied()
        .collect();
    front.sort_by(|a, b| {
        a.area_mm2
            .total_cmp(&b.area_mm2)
            .then(a.cycles.cmp(&b.cycles))
            .then(a.budget.cmp(&b.budget))
            .then(a.capacity.cmp(&b.capacity))
    });
    front.dedup_by(|a, b| a.cycles == b.cycles && a.area_mm2 == b.area_mm2);
    front
}

/// The fastest point whose fully-protected core fits `area_budget_mm2`
/// (ties broken toward smaller area, then smaller compiler budget).
pub fn pick_for_area(points: &[TunePoint], area_budget_mm2: f64) -> Option<TunePoint> {
    points
        .iter()
        .filter(|p| p.area_mm2 <= area_budget_mm2)
        .min_by(|a, b| {
            a.cycles
                .cmp(&b.cycles)
                .then(a.area_mm2.total_cmp(&b.area_mm2))
                .then(a.budget.cmp(&b.budget))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(budget: usize, capacity: usize, cycles: u64, area: f64) -> TunePoint {
        TunePoint {
            budget,
            capacity,
            cycles,
            area_mm2: area,
            spilled: 0,
            spill_loads: 0,
            spill_stores: 0,
            ipc: 0.0,
        }
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let pts = [
            pt(2, 8, 1000, 1.0),
            pt(4, 16, 800, 2.0),
            pt(4, 8, 900, 1.0),   // dominates the first point
            pt(8, 16, 850, 2.0),  // dominated by (4,16)
            pt(8, 32, 1200, 4.0), // dominated everywhere
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 2);
        assert_eq!((front[0].budget, front[0].capacity), (4, 8));
        assert_eq!((front[1].budget, front[1].capacity), (4, 16));
    }

    #[test]
    fn pick_for_area_takes_the_fastest_fit() {
        let pts = [pt(2, 8, 1000, 1.0), pt(4, 16, 800, 2.0)];
        assert_eq!(pick_for_area(&pts, 1.5).unwrap().budget, 2);
        assert_eq!(pick_for_area(&pts, 2.5).unwrap().budget, 4);
        assert!(pick_for_area(&pts, 0.5).is_none());
    }

    #[test]
    fn tv_preflight_passes_on_the_shipped_compiler() {
        tv_preflight().expect("compiled kernels validate");
    }

    #[test]
    fn tune_sweep_produces_a_nonempty_front() {
        let cfg = TuneConfig {
            n: 256,
            budgets: vec![2, 8],
            capacities: vec![12, 24],
            ..TuneConfig::default()
        };
        let points = tune_sweep(&cfg);
        assert!(!points.is_empty());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        // Looser budgets spill less.
        let p2 = points.iter().find(|p| p.budget == 2).unwrap();
        let p8 = points.iter().find(|p| p.budget == 8).unwrap();
        assert!(p2.spill_loads > p8.spill_loads);
    }
}
