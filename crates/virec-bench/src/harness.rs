//! Common experiment plumbing for the fig*/table* binaries.
//!
//! Sweeps degrade gracefully: [`run_cell`] turns a failed configuration
//! into a structured [`Cell::Failed`] row (error kind plus one-line
//! diagnostics) instead of tearing the whole sweep down, retrying budget
//! failures once with a relaxed cycle budget first. [`SweepLog`] collects
//! the failures so a figure binary can print them after its table.

use virec_core::{CoreConfig, PolicyKind};
use virec_mem::FabricConfig;
use virec_sim::runner::{run_single, try_run_single, RunOptions, RunResult};
use virec_sim::SimError;
use virec_workloads::{Layout, Workload};

/// Default problem size for figure regeneration (large enough that caches
/// and context switching behave realistically, small enough to sweep).
pub const DEFAULT_N: u64 = 8192;

/// Smaller size for quick shape checks.
pub const QUICK_N: u64 = 1024;

/// Reads the problem size from VIREC_N (falls back to DEFAULT_N).
pub fn problem_size() -> u64 {
    std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N)
}

/// The context fractions swept throughout the paper's Figures 1, 9, 10.
pub const CTX_FRACTIONS: &[(&str, f64)] =
    &[("40%", 0.4), ("60%", 0.6), ("80%", 0.8), ("100%", 1.0)];

/// Runs one workload on one config with default options (verified).
pub fn run(cfg: CoreConfig, w: &Workload) -> RunResult {
    run_single(cfg, w, &RunOptions::default())
}

/// Runs with a custom fabric.
pub fn run_with_fabric(cfg: CoreConfig, w: &Workload, fabric: FabricConfig) -> RunResult {
    run_single(
        cfg,
        w,
        &RunOptions {
            fabric,
            ..RunOptions::default()
        },
    )
}

/// Fallible run with default options (verified).
pub fn try_run(cfg: CoreConfig, w: &Workload) -> Result<RunResult, SimError> {
    try_run_single(cfg, w, &RunOptions::default())
}

/// One sweep cell: either a completed run or a structured failure row.
#[derive(Clone, Debug)]
pub enum Cell {
    /// The configuration completed (and verified). Boxed so a sweep's
    /// mostly-small failure rows don't pay for the large result payload.
    Done(Box<RunResult>),
    /// The configuration failed; the sweep continues without it.
    Failed {
        /// Machine-readable error kind (`cycle_budget`, `livelock`, …).
        kind: &'static str,
        /// Full structured error line.
        error: String,
        /// True if a budget failure was retried with a relaxed budget and
        /// failed again.
        retried: bool,
    },
}

impl Cell {
    /// The result if the cell completed.
    pub fn done(&self) -> Option<&RunResult> {
        match self {
            Cell::Done(r) => Some(r),
            Cell::Failed { .. } => None,
        }
    }

    /// Cycles for table rendering; `None` renders as a failure marker.
    pub fn cycles(&self) -> Option<u64> {
        self.done().map(|r| r.cycles)
    }
}

/// Budget-relaxation factor for the single retry of a budget failure.
pub const RETRY_BUDGET_FACTOR: u64 = 4;

/// Runs one sweep cell with graceful degradation: a failure becomes a
/// [`Cell::Failed`] row, and a pure cycle-budget failure is retried once
/// with a [`RETRY_BUDGET_FACTOR`]× budget before giving up.
pub fn run_cell(cfg: CoreConfig, w: &Workload, opts: &RunOptions) -> Cell {
    match try_run_single(cfg, w, opts) {
        Ok(r) => Cell::Done(Box::new(r)),
        Err(SimError::CycleBudgetExceeded { .. }) => {
            let mut relaxed = cfg;
            relaxed.max_cycles = cfg.max_cycles.saturating_mul(RETRY_BUDGET_FACTOR);
            match try_run_single(relaxed, w, opts) {
                Ok(r) => Cell::Done(Box::new(r)),
                Err(e) => Cell::Failed {
                    kind: e.kind(),
                    error: e.to_string(),
                    retried: true,
                },
            }
        }
        Err(e) => Cell::Failed {
            kind: e.kind(),
            error: e.to_string(),
            retried: false,
        },
    }
}

/// Collects failed cells across a sweep for end-of-run reporting.
#[derive(Default)]
pub struct SweepLog {
    failures: Vec<(String, String)>,
}

impl SweepLog {
    /// New empty log.
    pub fn new() -> SweepLog {
        SweepLog::default()
    }

    /// Runs a labelled cell, records any failure, and returns the cell.
    pub fn cell(&mut self, label: &str, cfg: CoreConfig, w: &Workload, opts: &RunOptions) -> Cell {
        let cell = run_cell(cfg, w, opts);
        self.record(label, &cell);
        cell
    }

    /// Wraps a fallible run from a path `run_cell` does not cover (the
    /// prefetch-exact oracle, `System::try_run`, …) into a cell, recording
    /// any failure. No budget retry is attempted.
    pub fn cell_from<T>(&mut self, label: &str, result: Result<T, SimError>) -> Option<T> {
        match result {
            Ok(v) => Some(v),
            Err(e) => {
                self.record(
                    label,
                    &Cell::Failed {
                        kind: e.kind(),
                        error: e.to_string(),
                        retried: false,
                    },
                );
                None
            }
        }
    }

    fn record(&mut self, label: &str, cell: &Cell) {
        if let Cell::Failed {
            kind,
            error,
            retried,
        } = cell
        {
            let suffix = if *retried {
                " (after budget retry)"
            } else {
                ""
            };
            self.failures
                .push((label.to_string(), format!("[{kind}{suffix}] {error}")));
        }
    }

    /// True if every cell so far completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.failures.len()
    }

    /// Prints the failure rows (no-op when the sweep was clean).
    pub fn print(&self) {
        if self.failures.is_empty() {
            return;
        }
        println!("\n{} failed configuration(s):", self.failures.len());
        for (label, error) in &self.failures {
            println!("  {label}: {error}");
        }
    }
}

/// A ViReC config storing `frac` of the workload's active context.
pub fn virec_cfg(w: &Workload, nthreads: usize, frac: f64, policy: PolicyKind) -> CoreConfig {
    let mut cfg = CoreConfig::virec_for_context(nthreads, w.active_context_size(), frac);
    cfg.policy = policy;
    cfg
}

/// Single-core layout shortcut.
pub fn layout0() -> Layout {
    Layout::for_core(0)
}
