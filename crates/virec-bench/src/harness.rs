//! Common experiment plumbing for the fig*/table* binaries.

use virec_core::{CoreConfig, PolicyKind};
use virec_mem::FabricConfig;
use virec_sim::runner::{run_single, RunOptions, RunResult};
use virec_workloads::{Layout, Workload};

/// Default problem size for figure regeneration (large enough that caches
/// and context switching behave realistically, small enough to sweep).
pub const DEFAULT_N: u64 = 8192;

/// Smaller size for quick shape checks.
pub const QUICK_N: u64 = 1024;

/// Reads the problem size from VIREC_N (falls back to DEFAULT_N).
pub fn problem_size() -> u64 {
    std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N)
}

/// The context fractions swept throughout the paper's Figures 1, 9, 10.
pub const CTX_FRACTIONS: &[(&str, f64)] =
    &[("40%", 0.4), ("60%", 0.6), ("80%", 0.8), ("100%", 1.0)];

/// Runs one workload on one config with default options (verified).
pub fn run(cfg: CoreConfig, w: &Workload) -> RunResult {
    run_single(cfg, w, &RunOptions::default())
}

/// Runs with a custom fabric.
pub fn run_with_fabric(cfg: CoreConfig, w: &Workload, fabric: FabricConfig) -> RunResult {
    run_single(
        cfg,
        w,
        &RunOptions {
            fabric,
            ..RunOptions::default()
        },
    )
}

/// A ViReC config storing `frac` of the workload's active context.
pub fn virec_cfg(w: &Workload, nthreads: usize, frac: f64, policy: PolicyKind) -> CoreConfig {
    let mut cfg = CoreConfig::virec_for_context(nthreads, w.active_context_size(), frac);
    cfg.policy = policy;
    cfg
}

/// Single-core layout shortcut.
pub fn layout0() -> Layout {
    Layout::for_core(0)
}
