//! Common experiment plumbing for the fig*/table* binaries.
//!
//! Every binary follows the same three-phase shape on top of the
//! declarative experiment layer ([`virec_sim::experiment`]):
//!
//! 1. **Declare** — build an [`ExperimentSpec`]: a named grid of keyed
//!    cells carrying workload constructors and configurations.
//! 2. **Execute** — [`run_spec`] runs the grid on a worker pool
//!    (`VIREC_JOBS`, default: all cores) and writes machine-readable JSON
//!    rows into `results/` (`VIREC_RESULTS` overrides, `off` disables).
//!    Collection is keyed and re-sorted, so tables and JSON are
//!    byte-identical for any worker count. Every sweep journals completed
//!    cells to `results/<name>.journal.jsonl`; `--resume` (or
//!    `VIREC_RESUME=1`) replays the journal instead of re-running,
//!    `--deadline <ms>` (or `VIREC_DEADLINE_MS`) bounds each cell's
//!    wall-clock time, and Ctrl-C drains gracefully — finish the in-flight
//!    cells, flush the journal, exit 130 with a resume hint.
//! 3. **Render** — build tables from the keyed results; failed cells
//!    surface as `FAILED` rows and [`RelTracker`] accumulates the
//!    relative-performance columns and geomean rows the paper's figures
//!    share.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use virec_core::{CoreConfig, PolicyKind};
use virec_sim::experiment::{builder, Executor, ExperimentResult, ExperimentSpec, RetryPolicy};
use virec_sim::report::{f3, geomean};
use virec_sim::runner::RunOptions;
use virec_sim::{interrupt_tokens, JournalConfig};
use virec_workloads::{by_name, Layout, Workload};

/// Default problem size for figure regeneration (large enough that caches
/// and context switching behave realistically, small enough to sweep).
pub const DEFAULT_N: u64 = 8192;

/// Smaller size for quick shape checks.
pub const QUICK_N: u64 = 1024;

/// Reads the problem size from VIREC_N (falls back to DEFAULT_N).
pub fn problem_size() -> u64 {
    std::env::var("VIREC_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_N)
}

/// Worker count for sweep execution: `VIREC_JOBS` if set, otherwise every
/// available core. The collected output is identical either way.
pub fn jobs() -> usize {
    std::env::var("VIREC_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&j| j > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Directory for machine-readable result rows: `VIREC_RESULTS` if set
/// (`off` disables emission), otherwise `results/`.
pub fn results_dir() -> Option<PathBuf> {
    match std::env::var("VIREC_RESULTS") {
        Ok(s) if s.is_empty() || s == "off" || s == "0" => None,
        Ok(s) => Some(PathBuf::from(s)),
        Err(_) => Some(PathBuf::from("results")),
    }
}

/// Sweep-level control knobs shared by every figure binary and
/// `virec-cli sweep`: crash-safe resume, a per-cell wall-clock deadline,
/// and the deterministic interruption hook tests and CI use in place of a
/// real Ctrl-C.
#[derive(Clone, Debug, Default)]
pub struct SweepControl {
    /// Replay journaled cells instead of re-running them (`--resume` on
    /// the command line, or `VIREC_RESUME=1`).
    pub resume: bool,
    /// Per-cell wall-clock deadline in milliseconds (`--deadline <ms>` or
    /// `VIREC_DEADLINE_MS`); 0 disables the deadline.
    pub deadline_ms: u64,
    /// Drain after this many completed cells (`VIREC_INTERRUPT_AFTER`) —
    /// the same code path a SIGINT takes, made deterministic for tests.
    pub interrupt_after: Option<usize>,
}

impl SweepControl {
    /// Reads the control knobs from the process arguments (`--resume`,
    /// `--deadline <ms>`) and environment (`VIREC_RESUME`,
    /// `VIREC_DEADLINE_MS`, `VIREC_INTERRUPT_AFTER`). Flags win over the
    /// environment so a resumed invocation can be typed at the shell
    /// without unsetting anything.
    pub fn from_env_and_args() -> SweepControl {
        let env_flag =
            |name: &str| std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0" && v != "off");
        let mut ctl = SweepControl {
            resume: env_flag("VIREC_RESUME"),
            deadline_ms: std::env::var("VIREC_DEADLINE_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            interrupt_after: std::env::var("VIREC_INTERRUPT_AFTER")
                .ok()
                .and_then(|s| s.parse().ok()),
        };
        let args: Vec<String> = std::env::args().collect();
        for (i, arg) in args.iter().enumerate() {
            match arg.as_str() {
                "--resume" => ctl.resume = true,
                "--deadline" => {
                    if let Some(ms) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        ctl.deadline_ms = ms;
                    }
                }
                _ => {}
            }
        }
        ctl
    }
}

/// Executes a spec on the configured worker pool, emits its JSON rows, and
/// reports wall-clock progress on stderr (never stdout: the printed tables
/// must be byte-identical for any `--jobs`).
///
/// Control knobs come from [`SweepControl::from_env_and_args`]; an
/// interrupted sweep (Ctrl-C or `VIREC_INTERRUPT_AFTER`) flushes the
/// journal, prints a resume hint, and exits with status 130 — the
/// conventional SIGINT exit — instead of writing a partial results file.
pub fn run_spec(spec: &ExperimentSpec) -> ExperimentResult {
    run_spec_controlled(spec, &SweepControl::from_env_and_args())
}

/// [`run_spec`] with explicit [`SweepControl`] (the CLI parses its own
/// flags and calls this directly).
pub fn run_spec_controlled(spec: &ExperimentSpec, ctl: &SweepControl) -> ExperimentResult {
    let jobs = jobs();
    let start = Instant::now();
    let (drain, abort) = interrupt_tokens();
    let mut exec = Executor::new(jobs)
        .with_interrupts(drain, abort)
        .with_deadline_ms(ctl.deadline_ms);
    if let Some(n) = ctl.interrupt_after {
        exec = exec.with_interrupt_after(n);
    }
    let dir = results_dir();
    let journal = dir.as_ref().map(|d| JournalConfig {
        dir: d.clone(),
        resume: ctl.resume,
    });
    let res = match exec.run_journaled(spec, journal.as_ref()) {
        Ok(res) => res,
        Err(e) => {
            // Journal I/O failing (read-only results dir, full disk) must
            // not take the sweep down — fall back to an unjournaled run.
            eprintln!(
                "[{}] cell journal unavailable ({e}); running without crash-safety",
                spec.name
            );
            exec.run(spec)
        }
    };
    eprintln!(
        "[{}] {} cell(s) on {} worker(s) in {:.2?}",
        spec.name,
        spec.len(),
        jobs,
        start.elapsed()
    );
    if res.interrupted {
        eprintln!(
            "[{}] interrupted: {} cell(s) not run; journal retained — re-run with --resume \
             (or VIREC_RESUME=1) to pick up where this sweep left off",
            spec.name,
            res.skipped()
        );
        std::process::exit(130);
    }
    if let Some(dir) = dir {
        match res.write_json(&dir) {
            Ok(path) => eprintln!("[{}] wrote {}", spec.name, path.display()),
            Err(e) => eprintln!("[{}] could not write results JSON: {e}", spec.name),
        }
    }
    res
}

/// The context fractions swept throughout the paper's Figures 1, 9, 10.
pub const CTX_FRACTIONS: &[(&str, f64)] =
    &[("40%", 0.4), ("60%", 0.6), ("80%", 0.8), ("100%", 1.0)];

/// A ViReC config storing `frac` of the workload's active context.
pub fn virec_cfg(w: &Workload, nthreads: usize, frac: f64, policy: PolicyKind) -> CoreConfig {
    let mut cfg = CoreConfig::virec_for_context(nthreads, w.active_context_size(), frac);
    cfg.policy = policy;
    cfg
}

/// Single-core layout shortcut.
pub fn layout0() -> Layout {
    Layout::for_core(0)
}

/// Renders an optional cycle count; `None` becomes the failure marker.
pub fn cycles_cell(cycles: Option<u64>) -> String {
    cycles.map_or_else(|| "FAILED".into(), |c| c.to_string())
}

/// Renders an optional float at 3 decimals; `None` becomes `-`.
pub fn opt_f3(x: Option<f64>) -> String {
    x.map(f3).unwrap_or_else(|| "-".into())
}

/// Accumulates derived columns — relative-performance ratios grouped by a
/// label — and renders the geomean rows the figures share (the
/// `push_rel`/geomean logic previously copy-pasted across fig09/10/12).
///
/// Groups are stored in a `BTreeMap`, so any iteration a caller performs
/// is deterministic; the figures themselves index by their own declared
/// label order.
#[derive(Default)]
pub struct RelTracker {
    groups: BTreeMap<String, Vec<f64>>,
}

impl RelTracker {
    /// New empty tracker.
    pub fn new() -> RelTracker {
        RelTracker::default()
    }

    /// Records a raw value under a group.
    pub fn push(&mut self, group: &str, value: f64) {
        self.groups
            .entry(group.to_string())
            .or_default()
            .push(value);
    }

    /// Records and renders the relative performance `base/cycles` (the
    /// paper's "higher is faster" ratio), or `-` when either side of the
    /// ratio is missing (a failed cell).
    pub fn rel_cell(&mut self, group: &str, base: Option<u64>, cycles: Option<u64>) -> String {
        match (base, cycles) {
            (Some(b), Some(c)) if c > 0 => {
                let rp = b as f64 / c as f64;
                self.push(group, rp);
                f3(rp)
            }
            _ => "-".into(),
        }
    }

    /// The recorded values of a group (empty if none).
    pub fn values(&self, group: &str) -> &[f64] {
        self.groups.get(group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Geomean of a group's values, if any were recorded.
    pub fn geomean(&self, group: &str) -> Option<f64> {
        let v = self.values(group);
        if v.is_empty() {
            None
        } else {
            Some(geomean(v))
        }
    }

    /// Renders the geomean, or `-` when the group is empty.
    pub fn geomean_cell(&self, group: &str) -> String {
        opt_f3(self.geomean(group))
    }

    /// Arithmetic mean of a group's values, if any were recorded.
    pub fn mean(&self, group: &str) -> Option<f64> {
        let v = self.values(group);
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

/// An engine selector for the generic suite sweep (`virec-cli sweep`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSel {
    /// Statically banked register file.
    Banked,
    /// Software save/restore context switching.
    Software,
    /// ViReC storing this percentage of the active context.
    Virec(u32),
    /// The NSF baseline (PLRU, no system optimizations) at this
    /// percentage's RF size.
    Nsf(u32),
    /// Full-context register prefetching.
    PrefetchFull,
    /// Oracle exact-context prefetching.
    PrefetchExact,
}

impl EngineSel {
    /// Parses `banked | software | virec<pct> | nsf<pct> | pf_full |
    /// pf_exact` (e.g. `virec80`).
    pub fn parse(s: &str) -> Option<EngineSel> {
        let pct = |rest: &str| -> Option<u32> {
            let p: u32 = rest.parse().ok()?;
            (1..=100).contains(&p).then_some(p)
        };
        Some(match s {
            "banked" => EngineSel::Banked,
            "software" => EngineSel::Software,
            "pf_full" => EngineSel::PrefetchFull,
            "pf_exact" => EngineSel::PrefetchExact,
            _ if s.starts_with("virec") => EngineSel::Virec(pct(&s[5..])?),
            _ if s.starts_with("nsf") => EngineSel::Nsf(pct(&s[3..])?),
            _ => return None,
        })
    }

    /// Stable display label (parseable back by [`EngineSel::parse`]).
    pub fn label(&self) -> String {
        match self {
            EngineSel::Banked => "banked".into(),
            EngineSel::Software => "software".into(),
            EngineSel::Virec(p) => format!("virec{p}"),
            EngineSel::Nsf(p) => format!("nsf{p}"),
            EngineSel::PrefetchFull => "pf_full".into(),
            EngineSel::PrefetchExact => "pf_exact".into(),
        }
    }

    /// The core configuration for this selector on `w` (not used by
    /// [`EngineSel::PrefetchExact`], which runs through the oracle path).
    pub fn cfg(&self, w: &Workload, threads: usize) -> CoreConfig {
        match self {
            EngineSel::Banked => CoreConfig::banked(threads),
            EngineSel::Software => CoreConfig::software(threads),
            EngineSel::Virec(p) => virec_cfg(w, threads, *p as f64 / 100.0, PolicyKind::Lrc),
            EngineSel::Nsf(p) => {
                let sized = virec_cfg(w, threads, *p as f64 / 100.0, PolicyKind::Lrc);
                CoreConfig::nsf(threads, sized.phys_regs)
            }
            EngineSel::PrefetchFull => CoreConfig::prefetch_full(threads, w.active_context_size()),
            EngineSel::PrefetchExact => {
                CoreConfig::prefetch_exact(threads, w.active_context_size())
            }
        }
    }
}

/// A declarative workloads × engines sweep: the grid behind
/// `virec-cli sweep` and the determinism tests. The first engine is the
/// normalization baseline for the relative-performance columns.
pub struct SuiteSweep {
    /// Experiment name (JSON file stem).
    pub name: String,
    /// Suite workload names to sweep.
    pub workloads: Vec<String>,
    /// Engines per workload; `engines[0]` is the ratio baseline.
    pub engines: Vec<EngineSel>,
    /// Problem size.
    pub n: u64,
    /// Hardware threads per core.
    pub threads: usize,
    /// Budget-retry policy.
    pub retry: RetryPolicy,
}

impl SuiteSweep {
    /// Cell key for one (workload, engine) pair.
    pub fn key(&self, workload: &str, engine: &EngineSel) -> String {
        format!("{workload}/{}t/{}", self.threads, engine.label())
    }

    /// Builds the experiment grid. Every swept kernel is preflighted
    /// through the static lint gate first: a malformed or dataflow-dirty
    /// kernel fails fast here instead of burning sweep cycles and
    /// surfacing as a confusing mid-sweep divergence.
    ///
    /// # Panics
    /// Panics on an unknown workload name (callers validate user input
    /// before constructing the sweep) or on a kernel with lint
    /// diagnostics.
    pub fn spec(&self) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(&self.name).with_retry(self.retry);
        spec.set_meta("n", self.n);
        spec.set_meta("threads", self.threads);
        for wname in &self.workloads {
            let w = by_name(wname, self.n, layout0())
                .unwrap_or_else(|| panic!("unknown workload {wname:?}"));
            let diags = virec_verify::lint_program(
                w.program().instrs(),
                &virec_verify::workload_lint_config(&w),
            );
            assert!(
                diags.is_empty(),
                "workload {wname:?} fails the lint gate:\n{}",
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            for engine in &self.engines {
                let key = self.key(wname, engine);
                let build = builder(
                    virec_workloads::SUITE
                        .iter()
                        .find(|(n, _)| n == wname)
                        .expect("validated above")
                        .1,
                    self.n,
                    layout0(),
                );
                match engine {
                    EngineSel::PrefetchExact => spec.prefetch_exact(
                        key,
                        build,
                        self.threads,
                        w.active_context_size(),
                        Default::default(),
                    ),
                    _ => spec.single(
                        key,
                        build,
                        engine.cfg(&w, self.threads),
                        &RunOptions::default(),
                    ),
                }
            }
        }
        spec
    }

    /// Renders the sweep tables (per-cell cycles plus ratio-vs-baseline
    /// columns, then a geomean row per engine) as a deterministic string.
    pub fn render(&self, res: &ExperimentResult) -> String {
        use virec_sim::report::Table;
        let base = &self.engines[0];
        let mut header: Vec<String> = vec!["workload".into(), format!("{}_cyc", base.label())];
        for e in &self.engines[1..] {
            header.push(e.label());
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!(
                "Sweep — relative performance vs {}, {} threads, n={}",
                base.label(),
                self.threads,
                self.n
            ),
            &header_refs,
        );
        let mut rel = RelTracker::new();
        for wname in &self.workloads {
            let base_cycles = res.cycles(&self.key(wname, base));
            let mut row = vec![wname.clone(), cycles_cell(base_cycles)];
            for e in &self.engines[1..] {
                let cycles = res.cycles(&self.key(wname, e));
                row.push(rel.rel_cell(&e.label(), base_cycles, cycles));
            }
            t.row(row);
        }
        let mut out = t.render();
        if self.engines.len() > 1 {
            let mut m = Table::new(
                &format!(
                    "Sweep — geomean relative performance ({} = 1.0, completed runs only)",
                    base.label()
                ),
                &["engine", "geomean"],
            );
            for e in &self.engines[1..] {
                m.row(vec![e.label(), rel.geomean_cell(&e.label())]);
            }
            out.push('\n');
            out.push_str(&m.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_selectors_roundtrip() {
        for s in [
            "banked", "software", "virec40", "virec100", "nsf80", "pf_full", "pf_exact",
        ] {
            let e = EngineSel::parse(s).expect(s);
            assert_eq!(e.label(), s);
        }
        assert_eq!(EngineSel::parse("virec0"), None);
        assert_eq!(EngineSel::parse("virec101"), None);
        assert_eq!(EngineSel::parse("oops"), None);
        assert_eq!(EngineSel::parse("nsfxx"), None);
    }

    #[test]
    fn rel_tracker_records_and_aggregates() {
        let mut r = RelTracker::new();
        assert_eq!(r.rel_cell("a", Some(100), Some(50)), "2.000");
        assert_eq!(r.rel_cell("a", Some(100), Some(200)), "0.500");
        assert_eq!(r.rel_cell("a", None, Some(50)), "-");
        assert_eq!(r.rel_cell("a", Some(100), None), "-");
        assert!((r.geomean("a").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(r.geomean_cell("empty"), "-");
        assert_eq!(r.values("a").len(), 2);
        assert!((r.mean("a").unwrap() - 1.25).abs() < 1e-12);
        assert_eq!(r.mean("empty"), None);
    }

    #[test]
    fn suite_sweep_declares_the_full_grid() {
        let sweep = SuiteSweep {
            name: "unit_sweep".into(),
            workloads: vec!["gather".into(), "reduction".into()],
            engines: vec![EngineSel::Banked, EngineSel::Virec(80)],
            n: 64,
            threads: 4,
            retry: RetryPolicy::default(),
        };
        let spec = sweep.spec();
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.cells()[0].key, "gather/4t/banked");
        assert_eq!(spec.cells()[3].key, "reduction/4t/virec80");
    }
}
