//! Shared harness code for the figure-regeneration binaries.
pub mod harness;
pub mod tune;
