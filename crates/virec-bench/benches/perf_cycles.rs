//! Simulator-throughput trajectory harness (ROADMAP item 1).
//!
//! Measures **simulated cycles per wall-clock second** for the dense
//! cycle-by-cycle loop versus the event-driven (wakeup-scheduled) loop on
//! three canonical workloads under the two headline engines, and writes
//! the snapshot to `BENCH_7.json` at the repo root. The committed
//! snapshot is regenerated in full mode (`VIREC_PERF_FULL=1`); the
//! default quick mode is sized for the CI perf smoke step, which greps
//! that the event-driven loop is at least as fast as the dense loop on
//! the memory-bound workload.
//!
//! Each cell also runs a third leg with the RAS layer enabled (patrol
//! scrubber issuing real fabric traffic, CE tracking, skip horizon capped
//! at the scrub cadence, no faults injected) and writes the RAS snapshot
//! to `BENCH_8.json`; CI greps that the always-on RAS tax stays under 5%
//! of event-loop throughput on the memory-bound workload.
//!
//! A fourth leg re-runs the event loop with the crossbar swapped for a
//! defect-free 2x1 mesh NoC (same far-memory budget split across hops)
//! and writes the snapshot to `BENCH_10.json`; CI greps that modeling
//! the mesh — per-hop flit stepping, CRC at every hop, credit-based flow
//! control — costs under 10% of crossbar event-loop throughput on the
//! memory-bound workload.
//!
//! The memory-bound cell runs `gather` against a far-memory fabric
//! (CXL-class ~400-cycle interconnect hop) — the host-side baseline of
//! PAPER.md Fig. 1, where nearly every cycle is a DRAM stall and cycle
//! skipping pays the most. The other two cells use the default
//! near-memory fabric, where the loop must at least break even.
//!
//! Unlike `figures.rs` this is not a criterion harness: the metric is a
//! ratio of simulated time to wall time, so the harness times whole runs
//! itself (best-of-k) and cross-checks that both loops report the exact
//! same simulated cycle count — the differential guarantee that makes the
//! speedup a pure win.

use std::fmt::Write as _;
use std::time::Instant;
use virec_core::CoreConfig;
use virec_mem::{FabricConfig, FabricTopology};
use virec_sim::runner::{run_single, RunOptions};
use virec_sim::RasConfig;
use virec_workloads::{kernels, Layout, Workload};

/// Far-memory interconnect: a host core reaching across a CXL-class hop.
const FAR_XBAR_LATENCY: u32 = 400;

struct Cell {
    workload: &'static str,
    memory_bound: bool,
    engine: &'static str,
    sim_cycles: u64,
    dense_cps: f64,
    event_cps: f64,
    /// Event-loop throughput with the RAS layer live (patrol scrubber
    /// consuming fabric bandwidth, CE tracking, skip horizon capped at
    /// the scrub cadence) — the steady-state tax of PR-8, with no faults
    /// injected.
    ras_cps: f64,
    ras_sim_cycles: u64,
    /// Event-loop throughput with the crossbar replaced by a defect-free
    /// 2x1 mesh NoC (flit stepping + per-hop CRC + credit flow control)
    /// — the modeling tax of PR-10, with no faults injected.
    mesh_cps: f64,
    mesh_sim_cycles: u64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.event_cps / self.dense_cps
    }

    /// Event-loop throughput retained with RAS enabled (1.0 = free).
    fn ras_retention(&self) -> f64 {
        self.ras_cps / self.event_cps
    }

    /// Event-loop throughput retained on the mesh NoC (1.0 = free).
    fn mesh_retention(&self) -> f64 {
        self.mesh_cps / self.event_cps
    }
}

/// Times `iters` full runs of the four legs (dense, event, event+RAS,
/// event on a mesh NoC) **grouped per leg**: each leg gets one untimed
/// warmup and then `iters` back-to-back timed runs, best-of-k. Grouping
/// keeps every leg's allocator and cache state self-consistent across its
/// timed runs — interleaving heterogeneous legs lets the earlier legs'
/// heap churn leak into whichever leg runs last, which skews the
/// between-leg retention ratios by more than the effects they gate on.
/// Best-of-k already rejects slow machine phases within a leg. Returns
/// (sim cycles, best cycles/sec) per leg.
fn measure(cfg: CoreConfig, w: &Workload, fabric: FabricConfig, iters: u32) -> [(u64, f64); 4] {
    let mesh = FabricConfig {
        topology: FabricTopology::Mesh { cols: 2, rows: 1 },
        ..fabric
    };
    let legs = [
        (true, false, fabric),
        (false, false, fabric),
        (false, true, fabric),
        (false, false, mesh),
    ];
    let opts = legs.map(|(dense, ras, fabric)| RunOptions {
        verify: false, // correctness is covered by tests; keep timing pure
        dense_loop: dense,
        fabric,
        ras: ras.then(RasConfig::default),
        ..RunOptions::default()
    });
    let mut out = [(0u64, 0.0f64); 4];
    for (leg, o) in opts.iter().enumerate() {
        let mut cycles = 0u64;
        let mut best = f64::INFINITY;
        for i in 0..=iters {
            let start = Instant::now();
            let res = std::hint::black_box(run_single(cfg, w, o));
            let secs = start.elapsed().as_secs_f64();
            cycles = res.stats.cycles;
            if i > 0 {
                best = best.min(secs);
            }
        }
        out[leg] = (cycles, cycles as f64 / best);
    }
    out
}

fn main() {
    // `cargo bench -- --test` (the CI bench smoke) forwards flags to every
    // bench target; quick mode is already smoke-test sized, so flags are
    // accepted and ignored.
    let full = std::env::var("VIREC_PERF_FULL").is_ok_and(|v| v == "1");
    let (n, iters) = if full { (65536, 9) } else { (2048, 2) };
    let layout = Layout::for_core(0);
    let far = FabricConfig {
        xbar_latency: FAR_XBAR_LATENCY,
        ..FabricConfig::default()
    };
    let near = FabricConfig::default();
    let workloads = [
        ("gather_far", true, far, kernels::spatter::gather(n, layout)),
        (
            "stream_triad",
            false,
            near,
            kernels::stream::stream_triad(n, layout),
        ),
        (
            "reduction",
            false,
            near,
            kernels::stream::reduction(n, layout),
        ),
    ];
    let engines = [
        ("virec", CoreConfig::virec(4, 32)),
        ("banked", CoreConfig::banked(4)),
    ];

    let mut cells = Vec::new();
    for (wname, memory_bound, fabric, w) in &workloads {
        for (ename, cfg) in engines {
            let [(dense_cycles, dense_cps), (event_cycles, event_cps), (ras_cycles, ras_cps), (mesh_cycles, mesh_cps)] =
                measure(cfg, w, *fabric, iters);
            assert_eq!(
                dense_cycles, event_cycles,
                "{wname}/{ename}: loops disagree on simulated cycles"
            );
            let cell = Cell {
                workload: wname,
                memory_bound: *memory_bound,
                engine: ename,
                sim_cycles: event_cycles,
                dense_cps,
                event_cps,
                ras_cps,
                ras_sim_cycles: ras_cycles,
                mesh_cps,
                mesh_sim_cycles: mesh_cycles,
            };
            println!(
                "perf_cycles {wname:<13} {ename:<7} sim_cycles={:<9} \
                 dense={:.3e} event={:.3e} cycles/sec speedup={:.2}x \
                 ras={:.3e} retention={:.3} mesh={:.3e} mesh_retention={:.3}",
                cell.sim_cycles,
                cell.dense_cps,
                cell.event_cps,
                cell.speedup(),
                cell.ras_cps,
                cell.ras_retention(),
                cell.mesh_cps,
                cell.mesh_retention()
            );
            cells.push(cell);
        }
    }

    // The CI perf smoke step greps this line: on the memory-bound
    // workload the event-driven loop must never lose to the dense loop.
    let ok = cells
        .iter()
        .filter(|c| c.memory_bound)
        .all(|c| c.event_cps >= c.dense_cps);
    println!("memory_bound_speedup_ok={ok}");

    // PR-8 acceptance: the always-on RAS layer (scrubber wakeups + fabric
    // scrub traffic) costs < 5% event-loop throughput on the memory-bound
    // workload. Also grepped by CI. Quick-mode runs finish in tens of
    // milliseconds, where scheduler noise alone exceeds 5%, so the smoke
    // gate only catches gross regressions; the committed BENCH_8.json is
    // held to the real 5% bar in full mode.
    let floor = if full { 0.95 } else { 0.80 };
    let ras_ok = cells
        .iter()
        .filter(|c| c.memory_bound)
        .all(|c| c.ras_retention() >= floor);
    println!("ras_regression_ok={ras_ok}");

    // PR-10 acceptance: modeling the mesh NoC (per-hop flit stepping,
    // CRC at every hop, credit-based flow control) costs < 10% of
    // crossbar event-loop throughput on the memory-bound workload when
    // no defects are injected. Also grepped by CI, with the same relaxed
    // quick-mode floor as the RAS gate.
    let noc_floor = if full { 0.90 } else { 0.75 };
    let noc_ok = cells
        .iter()
        .filter(|c| c.memory_bound)
        .all(|c| c.mesh_retention() >= noc_floor);
    println!("noc_overhead_ok={noc_ok}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, render_json(&cells, full, n, iters)).expect("write BENCH_7.json");
    let path8 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path8, render_ras_json(&cells, full, n, iters)).expect("write BENCH_8.json");
    let path10 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path10, render_noc_json(&cells, full, n, iters)).expect("write BENCH_10.json");
    println!(
        "wrote {path}, {path8} and {path10} ({} mode, n={n})",
        if full { "full" } else { "quick" }
    );
}

fn render_json(cells: &[Cell], full: bool, n: u64, iters: u32) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_cycles\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if full { "full" } else { "quick" }
    );
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"far_xbar_latency\": {FAR_XBAR_LATENCY},");
    let _ = writeln!(
        out,
        "  \"unit\": \"simulated cycles per wall-clock second\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"memory_bound\": {}, \
             \"sim_cycles\": {}, \"dense_cps\": {:.1}, \"event_cps\": {:.1}, \
             \"speedup\": {:.3}}}",
            c.workload,
            c.engine,
            c.memory_bound,
            c.sim_cycles,
            c.dense_cps,
            c.event_cps,
            c.speedup()
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The PR-8 snapshot: event-loop throughput with the RAS layer live,
/// alongside the RAS-off baseline it is held against (< 5% regression on
/// the memory-bound cell).
fn render_ras_json(cells: &[Cell], full: bool, n: u64, iters: u32) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_cycles_ras\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if full { "full" } else { "quick" }
    );
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"baseline\": \"BENCH_7.json (same run, ras off)\",");
    let _ = writeln!(
        out,
        "  \"unit\": \"simulated cycles per wall-clock second\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"memory_bound\": {}, \
             \"ras_sim_cycles\": {}, \"ras_cps\": {:.1}, \"baseline_cps\": {:.1}, \
             \"retention\": {:.3}}}",
            c.workload,
            c.engine,
            c.memory_bound,
            c.ras_sim_cycles,
            c.ras_cps,
            c.event_cps,
            c.ras_retention()
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The PR-10 snapshot: event-loop throughput with the crossbar swapped
/// for a defect-free 2x1 mesh NoC, alongside the crossbar baseline it is
/// held against (< 10% regression on the memory-bound cell). The mesh
/// leg reports its own simulated cycle count — the per-hop latency model
/// legitimately differs from the single-stage crossbar's.
fn render_noc_json(cells: &[Cell], full: bool, n: u64, iters: u32) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_cycles_noc\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if full { "full" } else { "quick" }
    );
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"topology\": \"mesh2x1\",");
    let _ = writeln!(
        out,
        "  \"baseline\": \"BENCH_7.json (same run, crossbar)\","
    );
    let _ = writeln!(
        out,
        "  \"unit\": \"simulated cycles per wall-clock second\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"memory_bound\": {}, \
             \"mesh_sim_cycles\": {}, \"mesh_cps\": {:.1}, \"baseline_cps\": {:.1}, \
             \"retention\": {:.3}}}",
            c.workload,
            c.engine,
            c.memory_bound,
            c.mesh_sim_cycles,
            c.mesh_cps,
            c.event_cps,
            c.mesh_retention()
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
