//! Simulator-throughput trajectory harness (ROADMAP item 1).
//!
//! Measures **simulated cycles per wall-clock second** for the dense
//! cycle-by-cycle loop versus the event-driven (wakeup-scheduled) loop on
//! three canonical workloads under the two headline engines, and writes
//! the snapshot to `BENCH_7.json` at the repo root. The committed
//! snapshot is regenerated in full mode (`VIREC_PERF_FULL=1`); the
//! default quick mode is sized for the CI perf smoke step, which greps
//! that the event-driven loop is at least as fast as the dense loop on
//! the memory-bound workload.
//!
//! The memory-bound cell runs `gather` against a far-memory fabric
//! (CXL-class ~400-cycle interconnect hop) — the host-side baseline of
//! PAPER.md Fig. 1, where nearly every cycle is a DRAM stall and cycle
//! skipping pays the most. The other two cells use the default
//! near-memory fabric, where the loop must at least break even.
//!
//! Unlike `figures.rs` this is not a criterion harness: the metric is a
//! ratio of simulated time to wall time, so the harness times whole runs
//! itself (best-of-k) and cross-checks that both loops report the exact
//! same simulated cycle count — the differential guarantee that makes the
//! speedup a pure win.

use std::fmt::Write as _;
use std::time::Instant;
use virec_core::CoreConfig;
use virec_mem::FabricConfig;
use virec_sim::runner::{run_single, RunOptions};
use virec_workloads::{kernels, Layout, Workload};

/// Far-memory interconnect: a host core reaching across a CXL-class hop.
const FAR_XBAR_LATENCY: u32 = 400;

struct Cell {
    workload: &'static str,
    memory_bound: bool,
    engine: &'static str,
    sim_cycles: u64,
    dense_cps: f64,
    event_cps: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.event_cps / self.dense_cps
    }
}

/// Times `iters` full runs and returns (simulated cycles, best cycles/sec).
fn measure(
    cfg: CoreConfig,
    w: &Workload,
    fabric: FabricConfig,
    dense: bool,
    iters: u32,
) -> (u64, f64) {
    let opts = RunOptions {
        verify: false, // correctness is covered by tests; keep timing pure
        dense_loop: dense,
        fabric,
        ..RunOptions::default()
    };
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    // One untimed warmup, then best-of-k to shrug off scheduler noise.
    for i in 0..=iters {
        let start = Instant::now();
        let res = std::hint::black_box(run_single(cfg, w, &opts));
        let secs = start.elapsed().as_secs_f64();
        cycles = res.stats.cycles;
        if i > 0 {
            best = best.min(secs);
        }
    }
    (cycles, cycles as f64 / best)
}

fn main() {
    // `cargo bench -- --test` (the CI bench smoke) forwards flags to every
    // bench target; quick mode is already smoke-test sized, so flags are
    // accepted and ignored.
    let full = std::env::var("VIREC_PERF_FULL").is_ok_and(|v| v == "1");
    let (n, iters) = if full { (65536, 3) } else { (2048, 2) };
    let layout = Layout::for_core(0);
    let far = FabricConfig {
        xbar_latency: FAR_XBAR_LATENCY,
        ..FabricConfig::default()
    };
    let near = FabricConfig::default();
    let workloads = [
        ("gather_far", true, far, kernels::spatter::gather(n, layout)),
        (
            "stream_triad",
            false,
            near,
            kernels::stream::stream_triad(n, layout),
        ),
        (
            "reduction",
            false,
            near,
            kernels::stream::reduction(n, layout),
        ),
    ];
    let engines = [
        ("virec", CoreConfig::virec(4, 32)),
        ("banked", CoreConfig::banked(4)),
    ];

    let mut cells = Vec::new();
    for (wname, memory_bound, fabric, w) in &workloads {
        for (ename, cfg) in engines {
            let (dense_cycles, dense_cps) = measure(cfg, w, *fabric, true, iters);
            let (event_cycles, event_cps) = measure(cfg, w, *fabric, false, iters);
            assert_eq!(
                dense_cycles, event_cycles,
                "{wname}/{ename}: loops disagree on simulated cycles"
            );
            let cell = Cell {
                workload: wname,
                memory_bound: *memory_bound,
                engine: ename,
                sim_cycles: event_cycles,
                dense_cps,
                event_cps,
            };
            println!(
                "perf_cycles {wname:<13} {ename:<7} sim_cycles={:<9} \
                 dense={:.3e} event={:.3e} cycles/sec speedup={:.2}x",
                cell.sim_cycles,
                cell.dense_cps,
                cell.event_cps,
                cell.speedup()
            );
            cells.push(cell);
        }
    }

    // The CI perf smoke step greps this line: on the memory-bound
    // workload the event-driven loop must never lose to the dense loop.
    let ok = cells
        .iter()
        .filter(|c| c.memory_bound)
        .all(|c| c.event_cps >= c.dense_cps);
    println!("memory_bound_speedup_ok={ok}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, render_json(&cells, full, n, iters)).expect("write BENCH_7.json");
    println!(
        "wrote {} ({} mode, n={n})",
        path,
        if full { "full" } else { "quick" }
    );
}

fn render_json(cells: &[Cell], full: bool, n: u64, iters: u32) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_cycles\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if full { "full" } else { "quick" }
    );
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"far_xbar_latency\": {FAR_XBAR_LATENCY},");
    let _ = writeln!(
        out,
        "  \"unit\": \"simulated cycles per wall-clock second\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"memory_bound\": {}, \
             \"sim_cycles\": {}, \"dense_cps\": {:.1}, \"event_cps\": {:.1}, \
             \"speedup\": {:.3}}}",
            c.workload,
            c.engine,
            c.memory_bound,
            c.sim_cycles,
            c.dense_cps,
            c.event_cps,
            c.speedup()
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
