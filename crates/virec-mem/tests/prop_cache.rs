//! Property tests for the cache and fabric: arbitrary access sequences must
//! preserve structural invariants, drain all outstanding state, and agree
//! with a simple residency model.

use proptest::prelude::*;
use std::collections::HashSet;
use virec_mem::{AccessKind, AccessResult, Cache, CacheConfig, Fabric, FabricConfig};

fn small_cache() -> Cache {
    Cache::new(
        CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            hit_latency: 2,
            mshrs: 6,
            read_ports: 2,
            write_ports: 2,
        },
        0,
    )
}

#[derive(Clone, Debug)]
struct Step {
    addr_line: u8,
    kind_sel: u8,
}

fn kind_of(sel: u8) -> AccessKind {
    match sel % 5 {
        0 => AccessKind::DataLoad,
        1 => AccessKind::DataStore,
        2 => AccessKind::RegFill,
        3 => AccessKind::RegSpill,
        _ => AccessKind::IFetch,
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..64, 0u8..255).prop_map(|(addr_line, kind_sel)| Step {
        addr_line,
        kind_sel,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any access sequence: invariants hold at every step, every MSHR
    /// eventually completes, and pins stay bounded.
    #[test]
    fn random_accesses_preserve_invariants(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut cache = small_cache();
        let mut fabric = Fabric::new(FabricConfig::default());
        let mut now = 0u64;
        let mut outstanding: Vec<u64> = Vec::new();
        let mut fills = 0i64;
        let mut spills = 0i64;

        for s in &steps {
            let addr = s.addr_line as u64 * 64;
            let kind = kind_of(s.kind_sel);
            match cache.access(now, addr, kind, &mut fabric) {
                AccessResult::Hit { ready_at } => prop_assert!(ready_at > now),
                AccessResult::Miss { mshr } => outstanding.push(mshr),
                AccessResult::NoMshr | AccessResult::NoPort => {}
            }
            if kind == AccessKind::RegFill { fills += 1 } else if kind == AccessKind::RegSpill { spills += 1 }
            cache.check_invariants();
            fabric.tick(now);
            cache.tick(now, &mut fabric);
            now += 1;
        }

        // Drain: every MSHR completes within a bounded horizon.
        let deadline = now + 100_000;
        let unique: HashSet<u64> = outstanding.iter().copied().collect();
        let mut remaining: Vec<u64> = unique.into_iter().collect();
        while !remaining.is_empty() {
            prop_assert!(now < deadline, "MSHRs failed to drain");
            fabric.tick(now);
            cache.tick(now, &mut fabric);
            remaining.retain(|&m| {
                !cache.mshr_ready(m, now)
            });
            now += 1;
        }
        // Retire every merged requester exactly once per Miss result.
        for m in outstanding {
            if cache.mshr_ready(m, now) {
                cache.mshr_retire(m).unwrap();
            }
        }
        cache.check_invariants();
        let _ = (fills, spills);
    }

    /// A line brought in by a load hits on an immediate re-access (no
    /// interleaving evictions possible with a single line in flight).
    #[test]
    fn fill_then_hit(line in 0u8..255) {
        let addr = line as u64 * 64;
        let mut cache = small_cache();
        let mut fabric = Fabric::new(FabricConfig::default());
        let mut now = 0;
        let mshr = match cache.access(now, addr, AccessKind::DataLoad, &mut fabric) {
            AccessResult::Miss { mshr } => mshr,
            other => { prop_assert!(false, "cold access must miss, got {other:?}"); unreachable!() }
        };
        while !cache.mshr_ready(mshr, now) {
            fabric.tick(now);
            cache.tick(now, &mut fabric);
            now += 1;
            prop_assert!(now < 10_000);
        }
        cache.mshr_retire(mshr).unwrap();
        let r = cache.access(now, addr, AccessKind::DataLoad, &mut fabric);
        prop_assert!(matches!(r, AccessResult::Hit { .. }), "{r:?}");
    }

    /// Fabric requests always complete, in bounded time, regardless of the
    /// address mix, and `outstanding` returns to zero.
    #[test]
    fn fabric_always_drains(addrs in prop::collection::vec(0u64..1u64<<24, 1..64)) {
        let mut fabric = Fabric::new(FabricConfig::default());
        let tokens: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| fabric.submit(0, 0, a & !63, i % 3 == 0))
            .collect();
        let mut now = 0;
        while tokens.iter().any(|&t| !fabric.is_done(t, now)) {
            fabric.tick(now);
            now += 1;
            prop_assert!(now < 500_000, "fabric wedged");
        }
        prop_assert_eq!(fabric.outstanding(), 0);
        for t in tokens {
            fabric.retire(t);
        }
        let s = fabric.stats();
        prop_assert_eq!((s.reads + s.writes) as usize, addrs.len());
    }

    /// Pin counters never underflow and pinned lines survive any amount of
    /// conflicting traffic.
    #[test]
    fn pinned_line_is_immortal(traffic in prop::collection::vec(0u8..32, 1..80)) {
        let mut cache = small_cache();
        let mut fabric = Fabric::new(FabricConfig::default());
        let mut now = 0u64;
        // Pin line 0 (set 0).
        let pinned_addr = 0u64;
        loop {
            match cache.access(now, pinned_addr, AccessKind::RegFill, &mut fabric) {
                AccessResult::Hit { .. } => break,
                AccessResult::Miss { mshr } => {
                    while !cache.mshr_ready(mshr, now) {
                        fabric.tick(now);
                        cache.tick(now, &mut fabric);
                        now += 1;
                    }
                    cache.mshr_retire(mshr).unwrap();
                }
                _ => { now += 1; }
            }
        }
        prop_assert!(cache.pin_count(pinned_addr) >= 1);
        // Storm of conflicting data accesses (same set: stride = sets*64).
        let set_stride = 8 * 64; // 1024B/2-way/64B = 8 sets
        for &t in &traffic {
            let addr = (1 + t as u64) * set_stride; // set 0, different tags
            let _ = cache.access(now, addr, AccessKind::DataLoad, &mut fabric);
            fabric.tick(now);
            cache.tick(now, &mut fabric);
            now += 1;
        }
        for _ in 0..5_000 {
            fabric.tick(now);
            cache.tick(now, &mut fabric);
            now += 1;
        }
        prop_assert!(cache.contains_line(pinned_addr), "pinned line evicted");
        cache.check_invariants();
    }
}
