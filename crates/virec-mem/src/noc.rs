//! Fault-tolerant 2D-mesh network-on-chip (DESIGN §4k).
//!
//! The [`crate::Fabric`] grows from the idealised single-hop crossbar into a
//! configurable mesh behind [`FabricTopology`]: cores and the memory
//! controller occupy mesh nodes with real coordinates, requests traverse
//! XY-routed hops with per-link bandwidth, bounded per-node buffers under
//! credit-based flow control (one virtual channel per message class, so
//! requests and responses can never deadlock each other), and a CRC-16
//! checked at every hop.
//!
//! ## Fault tolerance
//!
//! * **Link-level CRC/retransmission** — a flit corrupted on a link fails
//!   its CRC check at the receiving router, which nacks it; the sender keeps
//!   the flit buffered and retransmits after a bounded geometric backoff
//!   ([`LinkRetryPolicy`], echoing the sweep layer's `RetryPolicy` shape).
//! * **Adaptive route-around** — a link the RAS layer retires is removed
//!   from service and per-destination routes are recomputed over the
//!   surviving links (BFS trees explored in the fixed E,S,W,N order, the
//!   XY turn preference, so the route set stays cycle-free per
//!   destination); in-flight flits pick up the new table at their next hop.
//! * **Degraded-link fencing** — when retiring a link would disconnect a
//!   node from the memory controller, the link is *fenced* instead: it
//!   stays in service at half bandwidth with the defect masked by the
//!   degraded encoding, trading throughput for availability.
//! * **NoC watchdog** — every flit carries its injection cycle; a flit
//!   older than [`MAX_FLIT_AGE`] (or one that exhausts its retransmission
//!   budget) latches a fault the run loop surfaces as a typed `SimError`,
//!   so a routing bug or a dead link can never hang a run silently.
//!
//! Everything is exact-cycle: retransmission timers, credit returns and hop
//! arrivals all surface through [`Noc::next_event`], so the event-driven
//! run loops stay byte-identical to the dense reference loop.

use crate::fabric::{FabricStats, PortId, ReqToken};
use std::str::FromStr;

/// Interconnect topology of the [`crate::Fabric`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FabricTopology {
    /// The idealised single-hop crossbar — the default, byte-identical to
    /// the pre-NoC simulator.
    #[default]
    Crossbar,
    /// A `cols` × `rows` 2D mesh. The memory controller occupies the
    /// highest-numbered node; cores are distributed over the remaining
    /// nodes round-robin (both cache ports of a core share its node).
    Mesh {
        /// Mesh width (≥ 1; `cols * rows` must be ≥ 2).
        cols: usize,
        /// Mesh height (≥ 1).
        rows: usize,
    },
}

impl std::fmt::Display for FabricTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricTopology::Crossbar => f.write_str("crossbar"),
            FabricTopology::Mesh { cols, rows } => write!(f, "mesh{cols}x{rows}"),
        }
    }
}

impl FromStr for FabricTopology {
    type Err = String;
    fn from_str(s: &str) -> Result<FabricTopology, String> {
        if s == "crossbar" {
            return Ok(FabricTopology::Crossbar);
        }
        let dims = s.strip_prefix("mesh").unwrap_or(s);
        if let Some((c, r)) = dims.split_once('x') {
            if let (Ok(cols), Ok(rows)) = (c.parse::<usize>(), r.parse::<usize>()) {
                if cols >= 1 && rows >= 1 && cols * rows >= 2 {
                    return Ok(FabricTopology::Mesh { cols, rows });
                }
            }
        }
        Err(format!(
            "unknown topology '{s}' (expected 'crossbar' or 'mesh<C>x<R>' with C*R >= 2, \
             e.g. mesh2x2)"
        ))
    }
}

/// Bounded retransmission policy for nacked flits: geometric backoff from
/// `timeout`, doubling per retry up to `timeout * scale_cap`, at most
/// `max_retries` attempts before the NoC watchdog declares the link dead.
/// Echoes the shape of the sweep layer's `RetryPolicy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRetryPolicy {
    /// Retransmissions allowed per hop before the watchdog fires.
    pub max_retries: u32,
    /// Base retransmission timeout in cycles.
    pub timeout: u64,
    /// Cap on the geometric backoff multiplier.
    pub scale_cap: u64,
}

impl Default for LinkRetryPolicy {
    fn default() -> LinkRetryPolicy {
        LinkRetryPolicy {
            max_retries: 8,
            timeout: 32,
            scale_cap: 8,
        }
    }
}

impl LinkRetryPolicy {
    /// Backoff before retry `n` (1-based): `timeout * min(2^(n-1), scale_cap)`.
    pub fn backoff(&self, retry: u32) -> u64 {
        let scale = 1u64
            .checked_shl(retry.saturating_sub(1))
            .unwrap_or(self.scale_cap)
            .min(self.scale_cap);
        self.timeout * scale
    }
}

/// In-flight flit age (cycles) beyond which the NoC watchdog latches a
/// deadlock/livelock fault — generous against worst-case backoff chains,
/// tiny against run budgets.
pub const MAX_FLIT_AGE: u64 = 100_000;

/// Per-node input-buffer capacity in flits for each virtual channel (the
/// credit pool a sender draws from). Requests and responses ride separate
/// virtual channels with independent pools, which breaks the classic
/// request/response protocol deadlock on a congested mesh.
pub const NODE_BUF_FLITS: u32 = 4;

/// CRC-16/CCITT-FALSE over `data` — the per-flit check the receiving
/// router recomputes at every hop.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// How a link retirement was absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkRetireOutcome {
    /// The link left service and traffic was re-routed over surviving
    /// links (route tables recomputed).
    Rerouted,
    /// Removing the link would disconnect a node from the memory
    /// controller: the link is fenced instead — half bandwidth, defect
    /// masked — and stays in service.
    Fenced,
}

/// Link-population health counts (for availability accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Fully healthy in-service links.
    pub healthy: usize,
    /// Retired (routed-around, out of service) links.
    pub retired: usize,
    /// Fenced (in service at half bandwidth) links.
    pub fenced: usize,
    /// Total directed links in the mesh.
    pub total: usize,
}

/// Direction encoding: the fixed E,S,W,N exploration order is the XY turn
/// preference and keeps route recomputation deterministic.
const DIRS: usize = 4;
const EAST: usize = 0;
const SOUTH: usize = 1;
const WEST: usize = 2;
const NORTH: usize = 3;

#[derive(Clone, Copy, Debug)]
struct Link {
    from: usize,
    to: usize,
    /// Channel occupied through this cycle (bandwidth: one flit per
    /// `1` cycle healthy, per `2` cycles fenced).
    busy_until: u64,
    /// Outstanding injected upsets: each corrupts one flit crossing the
    /// link (consumed at traversal, caught by the receiver's CRC).
    corrupt_pending: u32,
    retired: bool,
    fenced: bool,
}

#[derive(Clone, Copy, Debug)]
struct Flit {
    seq: u64,
    token: ReqToken,
    addr: u64,
    is_write: bool,
    is_resp: bool,
    port: PortId,
    dest: usize,
    at_node: usize,
    next_action: u64,
    born: u64,
    retries: u32,
    crc: u16,
    /// True while the flit sits starved of a downstream buffer credit
    /// (the only state that would otherwise poll per-cycle). A parked
    /// flit is skipped with one comparison per tick until
    /// `parked_until`, or sooner if any of the generation stamps below
    /// go stale — every event that could unblock it (a credit released
    /// at the starved next-hop or at its destination, a link retired or
    /// fenced, a pending upset consumed) bumps the matching counter.
    blocked: bool,
    /// Exact earliest cycle the parked flit could possibly act again
    /// (see [`Noc::blocked_bound`]); the poll resumes there.
    parked_until: u64,
    /// `occupied` index of the starved next-hop buffer at park time.
    park_hop: usize,
    /// [`Noc::occ_gen`] stamps for the next-hop and destination buffers,
    /// and the [`Noc::topo_gen`] stamp, captured at park time.
    park_gen_hop: u64,
    park_gen_dest: u64,
    park_gen_topo: u64,
}

impl Flit {
    fn payload(&self) -> [u8; 18] {
        let mut p = [0u8; 18];
        p[..8].copy_from_slice(&self.token.to_le_bytes());
        p[8..16].copy_from_slice(&self.addr.to_le_bytes());
        p[16] = self.is_write as u8;
        p[17] = self.is_resp as u8;
        p
    }
}

/// A response scheduled for injection at the memory-controller node once
/// its DRAM data burst completes.
#[derive(Clone, Copy, Debug)]
struct RespInjection {
    at: u64,
    token: ReqToken,
    addr: u64,
    port: PortId,
}

/// A request flit delivered to the memory controller, ready for bank
/// scheduling.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeliveredReq {
    pub token: ReqToken,
    pub addr: u64,
    pub is_write: bool,
    pub port: PortId,
    pub submitted: u64,
}

/// The mesh NoC state machine embedded in [`crate::Fabric`] when the
/// topology is [`FabricTopology::Mesh`].
#[derive(Clone)]
pub(crate) struct Noc {
    cols: usize,
    rows: usize,
    hop_latency: u64,
    retry: LinkRetryPolicy,
    links: Vec<Link>,
    /// Per node, link id leaving in each direction (E,S,W,N).
    adj: Vec<[Option<usize>; DIRS]>,
    /// Recomputed route table (`route[src * nnodes + dst]` = direction),
    /// used only after the first retirement; `255` = unroutable.
    route: Vec<u8>,
    /// False until the first retirement: defect-free meshes route pure XY.
    rerouted: bool,
    flits: Vec<Flit>,
    resp_inj: Vec<RespInjection>,
    /// Per-node, per-virtual-channel input-buffer occupancy (the credit
    /// state), indexed `node * 2 + vc` with vc 0 = request, 1 = response.
    /// Separate credit pools per message class break the classic
    /// request/response protocol deadlock: requests parked toward the
    /// memory controller can never starve the responses draining away
    /// from it of buffer space, and vice versa.
    occupied: Vec<u32>,
    /// Release-generation stamp per `occupied` slot: bumped whenever the
    /// slot's occupancy drops (a credit frees). Parked flits compare
    /// their captured stamps to detect exactly the events that could
    /// unblock them.
    occ_gen: Vec<u64>,
    /// Topology-generation stamp: bumped on link retirement/fencing
    /// (route tables change) and on a pending upset being consumed (the
    /// express window can open early). Any bump resumes parked polls.
    topo_gen: u64,
    next_seq: u64,
    /// Cached earliest effective wake across flits and pending response
    /// injections: `Some(w)` proves [`Noc::tick`] is a no-op for every
    /// cycle before `w` (`u64::MAX` = nothing in flight), so the
    /// per-wakeup fabric tick skips the flit scan entirely when the
    /// wakeup belongs to another component. `None` = state changed,
    /// rescan. Interior-mutable so `next_event(&self)` can refresh it.
    wake: std::cell::Cell<Option<u64>>,
    /// Latched watchdog fault (flit age cap or retry exhaustion).
    fault: Option<String>,
    pub(crate) delivered_req: Vec<DeliveredReq>,
    pub(crate) delivered_resp: Vec<(ReqToken, u64)>,
}

impl Noc {
    pub(crate) fn new(cols: usize, rows: usize, xbar_latency: u32) -> Noc {
        assert!(
            cols >= 1 && rows >= 1 && cols * rows >= 2,
            "mesh needs at least 2 nodes (got {cols}x{rows})"
        );
        let n = cols * rows;
        let mut links = Vec::new();
        let mut adj = vec![[None; DIRS]; n];
        for (node, slots) in adj.iter_mut().enumerate() {
            let (x, y) = (node % cols, node / cols);
            let mut push = |dir: usize, to: usize| {
                slots[dir] = Some(links.len());
                links.push(Link {
                    from: node,
                    to,
                    busy_until: 0,
                    corrupt_pending: 0,
                    retired: false,
                    fenced: false,
                });
            };
            if x + 1 < cols {
                push(EAST, node + 1);
            }
            if y + 1 < rows {
                push(SOUTH, node + cols);
            }
            if x > 0 {
                push(WEST, node - 1);
            }
            if y > 0 {
                push(NORTH, node - cols);
            }
        }
        Noc {
            cols,
            rows,
            // The crossbar's one-way hop is amortised over the mesh
            // diameter ((cols-1) + (rows-1) hops corner to corner) so the
            // farthest node sees the crossbar's unloaded latency and
            // closer nodes proportionally less.
            hop_latency: (xbar_latency as u64 / ((cols + rows).saturating_sub(2) as u64).max(1))
                .max(1),
            retry: LinkRetryPolicy::default(),
            links,
            adj,
            route: vec![255u8; n * n],
            rerouted: false,
            flits: Vec::new(),
            resp_inj: Vec::new(),
            occupied: vec![0; n * 2],
            occ_gen: vec![0; n * 2],
            topo_gen: 0,
            next_seq: 0,
            wake: std::cell::Cell::new(None),
            fault: None,
            delivered_req: Vec::new(),
            delivered_resp: Vec::new(),
        }
    }

    fn nnodes(&self) -> usize {
        self.cols * self.rows
    }

    /// The memory controller's node (highest-numbered).
    pub(crate) fn mc_node(&self) -> usize {
        self.nnodes() - 1
    }

    /// Mesh node of a cache port: both ports of core `c` (`2c`, `2c+1`)
    /// share core `c`'s node, cores round-robin over the non-MC nodes.
    pub(crate) fn node_of_port(&self, port: PortId) -> usize {
        let core_nodes = self.nnodes() - 1;
        if core_nodes == 0 {
            0
        } else {
            (port / 2) % core_nodes
        }
    }

    /// `(x, y)` mesh coordinate of `node`.
    pub(crate) fn coord(&self, node: usize) -> (usize, usize) {
        (node % self.cols, node / self.cols)
    }

    pub(crate) fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    pub(crate) fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    pub(crate) fn link_health(&self) -> LinkHealth {
        let mut h = LinkHealth {
            total: self.links.len(),
            ..LinkHealth::default()
        };
        for l in &self.links {
            if l.retired {
                h.retired += 1;
            } else if l.fenced {
                h.fenced += 1;
            } else {
                h.healthy += 1;
            }
        }
        h
    }

    /// Number of flits currently inside the network (for tests).
    pub(crate) fn in_network(&self) -> usize {
        self.flits.len()
    }

    /// Total buffered-flit credits currently held (must drain to zero).
    pub(crate) fn credits_held(&self) -> u32 {
        self.occupied.iter().sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn(
        &mut self,
        now: u64,
        token: ReqToken,
        addr: u64,
        is_write: bool,
        is_resp: bool,
        port: PortId,
        at_node: usize,
        dest: usize,
        stats: &mut FabricStats,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut f = Flit {
            seq,
            token,
            addr,
            is_write,
            is_resp,
            port,
            dest,
            at_node,
            next_action: now + 1,
            born: now,
            retries: 0,
            crc: 0,
            blocked: false,
            parked_until: 0,
            park_hop: 0,
            park_gen_hop: 0,
            park_gen_dest: 0,
            park_gen_topo: 0,
        };
        f.crc = crc16(&f.payload());
        self.occupied[at_node * 2 + is_resp as usize] += 1;
        self.flits.push(f);
        self.wake.set(None);
        // A flit born onto a clean, idle path leaves immediately — one
        // run-loop wakeup at its destination instead of one per hop.
        let idx = self.flits.len() - 1;
        self.try_express(idx, now, stats);
    }

    /// Tries to express-route flit `i` at cycle `now`: when every link on
    /// its remaining path is healthy (not fenced), idle, and carrying no
    /// pending upset, and the destination buffer has a credit, the whole
    /// path is reserved in one action — each link's bandwidth window is
    /// claimed at the cycle the flit would have entered it hop by hop —
    /// and the flit wakes only at its destination. Returns whether the
    /// reservation committed; any contention, fenced link, or pending
    /// corruption leaves the flit to exact per-hop stepping, where the
    /// CRC/retransmission machinery lives.
    fn try_express(&mut self, i: usize, now: u64, stats: &mut FabricStats) -> bool {
        let f = self.flits[i];
        let vc = f.is_resp as usize;
        if f.at_node == f.dest || self.occupied[f.dest * 2 + vc] >= NODE_BUF_FLITS {
            return false;
        }
        // Two allocation-free walks over the route: validate the whole
        // path, then (only on success) reserve it. Both follow the same
        // tables, so they visit identical links.
        let mut node = f.at_node;
        let mut len = 0usize;
        while node != f.dest {
            if len > self.nnodes() {
                return false;
            }
            let Some(dir) = self.dir_toward(node, f.dest) else {
                return false;
            };
            let lid = self.adj[node][dir].expect("route follows an existing link");
            let link = &self.links[lid];
            if link.fenced || link.corrupt_pending != 0 || link.busy_until > now {
                return false;
            }
            node = link.to;
            len += 1;
        }
        if len == 0 {
            return false;
        }
        let mut node = f.at_node;
        let mut k = 0u64;
        while node != f.dest {
            let dir = self.dir_toward(node, f.dest).expect("validated walk");
            let lid = self.adj[node][dir].expect("route follows an existing link");
            self.links[lid].busy_until = now + k * self.hop_latency + 1;
            node = self.links[lid].to;
            k += 1;
        }
        let path_len = len;
        self.occupied[f.dest * 2 + vc] += 1;
        self.occupied[f.at_node * 2 + vc] -= 1;
        self.occ_gen[f.at_node * 2 + vc] += 1;
        stats.noc_hops += path_len as u64;
        self.flits[i].at_node = f.dest;
        self.flits[i].retries = 0;
        self.flits[i].next_action = now + path_len as u64 * self.hop_latency;
        self.flits[i].blocked = false;
        true
    }

    pub(crate) fn inject_request(
        &mut self,
        now: u64,
        port: PortId,
        token: ReqToken,
        addr: u64,
        is_write: bool,
        stats: &mut FabricStats,
    ) {
        let (src, dst) = (self.node_of_port(port), self.mc_node());
        self.spawn(now, token, addr, is_write, false, port, src, dst, stats);
    }

    pub(crate) fn schedule_response(&mut self, at: u64, token: ReqToken, addr: u64, port: PortId) {
        self.resp_inj.push(RespInjection {
            at,
            token,
            addr,
            port,
        });
        self.wake.set(None);
    }

    /// Injects one upset onto the link selected by `index` (modulo the link
    /// population). Returns the link id, or `None` when the link is already
    /// out of service (retired) or masked (fenced) — nothing to corrupt.
    pub(crate) fn inject_link_fault(&mut self, index: u64) -> Option<usize> {
        if self.links.is_empty() {
            return None;
        }
        let l = (index % self.links.len() as u64) as usize;
        if self.links[l].retired || self.links[l].fenced {
            return None;
        }
        self.links[l].corrupt_pending += 1;
        self.wake.set(None);
        Some(l)
    }

    /// Retires `link` (route-around) or fences it (half bandwidth) when no
    /// surviving route exists. Idempotent.
    pub(crate) fn retire_link(
        &mut self,
        link: usize,
        stats: &mut FabricStats,
    ) -> LinkRetireOutcome {
        let link = link % self.links.len().max(1);
        if self.links[link].retired {
            return LinkRetireOutcome::Rerouted;
        }
        if self.links[link].fenced {
            return LinkRetireOutcome::Fenced;
        }
        self.links[link].retired = true;
        self.topo_gen += 1;
        self.wake.set(None);
        if self.fully_connected() {
            self.links[link].corrupt_pending = 0;
            self.recompute_routes();
            self.rerouted = true;
            stats.noc_links_retired += 1;
            LinkRetireOutcome::Rerouted
        } else {
            // No surviving route: fence instead — the link keeps carrying
            // traffic at half bandwidth with the defect masked by the
            // degraded encoding.
            self.links[link].retired = false;
            self.links[link].fenced = true;
            self.links[link].corrupt_pending = 0;
            stats.noc_links_fenced += 1;
            LinkRetireOutcome::Fenced
        }
    }

    /// Every node can still reach every other over non-retired links.
    fn fully_connected(&self) -> bool {
        let n = self.nnodes();
        for dst in 0..n {
            let reach = self.bfs_to(dst);
            if (0..n).any(|u| u != dst && reach[u] == 255) {
                return false;
            }
        }
        true
    }

    /// BFS in-tree toward `dst`: for every node, the direction of its
    /// first hop on a shortest surviving path (255 = unreachable).
    /// Deterministic: nodes are expanded in discovery order and neighbors
    /// probed in the fixed E,S,W,N order.
    fn bfs_to(&self, dst: usize) -> Vec<u8> {
        let n = self.nnodes();
        let mut dir_of = vec![255u8; n];
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        seen[dst] = true;
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            // Incoming edges u -> v: u is v's neighbor in direction d, and
            // the edge from u back toward v is the reverse direction.
            for d in [EAST, SOUTH, WEST, NORTH] {
                let Some(out) = self.adj[v][d] else { continue };
                let u = self.links[out].to;
                if seen[u] {
                    continue;
                }
                let back = [WEST, NORTH, EAST, SOUTH][d];
                let Some(into_v) = self.adj[u][back] else {
                    continue;
                };
                if self.links[into_v].retired {
                    continue;
                }
                seen[u] = true;
                dir_of[u] = back as u8;
                queue.push_back(u);
            }
        }
        dir_of
    }

    fn recompute_routes(&mut self) {
        let n = self.nnodes();
        for dst in 0..n {
            let tree = self.bfs_to(dst);
            for (u, &d) in tree.iter().enumerate() {
                self.route[u * n + dst] = d;
            }
        }
    }

    /// Next-hop direction from `at` toward `dst`: pure XY while the mesh is
    /// defect-free, the recomputed table after the first retirement.
    fn dir_toward(&self, at: usize, dst: usize) -> Option<usize> {
        if self.rerouted {
            let d = self.route[at * self.nnodes() + dst];
            return (d != 255).then_some(d as usize);
        }
        let ((ax, ay), (dx, dy)) = (self.coord(at), self.coord(dst));
        if ax < dx {
            Some(EAST)
        } else if ax > dx {
            Some(WEST)
        } else if ay < dy {
            Some(SOUTH)
        } else if ay > dy {
            Some(NORTH)
        } else {
            None
        }
    }

    /// The full remaining link path from `at` to `dst` along the current
    /// route tables, or `None` if any step is unroutable (or the tables
    /// are somehow cyclic — bounded by the node count).
    fn path_to(&self, at: usize, dst: usize) -> Option<Vec<usize>> {
        let mut path = Vec::with_capacity(self.cols + self.rows);
        let mut node = at;
        while node != dst {
            if path.len() > self.nnodes() {
                return None;
            }
            let dir = self.dir_toward(node, dst)?;
            let lid = self.adj[node][dir].expect("route follows an existing link");
            path.push(lid);
            node = self.links[lid].to;
        }
        Some(path)
    }

    /// Advances the NoC to cycle `now`: spawns due responses, then gives
    /// every flit whose action time has arrived one step (forward a hop,
    /// retry after a nack, or deliver). A flit whose whole remaining path
    /// is healthy, idle and un-sabotaged instead reserves every link in
    /// one action (express virtual cut-through) and wakes only at the
    /// destination — same per-link bandwidth windows, far fewer run-loop
    /// wakeups. Deterministic: flits act in sequence order, and every
    /// state change is keyed to absolute cycles, so dense and
    /// event-driven loops are byte-identical.
    pub(crate) fn tick(&mut self, now: u64, stats: &mut FabricStats) {
        // The fabric ticks the NoC at *every* system wakeup, most of
        // which belong to banks or cores. When the cached wake proves no
        // flit or response injection is due yet, the whole scan is a
        // no-op — return without touching anything.
        if let Some(w) = self.wake.get() {
            if now < w {
                return;
            }
        }
        let mut i = 0;
        while i < self.resp_inj.len() {
            if self.resp_inj[i].at <= now {
                let r = self.resp_inj.remove(i);
                let dest = self.node_of_port(r.port);
                let mc = self.mc_node();
                self.spawn(r.at, r.token, r.addr, false, true, r.port, mc, dest, stats);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.flits.len() {
            if self.flits[i].next_action > now {
                i += 1;
                continue;
            }
            {
                // Parked fast path: a credit-starved flit whose stamps are
                // intact provably cannot act before `parked_until` — skip
                // the full routing retry (which is what makes per-cycle
                // credit polling affordable at mesh scale).
                let f = &self.flits[i];
                if f.blocked
                    && now < f.parked_until
                    && self.occ_gen[f.park_hop] == f.park_gen_hop
                    && self.occ_gen[f.dest * 2 + f.is_resp as usize] == f.park_gen_dest
                    && self.topo_gen == f.park_gen_topo
                {
                    i += 1;
                    continue;
                }
            }
            let f = self.flits[i];
            if now.saturating_sub(f.born) > MAX_FLIT_AGE && self.fault.is_none() {
                self.fault = Some(format!(
                    "noc watchdog: flit {} (token {}) aged {} cycles at node {} (dest {})",
                    f.seq,
                    f.token,
                    now - f.born,
                    f.at_node,
                    f.dest
                ));
            }
            if f.at_node == f.dest {
                // Egress: deliver and release the buffer credit.
                let slot = f.at_node * 2 + f.is_resp as usize;
                self.occupied[slot] -= 1;
                self.occ_gen[slot] += 1;
                if f.is_resp {
                    self.delivered_resp.push((f.token, now));
                } else {
                    self.delivered_req.push(DeliveredReq {
                        token: f.token,
                        addr: f.addr,
                        is_write: f.is_write,
                        port: f.port,
                        submitted: f.born,
                    });
                }
                self.flits.remove(i);
                continue;
            }
            if self.try_express(i, now, stats) {
                i += 1;
                continue;
            }
            let Some(dir) = self.dir_toward(f.at_node, f.dest) else {
                // Unroutable (should be unreachable: fencing preserves
                // connectivity) — park and let the watchdog surface it.
                self.flits[i].next_action = now + self.retry.timeout;
                self.flits[i].blocked = false;
                i += 1;
                continue;
            };
            let lid = self.adj[f.at_node][dir].expect("route follows an existing link");
            let link = self.links[lid];
            let span: u64 = if link.fenced { 2 } else { 1 };
            if link.busy_until > now {
                // Channel occupied: wake exactly when it frees.
                self.flits[i].next_action = link.busy_until;
                self.flits[i].blocked = false;
                i += 1;
                continue;
            }
            if self.occupied[link.to * 2 + f.is_resp as usize] >= NODE_BUF_FLITS {
                // No credit downstream: park until the earliest cycle the
                // retry could possibly succeed. The generation stamps
                // resume the poll immediately if any relevant state
                // changes first, so this is exactly the per-cycle poll
                // with the provably fruitless retries skipped.
                let hop_slot = link.to * 2 + f.is_resp as usize;
                let dest_slot = f.dest * 2 + f.is_resp as usize;
                self.flits[i].next_action = now + 1;
                self.flits[i].blocked = true;
                self.flits[i].parked_until = self.blocked_bound(&f, now);
                self.flits[i].park_hop = hop_slot;
                self.flits[i].park_gen_hop = self.occ_gen[hop_slot];
                self.flits[i].park_gen_dest = self.occ_gen[dest_slot];
                self.flits[i].park_gen_topo = self.topo_gen;
                i += 1;
                continue;
            }
            if self.links[lid].corrupt_pending > 0 {
                // The link corrupts the flit in transit; the receiving
                // router's CRC catches it and nacks. The sender keeps its
                // copy and retransmits after a bounded backoff.
                self.links[lid].corrupt_pending -= 1;
                self.topo_gen += 1;
                let mut received = f.payload();
                received[8 + ((f.seq as usize) % 8)] ^= 1 << (f.seq.wrapping_mul(7) % 8);
                if crc16(&received) != f.crc {
                    stats.noc_crc_detected += 1;
                    stats.noc_retransmissions += 1;
                    self.links[lid].busy_until = now + span;
                    let retries = f.retries + 1;
                    self.flits[i].retries = retries;
                    if retries > self.retry.max_retries && self.fault.is_none() {
                        self.fault = Some(format!(
                            "noc watchdog: flit {} exhausted {} retransmissions on link {} \
                             ({} -> {})",
                            f.seq, self.retry.max_retries, lid, link.from, link.to
                        ));
                    }
                    self.flits[i].next_action = now + span + self.retry.backoff(retries);
                    self.flits[i].blocked = false;
                    i += 1;
                    continue;
                }
                // A flip the CRC cannot see (never for a single-bit upset;
                // kept for model honesty): the corrupted flit goes through.
            }
            // Clean traversal: occupy the channel, take the downstream
            // credit, release the upstream one, arrive after the hop.
            self.links[lid].busy_until = now + span;
            let from_slot = f.at_node * 2 + f.is_resp as usize;
            self.occupied[link.to * 2 + f.is_resp as usize] += 1;
            self.occupied[from_slot] -= 1;
            self.occ_gen[from_slot] += 1;
            stats.noc_hops += 1;
            self.flits[i].at_node = link.to;
            self.flits[i].retries = 0;
            self.flits[i].next_action = now + span.max(self.hop_latency);
            self.flits[i].blocked = false;
            i += 1;
        }
        self.wake.set(Some(self.raw_wake(now)));
    }

    /// Earliest cycle at which the flits on node `node` (message class
    /// `is_resp`) could next act — the only moments the node's buffer
    /// occupancy can drop between polls (nothing can *start* moving
    /// toward a starved node: its would-be senders are starved too, and
    /// a flit spawned onto it cannot take occupancy below the starvation
    /// level by leaving again).
    fn earliest_departure(&self, node: usize, is_resp: bool) -> u64 {
        self.flits
            .iter()
            .filter(|g| g.at_node == node && g.is_resp == is_resp)
            .map(|g| g.next_action)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Exact earliest cycle a credit-starved flit's retry could succeed,
    /// computed at park time: the earliest of a same-class departure from
    /// the starved next-hop node (frees the credit), the express window
    /// opening (every path link free by timeout, with a destination
    /// credit — link busy windows only ever grow, so this is a true lower
    /// bound), and the age watchdog needing to fire. Any *other* event
    /// that could unblock the flit bumps a generation stamp the parked
    /// fast path checks, which resumes the per-cycle poll immediately.
    fn blocked_bound(&self, f: &Flit, now: u64) -> u64 {
        let vc = f.is_resp as usize;
        let hop = match self.dir_toward(f.at_node, f.dest) {
            Some(dir) => match self.adj[f.at_node][dir] {
                Some(lid) => self.earliest_departure(self.links[lid].to, f.is_resp),
                None => now + 1,
            },
            None => now + 1,
        };
        let express = if self.occupied[f.dest * 2 + vc] >= NODE_BUF_FLITS {
            self.earliest_departure(f.dest, f.is_resp)
        } else {
            match self.path_to(f.at_node, f.dest) {
                Some(path)
                    if !path.is_empty()
                        && path.iter().all(|&l| {
                            !self.links[l].fenced && self.links[l].corrupt_pending == 0
                        }) =>
                {
                    path.iter()
                        .map(|&l| self.links[l].busy_until)
                        .max()
                        .unwrap()
                }
                _ => u64::MAX,
            }
        };
        let age = f.born + MAX_FLIT_AGE + 1;
        hop.min(express).min(age).max(now + 1)
    }

    /// Earliest effective wake across flits and pending response
    /// injections, clamped strictly future (`u64::MAX` = nothing in
    /// flight). This is the value the wake cache stores: every item is
    /// clamped to at least `now + 1`, so no event due at or before `now`
    /// can hide behind a cached early-return.
    fn raw_wake(&self, now: u64) -> u64 {
        let flit_next = self
            .flits
            .iter()
            .map(|f| {
                if f.blocked
                    && self.occ_gen[f.park_hop] == f.park_gen_hop
                    && self.occ_gen[f.dest * 2 + f.is_resp as usize] == f.park_gen_dest
                    && self.topo_gen == f.park_gen_topo
                {
                    f.parked_until.max(now + 1)
                } else {
                    f.next_action.max(now + 1)
                }
            })
            .min()
            .unwrap_or(u64::MAX);
        let resp_next = self
            .resp_inj
            .iter()
            .map(|r| r.at.max(now + 1))
            .min()
            .unwrap_or(u64::MAX);
        flit_next.min(resp_next)
    }

    /// Earliest future cycle at which [`Noc::tick`] could do anything.
    /// Call after `tick(now)`.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        let w = match self.wake.get() {
            // A cached wake still in the future is exact; one at or
            // behind `now` was clamped under an older cycle and must be
            // recomputed against the current one.
            Some(w) if w > now => w,
            _ => {
                let w = self.raw_wake(now);
                self.wake.set(Some(w));
                w
            }
        };
        (w != u64::MAX).then_some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> FabricStats {
        FabricStats::default()
    }

    #[test]
    fn topology_parses_and_round_trips() {
        assert_eq!(
            "crossbar".parse::<FabricTopology>().unwrap(),
            FabricTopology::Crossbar
        );
        assert_eq!(
            "mesh2x2".parse::<FabricTopology>().unwrap(),
            FabricTopology::Mesh { cols: 2, rows: 2 }
        );
        assert_eq!(
            "4x2".parse::<FabricTopology>().unwrap(),
            FabricTopology::Mesh { cols: 4, rows: 2 }
        );
        for t in [
            FabricTopology::Crossbar,
            FabricTopology::Mesh { cols: 3, rows: 2 },
        ] {
            assert_eq!(t.to_string().parse::<FabricTopology>().unwrap(), t);
        }
        assert!("mesh1x1".parse::<FabricTopology>().is_err());
        assert!("ring8".parse::<FabricTopology>().is_err());
    }

    #[test]
    fn crc16_detects_any_single_bit_flip() {
        let data = [0xde, 0xad, 0xbe, 0xef, 0x01, 0x23];
        let crc = crc16(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data;
                d[byte] ^= 1 << bit;
                assert_ne!(crc16(&d), crc, "flip at {byte}.{bit} must change the CRC");
            }
        }
        // Known CRC-16/CCITT-FALSE check value for "123456789".
        assert_eq!(crc16(b"123456789"), 0x29b1);
    }

    #[test]
    fn backoff_is_geometric_and_capped() {
        let p = LinkRetryPolicy::default();
        assert_eq!(p.backoff(1), 32);
        assert_eq!(p.backoff(2), 64);
        assert_eq!(p.backoff(4), 256);
        assert_eq!(p.backoff(10), 32 * 8); // capped
    }

    #[test]
    fn request_reaches_mc_and_response_returns() {
        let mut noc = Noc::new(2, 2, 18);
        let mut st = stats();
        noc.inject_request(0, 0, 7, 0x1000, false, &mut st);
        let mut now = 0;
        while noc.delivered_req.is_empty() {
            now += 1;
            noc.tick(now, &mut st);
            assert!(now < 1000);
        }
        let d = noc.delivered_req.pop().unwrap();
        assert_eq!(d.token, 7);
        assert_eq!(d.addr, 0x1000);
        noc.schedule_response(now + 10, 7, 0x1000, 0);
        while noc.delivered_resp.is_empty() {
            now += 1;
            noc.tick(now, &mut st);
            assert!(now < 2000);
        }
        assert_eq!(noc.delivered_resp[0].0, 7);
        assert_eq!(noc.credits_held(), 0, "credits fully returned after drain");
        assert!(st.noc_hops >= 4, "2 hops each way on a 2x2 corner trip");
    }

    #[test]
    fn corrupted_flit_retransmits_and_still_arrives() {
        let mut noc = Noc::new(2, 2, 18);
        let mut st = stats();
        // Corrupt the first link on node 0's XY path (east, link id 0).
        assert_eq!(noc.inject_link_fault(0), Some(0));
        noc.inject_request(0, 0, 1, 0x40, false, &mut st);
        let mut now = 0;
        while noc.delivered_req.is_empty() {
            now += 1;
            noc.tick(now, &mut st);
            assert!(now < 10_000);
        }
        assert_eq!(st.noc_retransmissions, 1);
        assert_eq!(st.noc_crc_detected, 1);
        assert!(noc.fault().is_none());
    }

    #[test]
    fn retired_link_routes_around() {
        let mut noc = Noc::new(2, 2, 18);
        let mut st = stats();
        // Node 0's east link (0 -> 1) carries its XY traffic to MC node 3.
        assert_eq!(noc.retire_link(0, &mut st), LinkRetireOutcome::Rerouted);
        assert_eq!(st.noc_links_retired, 1);
        noc.inject_request(0, 0, 9, 0x80, false, &mut st);
        let mut now = 0;
        while noc.delivered_req.is_empty() {
            now += 1;
            noc.tick(now, &mut st);
            assert!(now < 10_000, "route-around must still deliver");
        }
        assert!(noc.fault().is_none());
        // Faults on a retired link have nothing to corrupt.
        assert_eq!(noc.inject_link_fault(0), None);
    }

    #[test]
    fn cutting_last_route_fences_instead() {
        // 2x1 mesh: node 0 (core) -- node 1 (MC). Retire 0->1, then the
        // reverse 1->0: the second retirement must fence (half bandwidth)
        // because node 0 would otherwise be unreachable.
        let mut noc = Noc::new(2, 1, 18);
        let mut st = stats();
        let fwd = noc.adj[0][EAST].unwrap();
        let back = noc.adj[1][WEST].unwrap();
        assert_eq!(noc.retire_link(fwd, &mut st), LinkRetireOutcome::Fenced);
        assert_eq!(st.noc_links_fenced, 1);
        assert_eq!(noc.retire_link(back, &mut st), LinkRetireOutcome::Fenced);
        // Fenced links still deliver.
        noc.inject_request(0, 0, 3, 0x40, true, &mut st);
        let mut now = 0;
        while noc.delivered_req.is_empty() {
            now += 1;
            noc.tick(now, &mut st);
            assert!(now < 10_000);
        }
        let h = noc.link_health();
        assert_eq!(h.fenced, 2);
        assert_eq!(h.retired, 0);
        assert_eq!(h.healthy + h.fenced + h.retired, h.total);
    }

    #[test]
    fn next_event_skips_idle_hop_spans() {
        let mut noc = Noc::new(2, 2, 400);
        let mut st = stats();
        noc.inject_request(0, 0, 1, 0, false, &mut st);
        noc.tick(1, &mut st); // first hop departs at cycle 1
        let wake = noc.next_event(1).expect("flit in flight");
        assert!(
            wake > 1 + 50,
            "long-hop mesh must expose a far wakeup, got {wake}"
        );
        assert!(noc.next_event(1).unwrap() > 1);
    }

    #[test]
    fn port_to_node_mapping_shares_core_node() {
        let noc = Noc::new(2, 2, 18);
        assert_eq!(noc.mc_node(), 3);
        assert_eq!(
            noc.node_of_port(0),
            noc.node_of_port(1),
            "one node per core"
        );
        assert_eq!(noc.node_of_port(2), 1);
        assert_eq!(noc.node_of_port(6), 0, "cores wrap round-robin");
        assert_eq!(noc.coord(3), (1, 1));
    }
}
