//! Cache statistics counters.

/// Hit/miss and pinning statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed and allocated (or merged into) an MSHR.
    pub misses: u64,
    /// Accesses rejected because all MSHRs were busy.
    pub mshr_stalls: u64,
    /// Accesses rejected because the cycle's ports were exhausted.
    pub port_stalls: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Fills that could not allocate a line because every candidate way was
    /// pinned (the fill bypasses the cache).
    pub pinned_bypasses: u64,
    /// Hits on lines holding register state.
    pub reg_hits: u64,
    /// Misses on register-region lines.
    pub reg_misses: u64,
}

impl CacheStats {
    /// Demand accesses = hits + misses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.mshr_stalls += other.mshr_stalls;
        self.port_stalls += other.port_stalls;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.pinned_bypasses += other.pinned_bypasses;
        self.reg_hits += other.reg_hits;
        self.reg_misses += other.reg_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            writebacks: 3,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            writebacks: 30,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 22);
        assert_eq!(a.writebacks, 33);
    }
}
