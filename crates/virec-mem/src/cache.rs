//! Set-associative cache with MSHRs, port limits, and the ViReC
//! backing-store extensions (§5.3 of the paper):
//!
//! * each line carries a **register/data bit** marking lines that hold
//!   spilled register state, and
//! * a **3-bit pin counter**, incremented when a register is filled from the
//!   line into the RF (register becomes live on-chip) and decremented when a
//!   register is spilled back. Lines with a nonzero pin count are never
//!   evicted, which accelerates fills/spills at the cost of dcache capacity —
//!   the contention effect measured in the paper's Figure 13.

use crate::fabric::{Fabric, PortId, ReqToken};
use crate::stats::CacheStats;
use crate::{line_of, LINE_BYTES};

/// Maximum value of the per-line pin counter (3 bits, saturating).
pub const PIN_MAX: u8 = 7;

/// Cache geometry and timing.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
    /// Read ports (accesses per cycle).
    pub read_ports: usize,
    /// Write ports (accesses per cycle).
    pub write_ports: usize,
}

impl CacheConfig {
    /// The paper's near-memory dcache: 8 KiB, 4-way, 2-cycle, 1R/1W, 24 MSHRs.
    pub fn nmp_dcache() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024,
            assoc: 4,
            hit_latency: 2,
            mshrs: 24,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// The paper's near-memory icache: 32 KiB, 4-way, 2-cycle, 1R/1W.
    pub fn nmp_icache() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 4,
            hit_latency: 2,
            mshrs: 4,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (LINE_BYTES as usize * self.assoc)
    }
}

/// What kind of access is being performed. Register kinds drive the pinning
/// metadata; data loads are the ones whose misses trigger context switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Program load through the LSQ.
    DataLoad,
    /// Program store through the LSQ.
    DataStore,
    /// BSI reading a spilled register into the RF (pins the line).
    RegFill,
    /// BSI writing an evicted register back (unpins the line).
    RegSpill,
    /// Instruction fetch.
    IFetch,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::DataStore | AccessKind::RegSpill)
    }

    fn is_reg(self) -> bool {
        matches!(self, AccessKind::RegFill | AccessKind::RegSpill)
    }
}

/// Identifier for a pending miss; poll with [`Cache::mshr_ready`].
pub type MshrId = u64;

/// Why an MSHR could not be retired. In a healthy machine retires always
/// follow a successful [`Cache::mshr_ready`] poll, so either variant means
/// the id itself is wrong — a corrupted pipeline slot (e.g. an injected
/// fault flipped the stored id), not an ordinary timing condition. The
/// core degrades this to a detected structural hazard instead of aborting
/// the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrRetireError {
    /// No MSHR with this id exists.
    Unknown(MshrId),
    /// The MSHR exists but its fill has not completed.
    NotReady(MshrId),
}

impl std::fmt::Display for MshrRetireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrRetireError::Unknown(id) => write!(f, "retiring unknown MSHR {id}"),
            MshrRetireError::NotReady(id) => write!(f, "retiring MSHR {id} before completion"),
        }
    }
}

impl std::error::Error for MshrRetireError {}

/// Result of a cache access attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The access hit; the data is usable at `ready_at`.
    Hit {
        /// Absolute cycle at which the access completes.
        ready_at: u64,
    },
    /// The access missed; an MSHR tracks the fill.
    Miss {
        /// Poll this id with [`Cache::mshr_ready`] and then
        /// [`Cache::mshr_retire`].
        mshr: MshrId,
    },
    /// All MSHRs are in use; retry next cycle.
    NoMshr,
    /// This cycle's ports are exhausted; retry next cycle.
    NoPort,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    is_reg: bool,
    pins: u8,
    last_used: u64,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        is_reg: false,
        pins: 0,
        last_used: 0,
    };
}

#[derive(Clone, Debug)]
struct Mshr {
    id: MshrId,
    line_addr: u64,
    token: ReqToken,
    /// Kinds of the merged requesters, applied to the line on install.
    waiters: Vec<AccessKind>,
    /// Set when the fill has installed; requesters may collect.
    ready_at: Option<u64>,
    /// How many requesters have not yet retired this MSHR.
    outstanding: usize,
}

/// A set-associative, write-back, write-allocate cache.
///
/// ```
/// use virec_mem::{AccessKind, AccessResult, Cache, CacheConfig, Fabric, FabricConfig};
/// let mut cache = Cache::new(CacheConfig::nmp_dcache(), 0);
/// let mut fabric = Fabric::new(FabricConfig::default());
/// // Cold access misses and allocates an MSHR...
/// let AccessResult::Miss { mshr } = cache.access(0, 0x1000, AccessKind::DataLoad, &mut fabric)
///     else { panic!() };
/// let mut now = 0;
/// while !cache.mshr_ready(mshr, now) {
///     fabric.tick(now);
///     cache.tick(now, &mut fabric);
///     now += 1;
/// }
/// cache.mshr_retire(mshr).unwrap();
/// // ...and the refill hits.
/// assert!(matches!(
///     cache.access(now, 0x1000, AccessKind::DataLoad, &mut fabric),
///     AccessResult::Hit { .. }
/// ));
/// ```
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    port: PortId,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    next_mshr_id: MshrId,
    writeback_tokens: Vec<ReqToken>,
    stats: CacheStats,
    cur_cycle: u64,
    reads_used: usize,
    writes_used: usize,
}

impl Cache {
    /// Creates a cache that talks to the fabric on `port`.
    pub fn new(cfg: CacheConfig, port: PortId) -> Cache {
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(cfg.assoc >= 1);
        Cache {
            sets: vec![vec![Line::INVALID; cfg.assoc]; cfg.sets()],
            cfg,
            port,
            mshrs: Vec::new(),
            next_mshr_id: 0,
            writeback_tokens: Vec::new(),
            stats: CacheStats::default(),
            cur_cycle: 0,
            reads_used: 0,
            writes_used: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of MSHRs currently allocated (outstanding misses), for
    /// forward-progress diagnostics.
    pub fn outstanding_mshrs(&self) -> usize {
        self.mshrs.len()
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_BYTES) as usize) & (self.cfg.sets() - 1)
    }

    fn roll_cycle(&mut self, now: u64) {
        if now != self.cur_cycle {
            self.cur_cycle = now;
            self.reads_used = 0;
            self.writes_used = 0;
        }
    }

    fn take_port(&mut self, kind: AccessKind) -> bool {
        if kind.is_write() {
            if self.writes_used < self.cfg.write_ports {
                self.writes_used += 1;
                return true;
            }
        } else if self.reads_used < self.cfg.read_ports {
            self.reads_used += 1;
            return true;
        }
        false
    }

    /// Attempts an access at cycle `now`. Misses submit a line fill through
    /// `fabric`. The caller must keep calling [`Cache::tick`] each cycle for
    /// misses to complete.
    pub fn access(
        &mut self,
        now: u64,
        addr: u64,
        kind: AccessKind,
        fabric: &mut Fabric,
    ) -> AccessResult {
        self.roll_cycle(now);
        if !self.take_port(kind) {
            self.stats.port_stalls += 1;
            return AccessResult::NoPort;
        }
        let line_addr = line_of(addr);
        let set = self.set_index(line_addr);
        let tag = line_addr / LINE_BYTES;

        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut self.sets[set][way];
            line.last_used = now;
            if kind.is_write() {
                line.dirty = true;
            }
            if kind.is_reg() {
                line.is_reg = true;
            }
            match kind {
                AccessKind::RegFill => line.pins = (line.pins + 1).min(PIN_MAX),
                AccessKind::RegSpill => line.pins = line.pins.saturating_sub(1),
                _ => {}
            }
            self.stats.hits += 1;
            if kind.is_reg() {
                self.stats.reg_hits += 1;
            }
            return AccessResult::Hit {
                ready_at: now + self.cfg.hit_latency as u64,
            };
        }

        // Miss: merge into an existing MSHR for the same line if any.
        if let Some(m) = self.mshrs.iter_mut().find(|m| m.line_addr == line_addr) {
            m.waiters.push(kind);
            m.outstanding += 1;
            self.stats.misses += 1;
            if kind.is_reg() {
                self.stats.reg_misses += 1;
            }
            return AccessResult::Miss { mshr: m.id };
        }

        if self.mshrs.len() >= self.cfg.mshrs {
            self.stats.mshr_stalls += 1;
            return AccessResult::NoMshr;
        }

        let token = fabric.submit(now, self.port, line_addr, false);
        let id = self.next_mshr_id;
        self.next_mshr_id += 1;
        self.mshrs.push(Mshr {
            id,
            line_addr,
            token,
            waiters: vec![kind],
            ready_at: None,
            outstanding: 1,
        });
        self.stats.misses += 1;
        if kind.is_reg() {
            self.stats.reg_misses += 1;
        }
        AccessResult::Miss { mshr: id }
    }

    /// Whether the miss tracked by `mshr` has completed by cycle `now`.
    pub fn mshr_ready(&self, mshr: MshrId, now: u64) -> bool {
        self.mshrs
            .iter()
            .find(|m| m.id == mshr)
            .and_then(|m| m.ready_at)
            .is_some_and(|t| t <= now)
    }

    /// Releases one requester's interest in a completed MSHR.
    ///
    /// Returns a typed [`MshrRetireError`] — never panics — if the id names
    /// no MSHR or one whose fill has not completed. Both indicate a
    /// corrupted requester-side id (a fault, not a timing race): callers
    /// surface the error as a detected structural hazard.
    pub fn mshr_retire(&mut self, mshr: MshrId) -> Result<(), MshrRetireError> {
        let idx = self
            .mshrs
            .iter()
            .position(|m| m.id == mshr)
            .ok_or(MshrRetireError::Unknown(mshr))?;
        if self.mshrs[idx].ready_at.is_none() {
            return Err(MshrRetireError::NotReady(mshr));
        }
        self.mshrs[idx].outstanding -= 1;
        if self.mshrs[idx].outstanding == 0 {
            self.mshrs.swap_remove(idx);
        }
        Ok(())
    }

    /// Advances the cache: completes fills whose fabric requests returned and
    /// retires finished writebacks. Call once per cycle.
    pub fn tick(&mut self, now: u64, fabric: &mut Fabric) {
        // Retire completed writebacks (posted writes — no one waits on them).
        self.writeback_tokens.retain(|&t| {
            if fabric.is_done(t, now) {
                fabric.retire(t);
                false
            } else {
                true
            }
        });

        for i in 0..self.mshrs.len() {
            if self.mshrs[i].ready_at.is_some() {
                continue;
            }
            if !fabric.is_done(self.mshrs[i].token, now) {
                continue;
            }
            fabric.retire(self.mshrs[i].token);
            let line_addr = self.mshrs[i].line_addr;
            let waiters = std::mem::take(&mut self.mshrs[i].waiters);
            self.install(now, line_addr, &waiters, fabric);
            self.mshrs[i].ready_at = Some(now + self.cfg.hit_latency as u64);
        }
    }

    /// Earliest future cycle at which [`Cache::tick`] could do anything, or
    /// a requester waiting on an MSHR could observe completion. Call after
    /// `tick(now)`. `None` means the cache has nothing in flight. Unfilled
    /// MSHRs and posted writebacks whose fabric completion times are not yet
    /// decided contribute nothing: the fabric's own [`Fabric::next_event`]
    /// covers their progression, and once the fabric schedules them their
    /// `done_at` times appear here.
    pub fn next_event(&self, now: u64, fabric: &Fabric) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut push = |t: u64| {
            let t = t.max(now + 1);
            min = Some(min.map_or(t, |m: u64| m.min(t)));
        };
        for m in &self.mshrs {
            match m.ready_at {
                // Filled: waiters poll `mshr_ready` and act at this cycle.
                Some(t) => push(t),
                // Unfilled: the install happens on the tick at the fabric's
                // response time, once scheduling has decided it.
                None => {
                    if let Some(t) = fabric.done_at(m.token) {
                        push(t);
                    }
                }
            }
        }
        for &t in &self.writeback_tokens {
            if let Some(done) = fabric.done_at(t) {
                push(done);
            }
        }
        min
    }

    fn install(&mut self, now: u64, line_addr: u64, waiters: &[AccessKind], fabric: &mut Fabric) {
        let set = self.set_index(line_addr);
        let tag = line_addr / LINE_BYTES;
        let ways = &mut self.sets[set];

        let victim = ways.iter().position(|l| !l.valid).or_else(|| {
            // LRU among unpinned ways.
            ways.iter()
                .enumerate()
                .filter(|(_, l)| l.pins == 0)
                .min_by_key(|(_, l)| l.last_used)
                .map(|(w, _)| w)
        });

        let Some(way) = victim else {
            // Every way pinned: the fill bypasses the cache entirely. The
            // requester still gets its data (it came over the fabric); we
            // just could not retain the line.
            self.stats.pinned_bypasses += 1;
            return;
        };

        let old = ways[way];
        if old.valid {
            self.stats.evictions += 1;
            if old.dirty {
                let old_addr = old.tag * LINE_BYTES;
                let t = fabric.submit(now, self.port, old_addr, true);
                self.writeback_tokens.push(t);
                self.stats.writebacks += 1;
            }
        }

        let mut line = Line {
            tag,
            valid: true,
            dirty: false,
            is_reg: false,
            pins: 0,
            last_used: now,
        };
        for &k in waiters {
            if k.is_write() {
                line.dirty = true;
            }
            if k.is_reg() {
                line.is_reg = true;
            }
            match k {
                AccessKind::RegFill => line.pins = (line.pins + 1).min(PIN_MAX),
                AccessKind::RegSpill => line.pins = line.pins.saturating_sub(1),
                _ => {}
            }
        }
        ways[way] = line;
    }

    /// Whether the line containing `addr` is currently resident.
    pub fn contains_line(&self, addr: u64) -> bool {
        let line_addr = line_of(addr);
        let set = self.set_index(line_addr);
        let tag = line_addr / LINE_BYTES;
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Pin count of the line containing `addr` (0 when absent).
    pub fn pin_count(&self, addr: u64) -> u8 {
        let line_addr = line_of(addr);
        let set = self.set_index(line_addr);
        let tag = line_addr / LINE_BYTES;
        self.sets[set]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map_or(0, |l| l.pins)
    }

    /// Number of valid lines currently marked as register lines.
    pub fn reg_lines(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.valid && l.is_reg)
            .count()
    }

    /// Checks internal invariants (used by property tests): at most one
    /// valid way per tag per set.
    pub fn check_invariants(&self) {
        for (si, set) in self.sets.iter().enumerate() {
            let mut tags: Vec<u64> = set.iter().filter(|l| l.valid).map(|l| l.tag).collect();
            tags.sort_unstable();
            let before = tags.len();
            tags.dedup();
            assert_eq!(before, tags.len(), "duplicate tag in set {si}");
            for l in set {
                assert!(l.pins <= PIN_MAX);
                if !l.valid {
                    assert_eq!(l.pins, 0, "invalid line with pins in set {si}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};

    fn tiny_cache() -> (Cache, Fabric) {
        // 4 sets x 2 ways = 512B.
        let cfg = CacheConfig {
            size_bytes: 512,
            assoc: 2,
            hit_latency: 2,
            mshrs: 4,
            read_ports: 2,
            write_ports: 2,
        };
        (Cache::new(cfg, 0), Fabric::new(FabricConfig::default()))
    }

    /// Drives the cache+fabric until an access to `addr` completes, and
    /// returns the cycle at which it did.
    fn access_to_completion(
        c: &mut Cache,
        f: &mut Fabric,
        start: u64,
        addr: u64,
        kind: AccessKind,
    ) -> u64 {
        let mut now = start;
        loop {
            match c.access(now, addr, kind, f) {
                AccessResult::Hit { ready_at } => return ready_at,
                AccessResult::Miss { mshr } => loop {
                    f.tick(now);
                    c.tick(now, f);
                    if c.mshr_ready(mshr, now) {
                        c.mshr_retire(mshr).unwrap();
                        return now;
                    }
                    now += 1;
                    assert!(now < start + 100_000, "miss never completed");
                },
                AccessResult::NoMshr | AccessResult::NoPort => {
                    f.tick(now);
                    c.tick(now, f);
                    now += 1;
                }
            }
        }
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut f) = tiny_cache();
        let t0 = access_to_completion(&mut c, &mut f, 0, 0x1000, AccessKind::DataLoad);
        assert!(t0 > 10, "first access must go to DRAM");
        assert_eq!(c.stats().misses, 1);
        let t1 = access_to_completion(&mut c, &mut f, t0 + 1, 0x1008, AccessKind::DataLoad);
        assert_eq!(t1, t0 + 1 + c.config().hit_latency as u64);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn mshr_merging_same_line() {
        let (mut c, mut f) = tiny_cache();
        let r1 = c.access(0, 0x2000, AccessKind::DataLoad, &mut f);
        let r2 = c.access(0, 0x2010, AccessKind::DataLoad, &mut f);
        let (AccessResult::Miss { mshr: m1 }, AccessResult::Miss { mshr: m2 }) = (r1, r2) else {
            panic!("both should miss: {r1:?} {r2:?}");
        };
        assert_eq!(m1, m2, "same line must merge into one MSHR");
        assert_eq!(f.outstanding(), 1, "only one fabric request");
        let mut now = 0;
        while !c.mshr_ready(m1, now) {
            f.tick(now);
            c.tick(now, &mut f);
            now += 1;
        }
        c.mshr_retire(m1).unwrap();
        c.mshr_retire(m2).unwrap();
        c.check_invariants();
    }

    #[test]
    fn mshr_exhaustion() {
        let (mut c, mut f) = tiny_cache();
        // 2 read ports per cycle: spread the 4 misses over two cycles.
        for i in 0..4u64 {
            let r = c.access(i / 2, 0x10_000 + i * 64, AccessKind::DataLoad, &mut f);
            assert!(matches!(r, AccessResult::Miss { .. }), "{r:?}");
        }
        let r = c.access(2, 0x20_000, AccessKind::DataLoad, &mut f);
        assert_eq!(r, AccessResult::NoMshr);
        assert_eq!(c.stats().mshr_stalls, 1);
    }

    #[test]
    fn port_exhaustion_resets_next_cycle() {
        let (mut c, mut f) = tiny_cache();
        // 2 read ports.
        let _ = c.access(5, 0x0, AccessKind::DataLoad, &mut f);
        let _ = c.access(5, 0x40, AccessKind::DataLoad, &mut f);
        let r = c.access(5, 0x80, AccessKind::DataLoad, &mut f);
        assert_eq!(r, AccessResult::NoPort);
        // Next cycle the ports are free again.
        let r = c.access(6, 0x80, AccessKind::DataLoad, &mut f);
        assert!(matches!(
            r,
            AccessResult::Miss { .. } | AccessResult::Hit { .. }
        ));
    }

    #[test]
    fn lru_eviction_within_set() {
        let (mut c, mut f) = tiny_cache();
        // 4 sets → addresses 0, 0x100, 0x200 all map to set 0 (stride 4*64).
        let s = 4 * 64;
        let mut now = 0;
        now = access_to_completion(&mut c, &mut f, now, 0, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, s, AccessKind::DataLoad);
        // Touch line 0 so line `s` is LRU.
        now = access_to_completion(&mut c, &mut f, now + 1, 0, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, 2 * s, AccessKind::DataLoad);
        assert!(c.contains_line(0), "recently used line must survive");
        assert!(!c.contains_line(s), "LRU line must be evicted");
        assert!(c.contains_line(2 * s));
        let _ = now;
        c.check_invariants();
    }

    #[test]
    fn pinned_lines_survive_eviction_pressure() {
        let (mut c, mut f) = tiny_cache();
        let s = 4 * 64;
        let mut now = 0;
        // Install a register line and pin it.
        now = access_to_completion(&mut c, &mut f, now, 0, AccessKind::RegFill);
        assert_eq!(c.pin_count(0), 1);
        // Two more lines to the same set: the pinned line must survive.
        now = access_to_completion(&mut c, &mut f, now + 1, s, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, 2 * s, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, 3 * s, AccessKind::DataLoad);
        assert!(c.contains_line(0), "pinned register line was evicted");
        // Unpin; now it can be evicted.
        now = access_to_completion(&mut c, &mut f, now + 1, 0, AccessKind::RegSpill);
        assert_eq!(c.pin_count(0), 0);
        now = access_to_completion(&mut c, &mut f, now + 1, 4 * s, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, 5 * s, AccessKind::DataLoad);
        assert!(!c.contains_line(0), "unpinned line should now be evictable");
        let _ = now;
    }

    #[test]
    fn fully_pinned_set_bypasses() {
        let (mut c, mut f) = tiny_cache();
        let s = 4 * 64;
        let mut now = 0;
        now = access_to_completion(&mut c, &mut f, now, 0, AccessKind::RegFill);
        now = access_to_completion(&mut c, &mut f, now + 1, s, AccessKind::RegFill);
        // Set 0 is fully pinned; a data fill must bypass but still complete.
        now = access_to_completion(&mut c, &mut f, now + 1, 2 * s, AccessKind::DataLoad);
        assert_eq!(c.stats().pinned_bypasses, 1);
        assert!(!c.contains_line(2 * s));
        assert!(c.contains_line(0) && c.contains_line(s));
        let _ = now;
    }

    #[test]
    fn pin_counter_saturates() {
        let (mut c, mut f) = tiny_cache();
        let mut now = 0;
        for _ in 0..10 {
            now = access_to_completion(&mut c, &mut f, now + 1, 0, AccessKind::RegFill);
        }
        assert_eq!(c.pin_count(0), PIN_MAX);
        for _ in 0..10 {
            now = access_to_completion(&mut c, &mut f, now + 1, 0, AccessKind::RegSpill);
        }
        assert_eq!(c.pin_count(0), 0, "saturating decrement floors at zero");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut c, mut f) = tiny_cache();
        let s = 4 * 64;
        let mut now = 0;
        now = access_to_completion(&mut c, &mut f, now, 0, AccessKind::DataStore);
        now = access_to_completion(&mut c, &mut f, now + 1, s, AccessKind::DataLoad);
        now = access_to_completion(&mut c, &mut f, now + 1, 2 * s, AccessKind::DataLoad);
        // Run a few cycles so the writeback drains.
        for t in now..now + 200 {
            f.tick(t);
            c.tick(t, &mut f);
        }
        assert_eq!(c.stats().writebacks, 1);
        assert!(f.stats().writes >= 1);
    }

    #[test]
    fn reg_lines_tracked() {
        let (mut c, mut f) = tiny_cache();
        let mut now = access_to_completion(&mut c, &mut f, 0, 0, AccessKind::RegFill);
        now = access_to_completion(&mut c, &mut f, now + 1, 0x40, AccessKind::DataLoad);
        assert_eq!(c.reg_lines(), 1);
        let _ = now;
    }
}
