//! Spare-row remap table: DRAM row retirement for the RAS layer.
//!
//! A failing row (stuck or marginal cells) is *retired*: the remap table
//! redirects its physical row id either onto a spare row from a finite
//! pool, or — once the pool is exhausted — onto the shared *fence* row, a
//! reserved remnant region that absorbs all fenced traffic. Fencing keeps
//! the machine running but slower: every fenced row of a bank collapses
//! onto one row id, so accesses that used to hit distinct row buffers now
//! conflict.
//!
//! The table is timing-only, like the rest of `virec-mem`: functional data
//! lives in the flat memory and never moves. Migration cost is modeled by
//! the RAS layer as real fabric traffic at retirement time.
//!
//! Keys pack `(channel, bank, row)` via [`RemapTable::pack`]; replacement
//! row ids start at [`SPARE_ROW_BASE`], far above any demand row (a demand
//! row id would need a >2^58-byte address space to reach it), so a
//! remapped region can never alias live traffic.

use std::collections::HashMap;

/// First spare row id. Spare `n` maps to `SPARE_ROW_BASE + n`.
pub const SPARE_ROW_BASE: u64 = 1 << 40;

/// Row id absorbing all fenced (spare-exhausted) rows of a bank.
pub const FENCE_ROW: u64 = SPARE_ROW_BASE - 1;

/// How a retirement was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetireOutcome {
    /// A spare row was consumed; traffic is transparently redirected.
    Spared {
        /// Index of the consumed spare (row id `SPARE_ROW_BASE + spare`).
        spare: u64,
    },
    /// The spare pool was empty: the row is fenced onto the shared
    /// remnant row. Capacity is lost, the machine degrades.
    Fenced,
}

#[derive(Clone, Copy, Debug)]
enum Entry {
    Spared(u64),
    Fenced,
}

/// The address-remap table consulted by [`crate::Fabric`] on every access.
#[derive(Clone, Debug, Default)]
pub struct RemapTable {
    spares_left: u32,
    next_spare: u64,
    map: HashMap<u64, Entry>,
}

impl RemapTable {
    /// A table with `spare_rows` spares provisioned.
    pub fn new(spare_rows: u32) -> RemapTable {
        RemapTable {
            spares_left: spare_rows,
            next_spare: 0,
            map: HashMap::new(),
        }
    }

    /// Packs a `(channel, bank, row)` triple into a table key. Rows are
    /// assumed below 2^48 (true for any 48-bit physical address space).
    pub fn pack(chan: usize, bank: usize, row: u64) -> u64 {
        debug_assert!(row < 1 << 48);
        ((chan as u64) << 56) | ((bank as u64) << 48) | row
    }

    /// Retires the row behind `key`. Idempotent: re-retiring a row returns
    /// its existing disposition without consuming another spare, so
    /// checkpoint-restore re-application cannot double-spend the pool. A
    /// row is **never** silently dropped — with no spare available it is
    /// fenced, and the caller must account the capacity loss.
    pub fn retire(&mut self, key: u64) -> RetireOutcome {
        if let Some(e) = self.map.get(&key) {
            return match *e {
                Entry::Spared(n) => RetireOutcome::Spared { spare: n },
                Entry::Fenced => RetireOutcome::Fenced,
            };
        }
        if self.spares_left > 0 {
            self.spares_left -= 1;
            let n = self.next_spare;
            self.next_spare += 1;
            self.map.insert(key, Entry::Spared(n));
            RetireOutcome::Spared { spare: n }
        } else {
            self.map.insert(key, Entry::Fenced);
            RetireOutcome::Fenced
        }
    }

    /// Replacement row id for `key`, or `None` when the row is healthy.
    pub fn resolve(&self, key: u64) -> Option<u64> {
        self.map.get(&key).map(|e| match *e {
            Entry::Spared(n) => SPARE_ROW_BASE + n,
            Entry::Fenced => FENCE_ROW,
        })
    }

    /// Whether `key` has been retired (spared or fenced).
    pub fn is_retired(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Spares still available.
    pub fn spares_left(&self) -> u32 {
        self.spares_left
    }

    /// Number of retired rows (spared + fenced).
    pub fn retired(&self) -> usize {
        self.map.len()
    }

    /// True when no row has been retired (the fast path can skip lookup).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spares_then_fence() {
        let mut t = RemapTable::new(2);
        assert_eq!(t.retire(10), RetireOutcome::Spared { spare: 0 });
        assert_eq!(t.retire(20), RetireOutcome::Spared { spare: 1 });
        assert_eq!(t.retire(30), RetireOutcome::Fenced);
        assert_eq!(t.spares_left(), 0);
        assert_eq!(t.retired(), 3);
    }

    #[test]
    fn retire_is_idempotent() {
        let mut t = RemapTable::new(1);
        assert_eq!(t.retire(5), RetireOutcome::Spared { spare: 0 });
        assert_eq!(t.retire(5), RetireOutcome::Spared { spare: 0 });
        assert_eq!(t.spares_left(), 0);
        assert_eq!(t.retired(), 1);
        assert_eq!(t.retire(6), RetireOutcome::Fenced);
        assert_eq!(t.retire(6), RetireOutcome::Fenced);
    }

    #[test]
    fn resolve_redirects_only_retired_rows() {
        let mut t = RemapTable::new(1);
        assert_eq!(t.resolve(1), None);
        t.retire(1);
        assert_eq!(t.resolve(1), Some(SPARE_ROW_BASE));
        t.retire(2);
        assert_eq!(t.resolve(2), Some(FENCE_ROW));
        assert_eq!(t.resolve(3), None);
    }

    #[test]
    fn pack_separates_banks_and_channels() {
        let a = RemapTable::pack(0, 0, 7);
        let b = RemapTable::pack(0, 1, 7);
        let c = RemapTable::pack(1, 0, 7);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
