#![warn(missing_docs)]

//! # virec-mem
//!
//! The memory hierarchy for the ViReC simulator — the substrate the paper
//! gets from gem5's classic memory system:
//!
//! * [`cache::Cache`] — set-associative, write-back/write-allocate caches
//!   with MSHRs, limited ports, and the ViReC backing-store extensions of
//!   §5.3: a register/data bit and a 3-bit pin counter per line, so lines
//!   holding registers that are live in the RF cannot be evicted.
//! * [`fabric::Fabric`] — the system crossbar plus a DDR5-like DRAM timing
//!   model (per-bank row-buffer state, FR-FCFS-lite scheduling, bus
//!   occupancy). Near-memory cores attach directly to it, mirroring the
//!   paper's placement at the memory-controller crossbar.
//!
//! ## Timing vs. function
//!
//! These components model *when* accesses complete. Functional data lives in
//! [`virec_isa::FlatMem`](https://docs.rs/virec-isa), updated at access time
//! by the pipeline. Because every thread's register-backing region is private
//! and the workloads partition their data, this split is behaviourally
//! equivalent to moving bytes through the hierarchy, while keeping the
//! differential tests against the golden interpreter exact.

pub mod cache;
pub mod fabric;
pub mod noc;
pub mod remap;
pub mod stats;

pub use cache::{AccessKind, AccessResult, Cache, CacheConfig, MshrId, MshrRetireError};
pub use fabric::{DramConfig, Fabric, FabricConfig, FabricStats, PortId, MAX_STAT_PORTS};
pub use noc::{
    crc16, FabricTopology, LinkHealth, LinkRetireOutcome, LinkRetryPolicy, MAX_FLIT_AGE,
    NODE_BUF_FLITS,
};
pub use remap::{RemapTable, RetireOutcome, FENCE_ROW, SPARE_ROW_BASE};
pub use stats::CacheStats;

/// Cache line size in bytes, fixed at 64 across the hierarchy (Table 1).
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x12345), 0x12340);
    }
}
