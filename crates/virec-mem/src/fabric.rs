//! The system crossbar and DRAM timing model.
//!
//! Near-memory processors in the paper attach to the system crossbar next to
//! the memory controller (configuration from \[8, 11\] in the paper). The
//! [`Fabric`] models both pieces: a crossbar with a fixed hop latency and a
//! bounded per-cycle accept rate, and a DDR5-like DRAM with per-bank
//! row-buffer state, bank busy times, and channel data-bus occupancy.
//!
//! The model is timing-only: functional data lives in the flat memory owned
//! by the system. Requests are identified by opaque tokens that requesters
//! poll for completion.

use crate::noc::{FabricTopology, LinkHealth, LinkRetireOutcome, Noc};
use crate::remap::{RemapTable, RetireOutcome};
use std::collections::{HashMap, VecDeque};

/// Identifies the requester port (one per cache that talks to the fabric).
pub type PortId = usize;

/// Ports tracked individually in [`FabricStats::per_port`]; higher port ids
/// alias modulo this (32 cores' worth of cache ports before aliasing).
pub const MAX_STAT_PORTS: usize = 16;

/// Opaque identifier of an in-flight fabric request.
pub type ReqToken = u64;

/// DRAM timing and geometry parameters (all times in core cycles at 1 GHz).
///
/// Defaults approximate the paper's DDR5_6400, 1 rank, 2 channels,
/// tRP-tCL-tRCD = 14-14-14 (Table 1) as seen from a 1 GHz near-memory core.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Number of channels (power of two).
    pub channels: usize,
    /// Banks per channel (power of two).
    pub banks_per_channel: usize,
    /// Consecutive cache lines mapped to one row (row-buffer size / 64).
    pub lines_per_row: u64,
    /// Precharge latency.
    pub t_rp: u32,
    /// Activate (row-to-column) latency.
    pub t_rcd: u32,
    /// Column access (CAS) latency.
    pub t_cl: u32,
    /// Data-burst time for one 64B line on the channel bus.
    pub t_burst: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            lines_per_row: 128, // 8 KiB row buffer
            t_rp: 14,
            t_rcd: 14,
            t_cl: 14,
            t_burst: 8,
        }
    }
}

impl DramConfig {
    /// Latency of a row-buffer hit (CAS + burst).
    pub fn row_hit_latency(&self) -> u32 {
        self.t_cl + self.t_burst
    }

    /// Latency of a row-buffer conflict (precharge + activate + CAS + burst).
    pub fn row_conflict_latency(&self) -> u32 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

/// Crossbar + DRAM configuration.
///
/// The default crossbar hop (18 cycles each way) yields an unloaded load
/// latency of roughly 80 cycles at 1 GHz — near-memory placement at the
/// memory-controller crossbar removes only 20–30% of the host's latency
/// (§1 of the paper, citing \[54\]), and the remainder must be hidden by
/// multithreading.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// One-way crossbar hop latency in cycles. Under a mesh topology this
    /// budget is amortised over the mesh diameter as the per-hop latency.
    pub xbar_latency: u32,
    /// Requests the crossbar accepts per cycle (shared across ports).
    pub xbar_accepts_per_cycle: usize,
    /// Interconnect topology (crossbar by default; see [`FabricTopology`]).
    pub topology: FabricTopology,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            xbar_latency: 18,
            xbar_accepts_per_cycle: 4,
            topology: FabricTopology::Crossbar,
            dram: DramConfig::default(),
        }
    }
}

/// Aggregate fabric statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Read-line requests serviced.
    pub reads: u64,
    /// Write-line requests serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that conflicted with an open row (precharge + activate).
    pub row_conflicts: u64,
    /// Accesses to a bank with no open row (activate only).
    pub row_empty: u64,
    /// Total cycles requests spent queued before bank service.
    pub queue_cycles: u64,
    /// Patrol-scrub reads serviced (fire-and-forget RAS traffic; these
    /// occupy banks and bus slots like demand reads but deliver no data).
    pub scrub_reads: u64,
    /// Per-requester-port `[reads, writes]` submitted, indexed by
    /// `port % MAX_STAT_PORTS` (every topology, crossbar included).
    pub per_port: [[u64; 2]; MAX_STAT_PORTS],
    /// Mesh flits that completed a hop (link traversals).
    pub noc_hops: u64,
    /// Flits whose per-hop CRC check failed at the receiving router.
    pub noc_crc_detected: u64,
    /// Nacked flits retransmitted by their sending router.
    pub noc_retransmissions: u64,
    /// Links predictively retired and routed around.
    pub noc_links_retired: u64,
    /// Links fenced to half bandwidth (retirement would have disconnected
    /// a node from the memory controller).
    pub noc_links_fenced: u64,
}

impl FabricStats {
    /// Per-field difference `self - earlier` (saturating). With `earlier`
    /// a snapshot of the same monotonically growing counters, this is the
    /// traffic of the interval between the two observations.
    pub fn delta_since(&self, earlier: &FabricStats) -> FabricStats {
        let mut per_port = self.per_port;
        for (mine, prev) in per_port.iter_mut().zip(earlier.per_port.iter()) {
            mine[0] = mine[0].saturating_sub(prev[0]);
            mine[1] = mine[1].saturating_sub(prev[1]);
        }
        FabricStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            row_conflicts: self.row_conflicts.saturating_sub(earlier.row_conflicts),
            row_empty: self.row_empty.saturating_sub(earlier.row_empty),
            queue_cycles: self.queue_cycles.saturating_sub(earlier.queue_cycles),
            scrub_reads: self.scrub_reads.saturating_sub(earlier.scrub_reads),
            per_port,
            noc_hops: self.noc_hops.saturating_sub(earlier.noc_hops),
            noc_crc_detected: self
                .noc_crc_detected
                .saturating_sub(earlier.noc_crc_detected),
            noc_retransmissions: self
                .noc_retransmissions
                .saturating_sub(earlier.noc_retransmissions),
            noc_links_retired: self
                .noc_links_retired
                .saturating_sub(earlier.noc_links_retired),
            noc_links_fenced: self
                .noc_links_fenced
                .saturating_sub(earlier.noc_links_fenced),
        }
    }

    /// True when every counter is zero (nothing worth journaling).
    pub fn is_empty(&self) -> bool {
        *self == FabricStats::default()
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    token: ReqToken,
    addr: u64,
    is_write: bool,
    /// Fire-and-forget patrol read: occupies the bank and bus but is
    /// never entered into the done map (nobody polls it).
    is_scrub: bool,
    /// Requester port (drives the mesh response route; `0` for scrubs).
    port: PortId,
    submitted: u64,
    /// Cycle the request reaches the memory controller.
    arrive_at: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The crossbar + DRAM fabric shared by all near-memory cores.
#[derive(Clone)]
pub struct Fabric {
    cfg: FabricConfig,
    banks: Vec<Bank>,
    chan_bus_free: Vec<u64>,
    /// Submitted but not yet accepted by the crossbar.
    accept_queue: VecDeque<Pending>,
    /// Accepted, waiting for bank service.
    inflight: Vec<Pending>,
    /// token -> absolute cycle at which the response is available.
    done: HashMap<ReqToken, u64>,
    next_token: ReqToken,
    stats: FabricStats,
    /// Snapshot of `stats` at the last [`Fabric::epoch_stats`] call.
    epoch_mark: FabricStats,
    /// RAS spare-row remap table consulted on every address mapping.
    remap: RemapTable,
    /// Mesh NoC state when the topology is [`FabricTopology::Mesh`];
    /// `None` for the crossbar (whose paths are untouched).
    noc: Option<Box<Noc>>,
}

impl Fabric {
    /// Creates a fabric.
    pub fn new(cfg: FabricConfig) -> Fabric {
        let nbanks = cfg.dram.channels * cfg.dram.banks_per_channel;
        let noc = match cfg.topology {
            FabricTopology::Crossbar => None,
            FabricTopology::Mesh { cols, rows } => {
                Some(Box::new(Noc::new(cols, rows, cfg.xbar_latency)))
            }
        };
        Fabric {
            cfg,
            banks: vec![Bank::default(); nbanks],
            chan_bus_free: vec![0; cfg.dram.channels],
            accept_queue: VecDeque::new(),
            inflight: Vec::new(),
            done: HashMap::new(),
            next_token: 0,
            stats: FabricStats::default(),
            epoch_mark: FabricStats::default(),
            remap: RemapTable::default(),
            noc,
        }
    }

    /// Provisions `n` spare DRAM rows for RAS retirement. Replaces the
    /// remap table; call once at machine construction, before any
    /// retirement.
    pub fn provision_spare_rows(&mut self, n: u32) {
        self.remap = RemapTable::new(n);
    }

    /// The RAS remap table (retired-row count, spares left).
    pub fn remap(&self) -> &RemapTable {
        &self.remap
    }

    /// Packed `(channel, bank, row)` region key of `addr` under the *raw*
    /// (pre-remap) mapping — the key the CE tracker and the remap table
    /// index by.
    pub fn row_key(&self, addr: u64) -> u64 {
        let (chan, bank, row) = self.map_addr_raw(addr);
        RemapTable::pack(chan, bank, row)
    }

    /// Retires the DRAM row behind `addr`: remaps it onto a spare row if
    /// one is left, otherwise fences it onto the shared remnant row.
    /// Idempotent per row.
    pub fn retire_row(&mut self, addr: u64) -> RetireOutcome {
        let key = self.row_key(addr);
        self.remap.retire(key)
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Traffic since the previous `epoch_stats` call (or since construction
    /// for the first call), advancing the epoch mark. Callers sampling the
    /// fabric on a fixed cadence get per-interval counters without having
    /// to snapshot and subtract themselves.
    pub fn epoch_stats(&mut self) -> FabricStats {
        let delta = self.stats.delta_since(&self.epoch_mark);
        self.epoch_mark = self.stats;
        delta
    }

    /// Best-case (unloaded, row-hit) read latency through the fabric.
    pub fn unloaded_read_latency(&self) -> u32 {
        2 * self.cfg.xbar_latency + self.cfg.dram.row_hit_latency()
    }

    /// The interconnect topology this fabric was built with.
    pub fn topology(&self) -> FabricTopology {
        self.cfg.topology
    }

    /// Latched NoC watchdog fault (flit age cap exceeded or retransmission
    /// budget exhausted), if any. Always `None` on the crossbar.
    pub fn noc_fault(&self) -> Option<&str> {
        self.noc.as_deref().and_then(|n| n.fault())
    }

    /// Injects one transit upset onto the mesh link selected by `index`
    /// (modulo the link population): the next flit crossing it is
    /// corrupted and must be caught by the receiver's CRC. Returns the
    /// concrete link id, or `None` when there is no mesh or the selected
    /// link is already retired/fenced (nothing left to corrupt).
    pub fn inject_link_fault(&mut self, index: u64) -> Option<usize> {
        self.noc.as_deref_mut()?.inject_link_fault(index)
    }

    /// Retires a mesh link (adaptive route-around), falling back to
    /// fencing it at half bandwidth when retirement would disconnect a
    /// node from the memory controller. Idempotent; `None` on the
    /// crossbar.
    pub fn retire_link(&mut self, link: usize) -> Option<LinkRetireOutcome> {
        let noc = self.noc.as_deref_mut()?;
        Some(noc.retire_link(link, &mut self.stats))
    }

    /// Health counts of the mesh link population (`None` on the crossbar).
    pub fn link_health(&self) -> Option<LinkHealth> {
        self.noc.as_deref().map(|n| n.link_health())
    }

    /// Mesh dimensions `(cols, rows)` (`None` on the crossbar).
    pub fn mesh_dims(&self) -> Option<(usize, usize)> {
        self.noc.as_deref().map(|n| n.dims())
    }

    /// Flits currently inside the mesh (`None` on the crossbar).
    pub fn noc_in_network(&self) -> Option<usize> {
        self.noc.as_deref().map(|n| n.in_network())
    }

    /// Total mesh buffer credits currently held; drains to zero with the
    /// network (`None` on the crossbar).
    pub fn noc_credits_held(&self) -> Option<u32> {
        self.noc.as_deref().map(|n| n.credits_held())
    }

    /// Submits a 64B line request. Returns a token to poll with
    /// [`Fabric::is_done`]. Under a mesh topology the request is injected
    /// at `port`'s mesh node and routed hop by hop to the memory
    /// controller; the crossbar enqueues it for fixed-latency acceptance.
    pub fn submit(&mut self, now: u64, port: PortId, addr: u64, is_write: bool) -> ReqToken {
        let token = self.next_token;
        self.next_token += 1;
        self.stats.per_port[port % MAX_STAT_PORTS][is_write as usize] += 1;
        if let Some(noc) = self.noc.as_deref_mut() {
            noc.inject_request(now, port, token, addr, is_write, &mut self.stats);
            return token;
        }
        self.accept_queue.push_back(Pending {
            token,
            addr,
            is_write,
            is_scrub: false,
            port,
            submitted: now,
            arrive_at: 0,
        });
        token
    }

    /// Submits a fire-and-forget patrol-scrub read of the line at `addr`.
    /// The read takes a real trip through the crossbar and occupies its
    /// bank like any demand read — scrub bandwidth contends with demand
    /// traffic — but completes silently (no token to poll, counted in
    /// [`FabricStats::scrub_reads`]).
    pub fn submit_scrub(&mut self, now: u64, addr: u64) {
        let token = self.next_token;
        self.next_token += 1;
        self.accept_queue.push_back(Pending {
            token,
            addr,
            is_write: false,
            is_scrub: true,
            port: 0,
            submitted: now,
            arrive_at: 0,
        });
    }

    /// Whether the response for `token` is available at cycle `now`.
    pub fn is_done(&self, token: ReqToken, now: u64) -> bool {
        self.done.get(&token).is_some_and(|&t| t <= now)
    }

    /// Removes a completed token. Call after [`Fabric::is_done`] returns true.
    pub fn retire(&mut self, token: ReqToken) {
        let removed = self.done.remove(&token);
        debug_assert!(removed.is_some(), "retiring unknown token {token}");
    }

    /// Absolute cycle at which `token`'s response becomes available, once
    /// bank scheduling has decided it. `None` while the request is still
    /// queued or in flight (its completion time is not yet known).
    pub fn done_at(&self, token: ReqToken) -> Option<u64> {
        self.done.get(&token).copied()
    }

    /// Earliest future cycle at which [`Fabric::tick`] could do anything,
    /// assuming no new submissions arrive. Call after `tick(now)`. `None`
    /// means the fabric is quiescent (no queued or in-flight requests);
    /// completed-but-unretired responses need no further fabric ticks.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let noc_next = self.noc.as_deref().and_then(|n| n.next_event(now));
        if !self.accept_queue.is_empty() {
            // Crossbar acceptance happens every tick while the queue is
            // non-empty.
            return Some(now + 1);
        }
        // An in-flight request is serviceable once it has arrived at the
        // controller and its bank is free. Bank busy times only shrink via
        // other services, which themselves require a tick at or after this
        // minimum, so the min over requests is a safe wakeup.
        let bank_next = self
            .inflight
            .iter()
            .map(|p| {
                let (chan, bank_idx, _) = self.map_addr(p.addr);
                let bidx = chan * self.cfg.dram.banks_per_channel + bank_idx;
                p.arrive_at.max(self.banks[bidx].busy_until).max(now + 1)
            })
            .min();
        match (noc_next, bank_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of requests somewhere in the fabric (excluding completed).
    pub fn outstanding(&self) -> usize {
        self.accept_queue.len() + self.inflight.len()
    }

    /// Fault-injection hook: line address of one in-flight request (`nth`
    /// wraps modulo the number outstanding), or `None` when the fabric is
    /// idle. The fabric carries timing only — campaigns model a corrupted
    /// response by flipping a bit of the functional line this request will
    /// deliver.
    pub fn inflight_addr(&self, nth: usize) -> Option<u64> {
        let total = self.accept_queue.len() + self.inflight.len();
        if total == 0 {
            return None;
        }
        let k = nth % total;
        if k < self.accept_queue.len() {
            Some(self.accept_queue[k].addr)
        } else {
            Some(self.inflight[k - self.accept_queue.len()].addr)
        }
    }

    fn map_addr_raw(&self, addr: u64) -> (usize, usize, u64) {
        let d = &self.cfg.dram;
        let line = addr >> 6;
        let chan = (line as usize) & (d.channels - 1);
        let bank = ((line as usize) >> d.channels.trailing_zeros()) & (d.banks_per_channel - 1);
        let row = line / (d.channels as u64 * d.banks_per_channel as u64) / d.lines_per_row;
        (chan, bank, row)
    }

    /// Raw mapping plus the RAS remap indirection: a retired row's
    /// accesses land on its spare (or the fence row) instead.
    fn map_addr(&self, addr: u64) -> (usize, usize, u64) {
        let (chan, bank, row) = self.map_addr_raw(addr);
        if self.remap.is_empty() {
            return (chan, bank, row);
        }
        match self.remap.resolve(RemapTable::pack(chan, bank, row)) {
            Some(replacement) => (chan, bank, replacement),
            None => (chan, bank, row),
        }
    }

    /// Advances the fabric by one cycle: moves mesh flits (if any),
    /// accepts crossbar requests, and schedules bank accesses. Call once
    /// per core cycle with the current cycle number (monotonically
    /// non-decreasing).
    pub fn tick(&mut self, now: u64) {
        if let Some(noc) = self.noc.as_deref_mut() {
            noc.tick(now, &mut self.stats);
            // Request flits delivered at the memory controller enter bank
            // scheduling this cycle; response flits delivered at their
            // source node complete their token.
            for d in noc.delivered_req.drain(..) {
                self.inflight.push(Pending {
                    token: d.token,
                    addr: d.addr,
                    is_write: d.is_write,
                    is_scrub: false,
                    port: d.port,
                    submitted: d.submitted,
                    arrive_at: now,
                });
            }
            for (token, at) in noc.delivered_resp.drain(..) {
                self.done.insert(token, at);
            }
        }

        // Crossbar acceptance: bounded number of requests per cycle. Under
        // a mesh only patrol scrubs flow here (the MC-local patrol engine).
        for _ in 0..self.cfg.xbar_accepts_per_cycle {
            let Some(mut p) = self.accept_queue.pop_front() else {
                break;
            };
            p.arrive_at = now + self.cfg.xbar_latency as u64;
            self.inflight.push(p);
        }

        // Bank scheduling, FR-FCFS-lite: row hits first, then FCFS.
        self.schedule_pass(now, true);
        self.schedule_pass(now, false);
    }

    fn schedule_pass(&mut self, now: u64, row_hits_only: bool) {
        let mut i = 0;
        while i < self.inflight.len() {
            let p = self.inflight[i];
            if p.arrive_at > now {
                i += 1;
                continue;
            }
            let (chan, bank_idx, row) = self.map_addr(p.addr);
            let bidx = chan * self.cfg.dram.banks_per_channel + bank_idx;
            let bank = self.banks[bidx];
            if bank.busy_until > now {
                i += 1;
                continue;
            }
            let is_row_hit = bank.open_row == Some(row);
            if row_hits_only && !is_row_hit {
                i += 1;
                continue;
            }
            let d = &self.cfg.dram;
            let access = if is_row_hit {
                self.stats.row_hits += 1;
                d.t_cl
            } else if bank.open_row.is_some() {
                self.stats.row_conflicts += 1;
                d.t_rp + d.t_rcd + d.t_cl
            } else {
                self.stats.row_empty += 1;
                d.t_rcd + d.t_cl
            };
            // Data burst serializes on the channel bus.
            let data_start = (now + access as u64).max(self.chan_bus_free[chan]);
            let data_end = data_start + d.t_burst as u64;
            self.chan_bus_free[chan] = data_end;
            self.banks[bidx] = Bank {
                open_row: Some(row),
                busy_until: data_end,
            };
            if p.is_scrub {
                // Patrol traffic: occupies the bank and bus (already
                // charged above) but is fire-and-forget — no done entry,
                // and demand-queueing metrics stay demand-only.
                self.stats.scrub_reads += 1;
            } else {
                self.stats.queue_cycles += now.saturating_sub(p.submitted);
                if p.is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                if let Some(noc) = self.noc.as_deref_mut() {
                    // Mesh: the data burst rides a response flit back to
                    // the requester's node instead of a fixed return hop.
                    noc.schedule_response(data_end, p.token, p.addr, p.port);
                } else {
                    self.done
                        .insert(p.token, data_end + self.cfg.xbar_latency as u64);
                }
            }
            self.inflight.swap_remove(i);
            // Do not advance i: swap_remove moved a new element here.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_from_until_done(f: &mut Fabric, start: u64, token: ReqToken, limit: u64) -> u64 {
        for now in start..start + limit {
            f.tick(now);
            if f.is_done(token, now) {
                return now;
            }
        }
        panic!("request did not complete within {limit} cycles");
    }

    fn run_until_done(f: &mut Fabric, token: ReqToken, limit: u64) -> u64 {
        run_from_until_done(f, 0, token, limit)
    }

    #[test]
    fn single_read_latency_bounds() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0x1000, false);
        let done = run_until_done(&mut f, t, 1000);
        let cfg = FabricConfig::default();
        // Cold bank: activate + CAS + burst + 2 crossbar hops.
        let expect =
            (cfg.dram.t_rcd + cfg.dram.t_cl + cfg.dram.t_burst + 2 * cfg.xbar_latency) as u64;
        assert!(
            done >= expect && done <= expect + 2,
            "done={done} expect≈{expect}"
        );
        f.retire(t);
        assert!(!f.is_done(t, done + 1));
    }

    #[test]
    fn row_hit_faster_than_conflict() {
        let mut f = Fabric::new(FabricConfig::default());
        // Same bank & row (stride = channels * banks lines): row hit.
        let d0 = f.config().dram;
        let same_row_stride = 64 * d0.channels as u64 * d0.banks_per_channel as u64;
        let t1 = f.submit(0, 0, 0x1000, false);
        let e1 = run_until_done(&mut f, t1, 1000);
        let t2 = f.submit(e1, 0, 0x1000 + same_row_stride, false);
        let e2 = run_from_until_done(&mut f, e1, t2, 10_000) - e1;
        // Different row, same bank: conflict.
        let d = f.config().dram;
        let stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let t3 = f.submit(e1 + e2, 0, 0x1000 + stride, false);
        let e3 = run_from_until_done(&mut f, e1 + e2, t3, 100_000) - (e1 + e2);
        assert!(e2 < e3, "row hit {e2} must beat conflict {e3}");
        assert!(f.stats().row_hits >= 1);
        assert!(f.stats().row_conflicts >= 1);
    }

    #[test]
    fn bank_parallelism_beats_serialization() {
        // Two requests to different banks should overlap; to the same bank
        // they serialize.
        let cfg = FabricConfig::default();
        let mut f = Fabric::new(cfg);
        let d = cfg.dram;
        let bank_stride = 64 * d.channels as u64; // next bank, same channel
        let a = f.submit(0, 0, 0x0, false);
        let b = f.submit(0, 0, bank_stride, false);
        let done_a = run_until_done(&mut f, a, 10_000);
        let done_b = run_until_done(&mut f, b, 10_000);
        let parallel_span = done_a.max(done_b);

        let mut f2 = Fabric::new(cfg);
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let c = f2.submit(0, 0, 0x0, false);
        let e = f2.submit(0, 0, row_stride, false); // same bank, different row
        let done_c = run_until_done(&mut f2, c, 10_000);
        let done_e = run_until_done(&mut f2, e, 10_000);
        let serial_span = done_c.max(done_e);
        assert!(
            parallel_span < serial_span,
            "bank-parallel {parallel_span} vs serialized {serial_span}"
        );
    }

    #[test]
    fn accept_rate_limits_throughput() {
        let slow = FabricConfig {
            xbar_accepts_per_cycle: 1,
            ..FabricConfig::default()
        };
        let fast = FabricConfig {
            xbar_accepts_per_cycle: 16,
            ..FabricConfig::default()
        };

        let run = |cfg: FabricConfig| -> u64 {
            let mut f = Fabric::new(cfg);
            let tokens: Vec<_> = (0..32).map(|i| f.submit(0, 0, i * 64, false)).collect();
            let mut now = 0;
            loop {
                f.tick(now);
                if tokens.iter().all(|&t| f.is_done(t, now)) {
                    return now;
                }
                now += 1;
                assert!(now < 100_000);
            }
        };
        assert!(run(fast) <= run(slow));
    }

    #[test]
    fn writes_complete_and_count() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 1, 0x2000, true);
        run_until_done(&mut f, t, 1000);
        assert_eq!(f.stats().writes, 1);
        assert_eq!(f.stats().reads, 0);
    }

    #[test]
    fn epoch_stats_report_per_interval_traffic() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0, false);
        run_until_done(&mut f, t, 1000);
        let first = f.epoch_stats();
        assert_eq!(first.reads, 1);
        assert_eq!(first.writes, 0);

        // Nothing happened since the mark: the next epoch is empty.
        let idle = f.epoch_stats();
        assert_eq!(idle.reads, 0);
        assert_eq!(idle.writes, 0);

        let t = f.submit(0, 0, 0x40, true);
        run_until_done(&mut f, t, 1000);
        let second = f.epoch_stats();
        assert_eq!(second.writes, 1);
        assert_eq!(second.reads, 0);
        // Cumulative stats are untouched by epoch sampling.
        assert_eq!(f.stats().reads, 1);
        assert_eq!(f.stats().writes, 1);
    }

    #[test]
    fn delta_since_saturates_per_field() {
        let a = FabricStats {
            reads: 5,
            writes: 1,
            ..FabricStats::default()
        };
        let b = FabricStats {
            reads: 2,
            writes: 3,
            ..FabricStats::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0); // saturates instead of wrapping
    }

    #[test]
    fn outstanding_drains() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0, false);
        assert_eq!(f.outstanding(), 1);
        let done = run_until_done(&mut f, t, 1000);
        assert_eq!(f.outstanding(), 0);
        f.retire(t);
        let _ = done;
    }

    #[test]
    fn scrub_reads_count_and_contend() {
        let cfg = FabricConfig::default();
        let mut f = Fabric::new(cfg);
        // Patrol the same bank the demand read needs: the demand read must
        // wait behind the scrub's bank occupancy.
        f.submit_scrub(0, 0x1000);
        let t = f.submit(0, 0, 0x1000, false);
        let done = run_until_done(&mut f, t, 10_000);
        assert_eq!(f.stats().scrub_reads, 1);
        assert_eq!(f.stats().reads, 1);
        assert!(
            done > f.unloaded_read_latency() as u64,
            "demand read at {done} should queue behind the scrub"
        );
        assert_eq!(f.outstanding(), 0, "scrubs drain without retirement");
    }

    #[test]
    fn retired_row_still_serves_traffic() {
        let mut f = Fabric::new(FabricConfig::default());
        f.provision_spare_rows(2);
        let addr = 0x4000;
        let key = f.row_key(addr);
        assert!(matches!(
            f.retire_row(addr),
            crate::remap::RetireOutcome::Spared { spare: 0 }
        ));
        assert!(f.remap().is_retired(key));
        // Accesses to the retired row transparently land on the spare.
        let t = f.submit(0, 0, addr, false);
        run_until_done(&mut f, t, 10_000);
        assert_eq!(f.stats().reads, 1);
        // Retirement is idempotent: no second spare is consumed.
        f.retire_row(addr);
        assert_eq!(f.remap().spares_left(), 1);
    }

    #[test]
    fn fenced_rows_share_the_remnant_row() {
        let cfg = FabricConfig::default();
        let d = cfg.dram;
        let mut f = Fabric::new(cfg);
        f.provision_spare_rows(0);
        // Two different rows of the same bank, both fenced: their accesses
        // now collapse onto one remnant row and row-hit each other.
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        assert_eq!(f.retire_row(0), crate::remap::RetireOutcome::Fenced);
        assert_eq!(
            f.retire_row(row_stride),
            crate::remap::RetireOutcome::Fenced
        );
        let a = f.submit(0, 0, 0, false);
        let done_a = run_until_done(&mut f, a, 10_000);
        let b = f.submit(done_a, 0, row_stride, false);
        run_from_until_done(&mut f, done_a, b, 10_000);
        assert!(
            f.stats().row_hits >= 1,
            "fenced rows collapse onto one row buffer"
        );
    }

    fn mesh_cfg(cols: usize, rows: usize) -> FabricConfig {
        FabricConfig {
            topology: FabricTopology::Mesh { cols, rows },
            ..FabricConfig::default()
        }
    }

    #[test]
    fn per_port_counters_attribute_traffic() {
        let mut f = Fabric::new(FabricConfig::default());
        let a = f.submit(0, 2, 0x1000, false);
        let b = f.submit(0, 3, 0x2000, true);
        run_until_done(&mut f, a, 10_000);
        run_until_done(&mut f, b, 10_000);
        assert_eq!(f.stats().per_port[2], [1, 0]);
        assert_eq!(f.stats().per_port[3], [0, 1]);
        // High ports alias modulo MAX_STAT_PORTS.
        let c = f.submit(0, MAX_STAT_PORTS + 2, 0x3000, false);
        run_until_done(&mut f, c, 10_000);
        assert_eq!(f.stats().per_port[2], [2, 0]);
    }

    #[test]
    fn mesh_request_completes_and_counts_hops() {
        let mut f = Fabric::new(mesh_cfg(2, 2));
        let t = f.submit(0, 0, 0x1000, false);
        let done = run_until_done(&mut f, t, 10_000);
        f.retire(t);
        assert_eq!(f.stats().reads, 1);
        assert!(f.stats().noc_hops >= 4, "corner round trip is >= 4 hops");
        assert_eq!(f.outstanding(), 0);
        // Unloaded mesh latency stays in the same regime as the crossbar.
        let mut xbar = Fabric::new(FabricConfig::default());
        let tx = xbar.submit(0, 0, 0x1000, false);
        let done_x = run_until_done(&mut xbar, tx, 10_000);
        assert!(
            done < done_x * 3,
            "mesh {done} should not blow up vs crossbar {done_x}"
        );
    }

    #[test]
    fn mesh_link_fault_retransmits_and_retires() {
        let mut f = Fabric::new(mesh_cfg(2, 2));
        let link = f.inject_link_fault(0).expect("mesh has links");
        let t = f.submit(0, 0, 0x40, false);
        run_until_done(&mut f, t, 100_000);
        assert_eq!(f.stats().noc_crc_detected, 1);
        assert_eq!(f.stats().noc_retransmissions, 1);
        assert!(f.noc_fault().is_none());
        assert_eq!(f.retire_link(link), Some(LinkRetireOutcome::Rerouted));
        assert_eq!(f.stats().noc_links_retired, 1);
        let t2 = f.submit(200_000, 0, 0x80, false);
        let start = 200_000;
        let done = run_from_until_done(&mut f, start, t2, 100_000);
        assert!(done > start, "route-around still delivers");
        let h = f.link_health().unwrap();
        assert_eq!(h.retired, 1);
    }

    #[test]
    fn crossbar_has_no_noc_surface() {
        let mut f = Fabric::new(FabricConfig::default());
        assert_eq!(f.topology(), FabricTopology::Crossbar);
        assert!(f.inject_link_fault(0).is_none());
        assert!(f.retire_link(0).is_none());
        assert!(f.link_health().is_none());
        assert!(f.noc_fault().is_none());
    }

    #[test]
    fn mesh_scrubs_still_flow() {
        let mut f = Fabric::new(mesh_cfg(2, 2));
        f.submit_scrub(0, 0x1000);
        let mut now = 0;
        while f.stats().scrub_reads == 0 {
            f.tick(now);
            now += 1;
            assert!(now < 10_000);
        }
        assert_eq!(f.outstanding(), 0);
    }

    #[test]
    fn queueing_under_load_increases_latency() {
        // A burst of same-bank requests: the last one waits far longer than
        // an unloaded request.
        let cfg = FabricConfig::default();
        let d = cfg.dram;
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let mut f = Fabric::new(cfg);
        let tokens: Vec<_> = (0..8)
            .map(|i| f.submit(0, 0, i as u64 * row_stride, false))
            .collect();
        let mut now = 0;
        while !tokens.iter().all(|&t| f.is_done(t, now)) {
            f.tick(now);
            now += 1;
            assert!(now < 100_000);
        }
        assert!(
            now > f.unloaded_read_latency() as u64 * 4,
            "8 same-bank conflicts must serialize (took {now})"
        );
    }
}
