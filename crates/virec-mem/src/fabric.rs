//! The system crossbar and DRAM timing model.
//!
//! Near-memory processors in the paper attach to the system crossbar next to
//! the memory controller (configuration from \[8, 11\] in the paper). The
//! [`Fabric`] models both pieces: a crossbar with a fixed hop latency and a
//! bounded per-cycle accept rate, and a DDR5-like DRAM with per-bank
//! row-buffer state, bank busy times, and channel data-bus occupancy.
//!
//! The model is timing-only: functional data lives in the flat memory owned
//! by the system. Requests are identified by opaque tokens that requesters
//! poll for completion.

use crate::remap::{RemapTable, RetireOutcome};
use std::collections::{HashMap, VecDeque};

/// Identifies the requester port (one per cache that talks to the fabric).
pub type PortId = usize;

/// Opaque identifier of an in-flight fabric request.
pub type ReqToken = u64;

/// DRAM timing and geometry parameters (all times in core cycles at 1 GHz).
///
/// Defaults approximate the paper's DDR5_6400, 1 rank, 2 channels,
/// tRP-tCL-tRCD = 14-14-14 (Table 1) as seen from a 1 GHz near-memory core.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Number of channels (power of two).
    pub channels: usize,
    /// Banks per channel (power of two).
    pub banks_per_channel: usize,
    /// Consecutive cache lines mapped to one row (row-buffer size / 64).
    pub lines_per_row: u64,
    /// Precharge latency.
    pub t_rp: u32,
    /// Activate (row-to-column) latency.
    pub t_rcd: u32,
    /// Column access (CAS) latency.
    pub t_cl: u32,
    /// Data-burst time for one 64B line on the channel bus.
    pub t_burst: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            lines_per_row: 128, // 8 KiB row buffer
            t_rp: 14,
            t_rcd: 14,
            t_cl: 14,
            t_burst: 8,
        }
    }
}

impl DramConfig {
    /// Latency of a row-buffer hit (CAS + burst).
    pub fn row_hit_latency(&self) -> u32 {
        self.t_cl + self.t_burst
    }

    /// Latency of a row-buffer conflict (precharge + activate + CAS + burst).
    pub fn row_conflict_latency(&self) -> u32 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

/// Crossbar + DRAM configuration.
///
/// The default crossbar hop (18 cycles each way) yields an unloaded load
/// latency of roughly 80 cycles at 1 GHz — near-memory placement at the
/// memory-controller crossbar removes only 20–30% of the host's latency
/// (§1 of the paper, citing \[54\]), and the remainder must be hidden by
/// multithreading.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// One-way crossbar hop latency in cycles.
    pub xbar_latency: u32,
    /// Requests the crossbar accepts per cycle (shared across ports).
    pub xbar_accepts_per_cycle: usize,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            xbar_latency: 18,
            xbar_accepts_per_cycle: 4,
            dram: DramConfig::default(),
        }
    }
}

/// Aggregate fabric statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Read-line requests serviced.
    pub reads: u64,
    /// Write-line requests serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that conflicted with an open row (precharge + activate).
    pub row_conflicts: u64,
    /// Accesses to a bank with no open row (activate only).
    pub row_empty: u64,
    /// Total cycles requests spent queued before bank service.
    pub queue_cycles: u64,
    /// Patrol-scrub reads serviced (fire-and-forget RAS traffic; these
    /// occupy banks and bus slots like demand reads but deliver no data).
    pub scrub_reads: u64,
}

impl FabricStats {
    /// Per-field difference `self - earlier` (saturating). With `earlier`
    /// a snapshot of the same monotonically growing counters, this is the
    /// traffic of the interval between the two observations.
    pub fn delta_since(&self, earlier: &FabricStats) -> FabricStats {
        FabricStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            row_conflicts: self.row_conflicts.saturating_sub(earlier.row_conflicts),
            row_empty: self.row_empty.saturating_sub(earlier.row_empty),
            queue_cycles: self.queue_cycles.saturating_sub(earlier.queue_cycles),
            scrub_reads: self.scrub_reads.saturating_sub(earlier.scrub_reads),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    token: ReqToken,
    addr: u64,
    is_write: bool,
    /// Fire-and-forget patrol read: occupies the bank and bus but is
    /// never entered into the done map (nobody polls it).
    is_scrub: bool,
    submitted: u64,
    /// Cycle the request reaches the memory controller.
    arrive_at: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The crossbar + DRAM fabric shared by all near-memory cores.
#[derive(Clone)]
pub struct Fabric {
    cfg: FabricConfig,
    banks: Vec<Bank>,
    chan_bus_free: Vec<u64>,
    /// Submitted but not yet accepted by the crossbar.
    accept_queue: VecDeque<Pending>,
    /// Accepted, waiting for bank service.
    inflight: Vec<Pending>,
    /// token -> absolute cycle at which the response is available.
    done: HashMap<ReqToken, u64>,
    next_token: ReqToken,
    stats: FabricStats,
    /// Snapshot of `stats` at the last [`Fabric::epoch_stats`] call.
    epoch_mark: FabricStats,
    /// RAS spare-row remap table consulted on every address mapping.
    remap: RemapTable,
}

impl Fabric {
    /// Creates a fabric.
    pub fn new(cfg: FabricConfig) -> Fabric {
        let nbanks = cfg.dram.channels * cfg.dram.banks_per_channel;
        Fabric {
            cfg,
            banks: vec![Bank::default(); nbanks],
            chan_bus_free: vec![0; cfg.dram.channels],
            accept_queue: VecDeque::new(),
            inflight: Vec::new(),
            done: HashMap::new(),
            next_token: 0,
            stats: FabricStats::default(),
            epoch_mark: FabricStats::default(),
            remap: RemapTable::default(),
        }
    }

    /// Provisions `n` spare DRAM rows for RAS retirement. Replaces the
    /// remap table; call once at machine construction, before any
    /// retirement.
    pub fn provision_spare_rows(&mut self, n: u32) {
        self.remap = RemapTable::new(n);
    }

    /// The RAS remap table (retired-row count, spares left).
    pub fn remap(&self) -> &RemapTable {
        &self.remap
    }

    /// Packed `(channel, bank, row)` region key of `addr` under the *raw*
    /// (pre-remap) mapping — the key the CE tracker and the remap table
    /// index by.
    pub fn row_key(&self, addr: u64) -> u64 {
        let (chan, bank, row) = self.map_addr_raw(addr);
        RemapTable::pack(chan, bank, row)
    }

    /// Retires the DRAM row behind `addr`: remaps it onto a spare row if
    /// one is left, otherwise fences it onto the shared remnant row.
    /// Idempotent per row.
    pub fn retire_row(&mut self, addr: u64) -> RetireOutcome {
        let key = self.row_key(addr);
        self.remap.retire(key)
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Traffic since the previous `epoch_stats` call (or since construction
    /// for the first call), advancing the epoch mark. Callers sampling the
    /// fabric on a fixed cadence get per-interval counters without having
    /// to snapshot and subtract themselves.
    pub fn epoch_stats(&mut self) -> FabricStats {
        let delta = self.stats.delta_since(&self.epoch_mark);
        self.epoch_mark = self.stats;
        delta
    }

    /// Best-case (unloaded, row-hit) read latency through the fabric.
    pub fn unloaded_read_latency(&self) -> u32 {
        2 * self.cfg.xbar_latency + self.cfg.dram.row_hit_latency()
    }

    /// Submits a 64B line request. Returns a token to poll with
    /// [`Fabric::is_done`].
    pub fn submit(&mut self, now: u64, _port: PortId, addr: u64, is_write: bool) -> ReqToken {
        let token = self.next_token;
        self.next_token += 1;
        self.accept_queue.push_back(Pending {
            token,
            addr,
            is_write,
            is_scrub: false,
            submitted: now,
            arrive_at: 0,
        });
        token
    }

    /// Submits a fire-and-forget patrol-scrub read of the line at `addr`.
    /// The read takes a real trip through the crossbar and occupies its
    /// bank like any demand read — scrub bandwidth contends with demand
    /// traffic — but completes silently (no token to poll, counted in
    /// [`FabricStats::scrub_reads`]).
    pub fn submit_scrub(&mut self, now: u64, addr: u64) {
        let token = self.next_token;
        self.next_token += 1;
        self.accept_queue.push_back(Pending {
            token,
            addr,
            is_write: false,
            is_scrub: true,
            submitted: now,
            arrive_at: 0,
        });
    }

    /// Whether the response for `token` is available at cycle `now`.
    pub fn is_done(&self, token: ReqToken, now: u64) -> bool {
        self.done.get(&token).is_some_and(|&t| t <= now)
    }

    /// Removes a completed token. Call after [`Fabric::is_done`] returns true.
    pub fn retire(&mut self, token: ReqToken) {
        let removed = self.done.remove(&token);
        debug_assert!(removed.is_some(), "retiring unknown token {token}");
    }

    /// Absolute cycle at which `token`'s response becomes available, once
    /// bank scheduling has decided it. `None` while the request is still
    /// queued or in flight (its completion time is not yet known).
    pub fn done_at(&self, token: ReqToken) -> Option<u64> {
        self.done.get(&token).copied()
    }

    /// Earliest future cycle at which [`Fabric::tick`] could do anything,
    /// assuming no new submissions arrive. Call after `tick(now)`. `None`
    /// means the fabric is quiescent (no queued or in-flight requests);
    /// completed-but-unretired responses need no further fabric ticks.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.accept_queue.is_empty() {
            // Crossbar acceptance happens every tick while the queue is
            // non-empty.
            return Some(now + 1);
        }
        // An in-flight request is serviceable once it has arrived at the
        // controller and its bank is free. Bank busy times only shrink via
        // other services, which themselves require a tick at or after this
        // minimum, so the min over requests is a safe wakeup.
        self.inflight
            .iter()
            .map(|p| {
                let (chan, bank_idx, _) = self.map_addr(p.addr);
                let bidx = chan * self.cfg.dram.banks_per_channel + bank_idx;
                p.arrive_at.max(self.banks[bidx].busy_until).max(now + 1)
            })
            .min()
    }

    /// Number of requests somewhere in the fabric (excluding completed).
    pub fn outstanding(&self) -> usize {
        self.accept_queue.len() + self.inflight.len()
    }

    /// Fault-injection hook: line address of one in-flight request (`nth`
    /// wraps modulo the number outstanding), or `None` when the fabric is
    /// idle. The fabric carries timing only — campaigns model a corrupted
    /// response by flipping a bit of the functional line this request will
    /// deliver.
    pub fn inflight_addr(&self, nth: usize) -> Option<u64> {
        let total = self.accept_queue.len() + self.inflight.len();
        if total == 0 {
            return None;
        }
        let k = nth % total;
        if k < self.accept_queue.len() {
            Some(self.accept_queue[k].addr)
        } else {
            Some(self.inflight[k - self.accept_queue.len()].addr)
        }
    }

    fn map_addr_raw(&self, addr: u64) -> (usize, usize, u64) {
        let d = &self.cfg.dram;
        let line = addr >> 6;
        let chan = (line as usize) & (d.channels - 1);
        let bank = ((line as usize) >> d.channels.trailing_zeros()) & (d.banks_per_channel - 1);
        let row = line / (d.channels as u64 * d.banks_per_channel as u64) / d.lines_per_row;
        (chan, bank, row)
    }

    /// Raw mapping plus the RAS remap indirection: a retired row's
    /// accesses land on its spare (or the fence row) instead.
    fn map_addr(&self, addr: u64) -> (usize, usize, u64) {
        let (chan, bank, row) = self.map_addr_raw(addr);
        if self.remap.is_empty() {
            return (chan, bank, row);
        }
        match self.remap.resolve(RemapTable::pack(chan, bank, row)) {
            Some(replacement) => (chan, bank, replacement),
            None => (chan, bank, row),
        }
    }

    /// Advances the fabric by one cycle: accepts crossbar requests and
    /// schedules bank accesses. Call once per core cycle with the current
    /// cycle number (monotonically non-decreasing).
    pub fn tick(&mut self, now: u64) {
        // Crossbar acceptance: bounded number of requests per cycle.
        for _ in 0..self.cfg.xbar_accepts_per_cycle {
            let Some(mut p) = self.accept_queue.pop_front() else {
                break;
            };
            p.arrive_at = now + self.cfg.xbar_latency as u64;
            self.inflight.push(p);
        }

        // Bank scheduling, FR-FCFS-lite: row hits first, then FCFS.
        self.schedule_pass(now, true);
        self.schedule_pass(now, false);
    }

    fn schedule_pass(&mut self, now: u64, row_hits_only: bool) {
        let mut i = 0;
        while i < self.inflight.len() {
            let p = self.inflight[i];
            if p.arrive_at > now {
                i += 1;
                continue;
            }
            let (chan, bank_idx, row) = self.map_addr(p.addr);
            let bidx = chan * self.cfg.dram.banks_per_channel + bank_idx;
            let bank = self.banks[bidx];
            if bank.busy_until > now {
                i += 1;
                continue;
            }
            let is_row_hit = bank.open_row == Some(row);
            if row_hits_only && !is_row_hit {
                i += 1;
                continue;
            }
            let d = &self.cfg.dram;
            let access = if is_row_hit {
                self.stats.row_hits += 1;
                d.t_cl
            } else if bank.open_row.is_some() {
                self.stats.row_conflicts += 1;
                d.t_rp + d.t_rcd + d.t_cl
            } else {
                self.stats.row_empty += 1;
                d.t_rcd + d.t_cl
            };
            // Data burst serializes on the channel bus.
            let data_start = (now + access as u64).max(self.chan_bus_free[chan]);
            let data_end = data_start + d.t_burst as u64;
            self.chan_bus_free[chan] = data_end;
            self.banks[bidx] = Bank {
                open_row: Some(row),
                busy_until: data_end,
            };
            let ready = data_end + self.cfg.xbar_latency as u64;
            if p.is_scrub {
                // Patrol traffic: occupies the bank and bus (already
                // charged above) but is fire-and-forget — no done entry,
                // and demand-queueing metrics stay demand-only.
                self.stats.scrub_reads += 1;
            } else {
                self.stats.queue_cycles += now.saturating_sub(p.submitted);
                if p.is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                self.done.insert(p.token, ready);
            }
            self.inflight.swap_remove(i);
            // Do not advance i: swap_remove moved a new element here.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_from_until_done(f: &mut Fabric, start: u64, token: ReqToken, limit: u64) -> u64 {
        for now in start..start + limit {
            f.tick(now);
            if f.is_done(token, now) {
                return now;
            }
        }
        panic!("request did not complete within {limit} cycles");
    }

    fn run_until_done(f: &mut Fabric, token: ReqToken, limit: u64) -> u64 {
        run_from_until_done(f, 0, token, limit)
    }

    #[test]
    fn single_read_latency_bounds() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0x1000, false);
        let done = run_until_done(&mut f, t, 1000);
        let cfg = FabricConfig::default();
        // Cold bank: activate + CAS + burst + 2 crossbar hops.
        let expect =
            (cfg.dram.t_rcd + cfg.dram.t_cl + cfg.dram.t_burst + 2 * cfg.xbar_latency) as u64;
        assert!(
            done >= expect && done <= expect + 2,
            "done={done} expect≈{expect}"
        );
        f.retire(t);
        assert!(!f.is_done(t, done + 1));
    }

    #[test]
    fn row_hit_faster_than_conflict() {
        let mut f = Fabric::new(FabricConfig::default());
        // Same bank & row (stride = channels * banks lines): row hit.
        let d0 = f.config().dram;
        let same_row_stride = 64 * d0.channels as u64 * d0.banks_per_channel as u64;
        let t1 = f.submit(0, 0, 0x1000, false);
        let e1 = run_until_done(&mut f, t1, 1000);
        let t2 = f.submit(e1, 0, 0x1000 + same_row_stride, false);
        let e2 = run_from_until_done(&mut f, e1, t2, 10_000) - e1;
        // Different row, same bank: conflict.
        let d = f.config().dram;
        let stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let t3 = f.submit(e1 + e2, 0, 0x1000 + stride, false);
        let e3 = run_from_until_done(&mut f, e1 + e2, t3, 100_000) - (e1 + e2);
        assert!(e2 < e3, "row hit {e2} must beat conflict {e3}");
        assert!(f.stats().row_hits >= 1);
        assert!(f.stats().row_conflicts >= 1);
    }

    #[test]
    fn bank_parallelism_beats_serialization() {
        // Two requests to different banks should overlap; to the same bank
        // they serialize.
        let cfg = FabricConfig::default();
        let mut f = Fabric::new(cfg);
        let d = cfg.dram;
        let bank_stride = 64 * d.channels as u64; // next bank, same channel
        let a = f.submit(0, 0, 0x0, false);
        let b = f.submit(0, 0, bank_stride, false);
        let done_a = run_until_done(&mut f, a, 10_000);
        let done_b = run_until_done(&mut f, b, 10_000);
        let parallel_span = done_a.max(done_b);

        let mut f2 = Fabric::new(cfg);
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let c = f2.submit(0, 0, 0x0, false);
        let e = f2.submit(0, 0, row_stride, false); // same bank, different row
        let done_c = run_until_done(&mut f2, c, 10_000);
        let done_e = run_until_done(&mut f2, e, 10_000);
        let serial_span = done_c.max(done_e);
        assert!(
            parallel_span < serial_span,
            "bank-parallel {parallel_span} vs serialized {serial_span}"
        );
    }

    #[test]
    fn accept_rate_limits_throughput() {
        let slow = FabricConfig {
            xbar_accepts_per_cycle: 1,
            ..FabricConfig::default()
        };
        let fast = FabricConfig {
            xbar_accepts_per_cycle: 16,
            ..FabricConfig::default()
        };

        let run = |cfg: FabricConfig| -> u64 {
            let mut f = Fabric::new(cfg);
            let tokens: Vec<_> = (0..32).map(|i| f.submit(0, 0, i * 64, false)).collect();
            let mut now = 0;
            loop {
                f.tick(now);
                if tokens.iter().all(|&t| f.is_done(t, now)) {
                    return now;
                }
                now += 1;
                assert!(now < 100_000);
            }
        };
        assert!(run(fast) <= run(slow));
    }

    #[test]
    fn writes_complete_and_count() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 1, 0x2000, true);
        run_until_done(&mut f, t, 1000);
        assert_eq!(f.stats().writes, 1);
        assert_eq!(f.stats().reads, 0);
    }

    #[test]
    fn epoch_stats_report_per_interval_traffic() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0, false);
        run_until_done(&mut f, t, 1000);
        let first = f.epoch_stats();
        assert_eq!(first.reads, 1);
        assert_eq!(first.writes, 0);

        // Nothing happened since the mark: the next epoch is empty.
        let idle = f.epoch_stats();
        assert_eq!(idle.reads, 0);
        assert_eq!(idle.writes, 0);

        let t = f.submit(0, 0, 0x40, true);
        run_until_done(&mut f, t, 1000);
        let second = f.epoch_stats();
        assert_eq!(second.writes, 1);
        assert_eq!(second.reads, 0);
        // Cumulative stats are untouched by epoch sampling.
        assert_eq!(f.stats().reads, 1);
        assert_eq!(f.stats().writes, 1);
    }

    #[test]
    fn delta_since_saturates_per_field() {
        let a = FabricStats {
            reads: 5,
            writes: 1,
            ..FabricStats::default()
        };
        let b = FabricStats {
            reads: 2,
            writes: 3,
            ..FabricStats::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0); // saturates instead of wrapping
    }

    #[test]
    fn outstanding_drains() {
        let mut f = Fabric::new(FabricConfig::default());
        let t = f.submit(0, 0, 0, false);
        assert_eq!(f.outstanding(), 1);
        let done = run_until_done(&mut f, t, 1000);
        assert_eq!(f.outstanding(), 0);
        f.retire(t);
        let _ = done;
    }

    #[test]
    fn scrub_reads_count_and_contend() {
        let cfg = FabricConfig::default();
        let mut f = Fabric::new(cfg);
        // Patrol the same bank the demand read needs: the demand read must
        // wait behind the scrub's bank occupancy.
        f.submit_scrub(0, 0x1000);
        let t = f.submit(0, 0, 0x1000, false);
        let done = run_until_done(&mut f, t, 10_000);
        assert_eq!(f.stats().scrub_reads, 1);
        assert_eq!(f.stats().reads, 1);
        assert!(
            done > f.unloaded_read_latency() as u64,
            "demand read at {done} should queue behind the scrub"
        );
        assert_eq!(f.outstanding(), 0, "scrubs drain without retirement");
    }

    #[test]
    fn retired_row_still_serves_traffic() {
        let mut f = Fabric::new(FabricConfig::default());
        f.provision_spare_rows(2);
        let addr = 0x4000;
        let key = f.row_key(addr);
        assert!(matches!(
            f.retire_row(addr),
            crate::remap::RetireOutcome::Spared { spare: 0 }
        ));
        assert!(f.remap().is_retired(key));
        // Accesses to the retired row transparently land on the spare.
        let t = f.submit(0, 0, addr, false);
        run_until_done(&mut f, t, 10_000);
        assert_eq!(f.stats().reads, 1);
        // Retirement is idempotent: no second spare is consumed.
        f.retire_row(addr);
        assert_eq!(f.remap().spares_left(), 1);
    }

    #[test]
    fn fenced_rows_share_the_remnant_row() {
        let cfg = FabricConfig::default();
        let d = cfg.dram;
        let mut f = Fabric::new(cfg);
        f.provision_spare_rows(0);
        // Two different rows of the same bank, both fenced: their accesses
        // now collapse onto one remnant row and row-hit each other.
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        assert_eq!(f.retire_row(0), crate::remap::RetireOutcome::Fenced);
        assert_eq!(
            f.retire_row(row_stride),
            crate::remap::RetireOutcome::Fenced
        );
        let a = f.submit(0, 0, 0, false);
        let done_a = run_until_done(&mut f, a, 10_000);
        let b = f.submit(done_a, 0, row_stride, false);
        run_from_until_done(&mut f, done_a, b, 10_000);
        assert!(
            f.stats().row_hits >= 1,
            "fenced rows collapse onto one row buffer"
        );
    }

    #[test]
    fn queueing_under_load_increases_latency() {
        // A burst of same-bank requests: the last one waits far longer than
        // an unloaded request.
        let cfg = FabricConfig::default();
        let d = cfg.dram;
        let row_stride = d.channels as u64 * d.banks_per_channel as u64 * d.lines_per_row * 64;
        let mut f = Fabric::new(cfg);
        let tokens: Vec<_> = (0..8)
            .map(|i| f.submit(0, 0, i as u64 * row_stride, false))
            .collect();
        let mut now = 0;
        while !tokens.iter().all(|&t| f.is_done(t, now)) {
            f.tick(now);
            now += 1;
            assert!(now < 100_000);
        }
        assert!(
            now > f.unloaded_read_latency() as u64 * 4,
            "8 same-bank conflicts must serialize (took {now})"
        );
    }
}
