//! Typed simulation errors.
//!
//! Every way a run can fail — budget exhaustion, livelock, golden-model
//! divergence, a wedged golden run, or a detected injected fault — is a
//! [`SimError`] variant carrying a [`RunDiagnostics`] snapshot of the core
//! at the moment of failure. `Display` renders a structured one-liner
//! suitable for logs and the CLI; the panicking wrappers (`run_single`,
//! `System::run`) forward that same line, so `#[should_panic]` expectations
//! written against the old assertion messages keep matching.

use virec_core::{Core, CoreConfig, EngineKind, PolicyKind};
use virec_isa::Reg;

/// Snapshot of a core's identity and progress counters at failure time.
#[derive(Clone, Debug)]
pub struct RunDiagnostics {
    /// Workload name (e.g. `spatter_gather`).
    pub workload: String,
    /// Context engine the core was running.
    pub engine: EngineKind,
    /// Replacement policy (meaningful for ViReC-family engines).
    pub policy: PolicyKind,
    /// Hardware thread count.
    pub nthreads: usize,
    /// Cycle at which the failure was raised.
    pub cycles: u64,
    /// Instructions committed so far.
    pub instructions: u64,
    /// Context switches taken so far.
    pub context_switches: u64,
    /// Register-file misses so far (0 for engines that never miss).
    pub rf_misses: u64,
    /// Last committed PC per thread (`None` if the thread never committed).
    pub last_commit_pc: Vec<Option<u32>>,
}

impl RunDiagnostics {
    /// Captures the diagnostic snapshot from a live core (boxed: the
    /// snapshot rides inside `SimError`, which stays small on the Ok path).
    pub fn capture(workload: &str, core: &Core, cycles: u64) -> Box<RunDiagnostics> {
        let cfg: &CoreConfig = core.config();
        let stats = core.stats();
        Box::new(RunDiagnostics {
            workload: workload.to_string(),
            engine: cfg.engine,
            policy: cfg.policy,
            nthreads: cfg.nthreads,
            cycles,
            instructions: stats.instructions,
            context_switches: stats.context_switches,
            rf_misses: stats.rf_misses,
            last_commit_pc: core.last_commit_pcs().to_vec(),
        })
    }

    /// A placeholder snapshot for failures raised outside a live core —
    /// e.g. a custom experiment cell observing its cancellation gate. Only
    /// the workload label carries information; every counter is zero.
    pub fn placeholder(label: &str) -> Box<RunDiagnostics> {
        Box::new(RunDiagnostics {
            workload: label.to_string(),
            engine: EngineKind::ViReC,
            policy: PolicyKind::Lrc,
            nthreads: 0,
            cycles: 0,
            instructions: 0,
            context_switches: 0,
            rf_misses: 0,
            last_commit_pc: Vec::new(),
        })
    }

    /// Renders the snapshot as a compact `key=value` record.
    pub fn summary(&self) -> String {
        let pcs: Vec<String> = self
            .last_commit_pc
            .iter()
            .map(|pc| match pc {
                Some(pc) => format!("{pc:#x}"),
                None => "-".to_string(),
            })
            .collect();
        format!(
            "workload={} engine={:?} policy={} nthreads={} cycles={} instructions={} \
             ctx_switches={} rf_misses={} last_commit_pc=[{}]",
            self.workload,
            self.engine,
            self.policy.label(),
            self.nthreads,
            self.cycles,
            self.instructions,
            self.context_switches,
            self.rf_misses,
            pcs.join(",")
        )
    }
}

/// Where the architectural state diverged from the golden interpreter.
#[derive(Clone, Debug)]
pub enum DivergenceSite {
    /// A register's final value disagrees.
    Register {
        /// Thread whose register diverged.
        thread: usize,
        /// The diverging register.
        reg: Reg,
        /// Value the timing core produced.
        got: u64,
        /// Value the golden interpreter produced.
        want: u64,
    },
    /// A byte range of the data segment disagrees.
    DataRange {
        /// Inclusive start of the compared window.
        lo: usize,
        /// Exclusive end of the compared window.
        hi: usize,
        /// Address of the first mismatching byte.
        first_mismatch: usize,
    },
}

impl std::fmt::Display for DivergenceSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceSite::Register {
                thread,
                reg,
                got,
                want,
            } => write!(
                f,
                "thread {thread} register {reg} diverged (got {got:#x}, want {want:#x})"
            ),
            DivergenceSite::DataRange {
                lo,
                hi,
                first_mismatch,
            } => write!(
                f,
                "data segment diverged (window {lo:#x}..{hi:#x}, first mismatch at {first_mismatch:#x})"
            ),
        }
    }
}

/// Everything that can go wrong during a simulation run.
#[derive(Clone, Debug)]
pub enum SimError {
    /// A system or service was asked to build with an invalid shape
    /// (zero cores, mismatched per-core slices, an empty task mix) —
    /// rejected before any core exists, so the diagnostics are a
    /// placeholder.
    Config {
        /// What was wrong with the configuration.
        detail: String,
        /// Placeholder snapshot (no core was live yet).
        diag: Box<RunDiagnostics>,
    },
    /// The run consumed its whole cycle budget while still making progress.
    CycleBudgetExceeded {
        /// The configured budget (`CoreConfig::max_cycles`).
        budget: u64,
        /// Core snapshot at the abort cycle.
        diag: Box<RunDiagnostics>,
    },
    /// No instruction committed for a long window: the machine is wedged,
    /// not slow.
    Livelock {
        /// Cycles since the last commit when the watchdog fired.
        stalled_cycles: u64,
        /// Multi-line pipeline/engine/MSHR state dump for postmortems.
        dump: String,
        /// Core snapshot at the abort cycle.
        diag: Box<RunDiagnostics>,
    },
    /// The finished run's architectural state disagrees with the golden
    /// interpreter.
    GoldenDivergence {
        /// First divergence found.
        site: DivergenceSite,
        /// Core snapshot after the run.
        diag: Box<RunDiagnostics>,
    },
    /// The golden interpreter itself failed to halt within its step cap —
    /// the reference model, not the timing model, is stuck.
    GoldenRunStuck {
        /// Thread whose golden run did not halt.
        thread: usize,
        /// Step cap the interpreter was given.
        step_cap: u64,
        /// Core snapshot after the run.
        diag: Box<RunDiagnostics>,
    },
    /// The run's wall-clock gate tripped: either its per-cell deadline
    /// expired or a cooperative cancellation (SIGINT abort) was requested.
    Deadline {
        /// Wall-clock milliseconds the run had consumed when it tripped.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds (0 when the trip came
        /// from an external cancellation with no deadline set).
        limit_ms: u64,
        /// Core snapshot at the abort cycle.
        diag: Box<RunDiagnostics>,
    },
    /// The modeled protection logic flagged a detected-but-uncorrectable
    /// error (double-bit under SEC-DED, parity mismatch) and no checkpoint
    /// was available to restore — the run must be re-executed from scratch.
    Uncorrectable {
        /// The corrupted site, in the stable kebab-case [`crate::fault::FaultSite`]
        /// spelling.
        site: String,
        /// Human-readable description of the detected corruption.
        detail: String,
        /// Core snapshot at the detection cycle.
        diag: Box<RunDiagnostics>,
    },
    /// The pipeline observed an internal structural hazard (e.g. a failed
    /// MSHR retire from a corrupted id) — a condition the hardware would
    /// raise a machine-check for, degraded to a typed error instead of a
    /// process abort.
    StructuralHazard {
        /// What the pipeline observed.
        detail: String,
        /// Core snapshot at the detection cycle.
        diag: Box<RunDiagnostics>,
    },
    /// An injected fault was caught: the underlying failure is wrapped so
    /// campaign drivers can separate detection from the detection mechanism.
    FaultDetected {
        /// Human-readable descriptions of the faults that were applied.
        faults: Vec<String>,
        /// The error the corrupted run surfaced.
        cause: Box<SimError>,
        /// Core snapshot from the failing run.
        diag: Box<RunDiagnostics>,
    },
}

impl SimError {
    /// Stable machine-readable kind tag (one token, for CSV/log fields).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Config { .. } => "config",
            SimError::CycleBudgetExceeded { .. } => "cycle_budget",
            SimError::Livelock { .. } => "livelock",
            SimError::GoldenDivergence { .. } => "golden_divergence",
            SimError::GoldenRunStuck { .. } => "golden_stuck",
            SimError::Deadline { .. } => "deadline",
            SimError::Uncorrectable { .. } => "uncorrectable",
            SimError::StructuralHazard { .. } => "structural_hazard",
            SimError::FaultDetected { .. } => "fault_detected",
        }
    }

    /// True when this failure came from an expired per-cell wall-clock
    /// deadline (as opposed to an external cancellation, which is a
    /// property of the interrupted process, not of the cell — resumable
    /// runs re-execute cancelled cells but replay expired ones).
    pub fn deadline_expired(&self) -> bool {
        match self.root_cause() {
            SimError::Deadline {
                elapsed_ms,
                limit_ms,
                ..
            } => *limit_ms > 0 && elapsed_ms >= limit_ms,
            _ => false,
        }
    }

    /// The diagnostic snapshot attached to this error.
    pub fn diagnostics(&self) -> &RunDiagnostics {
        match self {
            SimError::Config { diag, .. }
            | SimError::CycleBudgetExceeded { diag, .. }
            | SimError::Livelock { diag, .. }
            | SimError::GoldenDivergence { diag, .. }
            | SimError::GoldenRunStuck { diag, .. }
            | SimError::Deadline { diag, .. }
            | SimError::Uncorrectable { diag, .. }
            | SimError::StructuralHazard { diag, .. }
            | SimError::FaultDetected { diag, .. } => diag,
        }
    }

    /// Unwraps `FaultDetected` layers to the root failure.
    pub fn root_cause(&self) -> &SimError {
        match self {
            SimError::FaultDetected { cause, .. } => cause.root_cause(),
            other => other,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config { detail, diag } => {
                write!(f, "{}: invalid configuration — {}", diag.workload, detail)
            }
            SimError::CycleBudgetExceeded { budget, diag } => write!(
                f,
                "{}: exceeded {} cycles (engine {:?}, {} threads) [{}]",
                diag.workload,
                budget,
                diag.engine,
                diag.nthreads,
                diag.summary()
            ),
            SimError::Livelock {
                stalled_cycles,
                dump,
                diag,
            } => write!(
                f,
                "{}: livelock — no commit for {} cycles [{}]\n{}",
                diag.workload,
                stalled_cycles,
                diag.summary(),
                dump
            ),
            SimError::GoldenDivergence { site, diag } => {
                write!(f, "{}: {} [{}]", diag.workload, site, diag.summary())
            }
            SimError::GoldenRunStuck {
                thread,
                step_cap,
                diag,
            } => write!(
                f,
                "golden run of {} did not halt (thread {}, {} steps) [{}]",
                diag.workload,
                thread,
                step_cap,
                diag.summary()
            ),
            SimError::Deadline {
                elapsed_ms,
                limit_ms,
                diag,
            } => {
                if *limit_ms > 0 && elapsed_ms >= limit_ms {
                    write!(
                        f,
                        "{}: wall-clock deadline of {} ms expired after {} ms [{}]",
                        diag.workload,
                        limit_ms,
                        elapsed_ms,
                        diag.summary()
                    )
                } else {
                    write!(
                        f,
                        "{}: cancelled after {} ms [{}]",
                        diag.workload,
                        elapsed_ms,
                        diag.summary()
                    )
                }
            }
            SimError::Uncorrectable { site, detail, diag } => write!(
                f,
                "{}: uncorrectable error at {} ({}) [{}]",
                diag.workload,
                site,
                detail,
                diag.summary()
            ),
            SimError::StructuralHazard { detail, diag } => write!(
                f,
                "{}: structural hazard — {} [{}]",
                diag.workload,
                detail,
                diag.summary()
            ),
            SimError::FaultDetected {
                faults,
                cause,
                diag,
            } => write!(
                f,
                "{}: injected fault detected ({}) -> {}",
                diag.workload,
                faults.join("; "),
                cause
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::FaultDetected { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Box<RunDiagnostics> {
        Box::new(RunDiagnostics {
            workload: "test_wl".into(),
            engine: EngineKind::ViReC,
            policy: PolicyKind::Lrc,
            nthreads: 2,
            cycles: 1234,
            instructions: 99,
            context_switches: 3,
            rf_misses: 7,
            last_commit_pc: vec![Some(0x40), None],
        })
    }

    #[test]
    fn display_keeps_legacy_phrases() {
        let e = SimError::GoldenDivergence {
            site: DivergenceSite::Register {
                thread: 1,
                reg: Reg::new(4),
                got: 1,
                want: 2,
            },
            diag: diag(),
        };
        let s = e.to_string();
        assert!(s.contains("register"), "{s}");
        assert!(s.contains("diverged"), "{s}");

        let e = SimError::GoldenDivergence {
            site: DivergenceSite::DataRange {
                lo: 0,
                hi: 64,
                first_mismatch: 8,
            },
            diag: diag(),
        };
        assert!(e.to_string().contains("data segment diverged"));

        let e = SimError::GoldenRunStuck {
            thread: 0,
            step_cap: 100,
            diag: diag(),
        };
        assert!(e.to_string().contains("did not halt"));

        let e = SimError::CycleBudgetExceeded {
            budget: 500,
            diag: diag(),
        };
        assert!(e.to_string().contains("exceeded 500 cycles"));
    }

    #[test]
    fn kinds_and_root_cause() {
        let inner = SimError::Livelock {
            stalled_cycles: 10,
            dump: "t0 wedged".into(),
            diag: diag(),
        };
        let wrapped = SimError::FaultDetected {
            faults: vec!["tag-store[0] bit 3".into()],
            cause: Box::new(inner),
            diag: diag(),
        };
        assert_eq!(wrapped.kind(), "fault_detected");
        assert_eq!(wrapped.root_cause().kind(), "livelock");
        assert_eq!(wrapped.diagnostics().workload, "test_wl");
    }

    #[test]
    fn deadline_display_distinguishes_expiry_from_cancellation() {
        let expired = SimError::Deadline {
            elapsed_ms: 120,
            limit_ms: 100,
            diag: diag(),
        };
        assert!(expired.to_string().contains("deadline of 100 ms expired"));
        assert!(expired.deadline_expired());
        assert_eq!(expired.kind(), "deadline");

        let cancelled = SimError::Deadline {
            elapsed_ms: 7,
            limit_ms: 0,
            diag: diag(),
        };
        assert!(cancelled.to_string().contains("cancelled after 7 ms"));
        assert!(!cancelled.deadline_expired());

        let placeholder = RunDiagnostics::placeholder("cell/key");
        assert_eq!(placeholder.workload, "cell/key");
        assert_eq!(placeholder.cycles, 0);
    }

    #[test]
    fn summary_lists_per_thread_pcs() {
        let s = diag().summary();
        assert!(s.contains("last_commit_pc=[0x40,-]"), "{s}");
        assert!(s.contains("engine=ViReC"));
    }
}
