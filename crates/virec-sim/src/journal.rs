//! Append-only cell journal for crash-safe, resumable sweeps.
//!
//! As the [`Executor`](crate::experiment::Executor) finishes each cell it
//! appends one JSON record to `results/<name>.journal.jsonl` and fsyncs
//! it. If the process is killed — OOM, Ctrl-C, power loss — a later run
//! with `--resume` replays the journaled outcomes verbatim and only
//! re-executes the remainder, producing tables and final JSON
//! byte-identical to an uninterrupted run.
//!
//! File layout:
//!
//! ```text
//! {"journal":"virec","version":1,"experiment":"fig09","fingerprint":"0x…"}
//! {"key":"gather/banked","status":"ok","data":{"kind":"run",…}}
//! {"key":"gather/virec80","status":"failed","error_kind":"livelock",…}
//! ```
//!
//! * The header is written via temp-file + `rename`, so a journal either
//!   exists with a valid header or not at all.
//! * Each record is flushed and `fdatasync`'d before the cell is counted
//!   complete; a crash can truncate at most the final, in-flight line.
//! * The header carries a fingerprint of the spec (name + cell keys); a
//!   journal from a different spec is refused rather than misapplied.
//! * Truncated or corrupt records are skipped with a warning — the cells
//!   they covered simply re-run.
//!
//! Numeric fidelity: counters are `u64` and must round-trip exactly, so
//! the parser keeps raw number tokens and `arch_digest` travels as a hex
//! string (an `f64` detour would corrupt it). Metric values use Rust's
//! shortest-roundtrip float formatting; non-finite values are tagged
//! strings (`"NaN"`, `"inf"`, `"-inf"`).

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::ecc::EccStats;
use crate::experiment::{json_string, CellData, CellOutcome};
use crate::ras::RasStats;
use crate::runner::RunResult;
use crate::system::SystemResult;
use virec_core::{CoreStats, OracleSchedule};
use virec_mem::{CacheStats, FabricStats, MAX_STAT_PORTS};

/// Journal location for experiment `name` under `dir`.
pub fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.journal.jsonl"))
}

/// FNV-1a fingerprint of a spec's identity: its name, every cell key in
/// declaration order, and its provenance metadata (problem size and
/// friends). A resumed journal must match or it is refused — cell keys
/// alone would happily replay a journal recorded at a different problem
/// size, whose rows describe different numbers under identical keys.
pub fn spec_fingerprint<'a>(
    name: &str,
    keys: impl Iterator<Item = &'a str>,
    meta: impl Iterator<Item = (&'a str, &'a str)>,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(name.as_bytes());
    for k in keys {
        eat(k.as_bytes());
    }
    for (k, v) in meta {
        eat(k.as_bytes());
        eat(v.as_bytes());
    }
    h
}

/// Where journals are written and whether existing ones are replayed.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding `<name>.journal.jsonl` (usually the results dir).
    pub dir: PathBuf,
    /// Replay an existing journal instead of starting fresh.
    pub resume: bool,
}

/// Appends records to an open journal, one fsync'd line per cell.
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal: the header line is written to a temp file,
    /// synced, then renamed into place, so a half-written header can never
    /// be observed. The returned writer appends to the renamed file.
    pub fn create(dir: &Path, name: &str, fingerprint: u64) -> std::io::Result<JournalWriter> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".tmp.{name}.journal.jsonl"));
        let mut file = File::create(&tmp)?;
        let mut header = String::from("{\"journal\":\"virec\",\"version\":1,\"experiment\":");
        json_string(&mut header, name);
        header.push_str(&format!(",\"fingerprint\":\"{fingerprint:#018x}\"}}\n"));
        file.write_all(header.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, journal_path(dir, name))?;
        // The handle survives the rename: it names the inode, not the path.
        Ok(JournalWriter { file })
    }

    /// Opens an existing journal for appending (the resume path).
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Appends one record line and forces it to disk before returning.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }
}

/// Result of replaying a journal file.
pub enum JournalLoad {
    /// No journal at the path — nothing to resume.
    Missing,
    /// A journal exists but belongs to a different spec (name or cell set
    /// changed); it must not be applied.
    Mismatch,
    /// The file exists but its header line is corrupt or truncated (e.g.
    /// the process died mid-create, or the file was damaged on disk), so
    /// nothing about it can be trusted. Resume falls back to a fresh start
    /// with a warning rather than failing the sweep.
    CorruptHeader,
    /// Replayed records, in file order, plus the count of corrupt or
    /// truncated lines that were skipped.
    Loaded {
        /// `(key, outcome)` per valid record.
        records: Vec<(String, CellOutcome)>,
        /// Lines that failed to parse and were skipped.
        skipped_lines: usize,
    },
}

/// Replays the journal at `path`, validating its header against the
/// spec's name and fingerprint. Corrupt records are skipped, not fatal.
pub fn load(path: &Path, name: &str, fingerprint: u64) -> JournalLoad {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return JournalLoad::Missing,
    };
    let mut lines = text.lines();
    // An unparseable first line (or one missing the journal marker) is a
    // damaged file, not a spec conflict: distinguish it so resume can warn
    // accurately and start fresh instead of treating it as a mismatch.
    let Some(header) = lines.next().and_then(parse_json) else {
        return JournalLoad::CorruptHeader;
    };
    if header.get("journal").and_then(Json::str) != Some("virec") {
        return JournalLoad::CorruptHeader;
    }
    let head_ok = header.get("experiment").and_then(Json::str) == Some(name)
        && header.get("fingerprint").and_then(Json::u64) == Some(fingerprint);
    if !head_ok {
        return JournalLoad::Mismatch;
    }
    let mut records = Vec::new();
    let mut skipped_lines = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Some(rec) => records.push(rec),
            None => skipped_lines += 1,
        }
    }
    JournalLoad::Loaded {
        records,
        skipped_lines,
    }
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// Encodes one completed cell as a single journal line (no newline).
pub fn record_line(key: &str, outcome: &CellOutcome) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"key\":");
    json_string(&mut out, key);
    match outcome {
        CellOutcome::Ok(data) => {
            out.push_str(",\"status\":\"ok\",\"data\":");
            enc_data(&mut out, data);
        }
        CellOutcome::Failed {
            kind,
            error,
            retried,
        } => {
            out.push_str(",\"status\":\"failed\",\"error_kind\":");
            json_string(&mut out, kind);
            out.push_str(&format!(",\"retried\":{retried},\"error\":"));
            json_string(&mut out, error);
        }
        // Skipped cells were never executed; they have no journal record.
        CellOutcome::Skipped => out.push_str(",\"status\":\"skipped\""),
    }
    out.push('}');
    out
}

fn enc_data(out: &mut String, data: &CellData) {
    match data {
        CellData::Run(r) => {
            out.push_str(&format!(
                "{{\"kind\":\"run\",\"cycles\":{},\"arch_digest\":\"{:#018x}\",\
                 \"faults_applied\":[",
                r.cycles, r.arch_digest
            ));
            for (i, f) in r.faults_applied.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(out, f);
            }
            out.push_str("],\"stats\":");
            enc_core_stats(out, &r.stats);
            // Protection counters ride along only when something ticked —
            // unprotected runs keep the exact pre-ECC record shape, so
            // journals written by older builds and newer ones interleave.
            if !r.ecc.is_empty() {
                let e = &r.ecc;
                out.push_str(&format!(
                    ",\"ecc\":{{\"corrected\":{},\"detected_uncorrectable\":{},\
                     \"unprotected\":{},\"parity_escapes\":{},\"checkpoints_taken\":{},\
                     \"restores\":{},\"replay_cycles\":{}}}",
                    e.corrected,
                    e.detected_uncorrectable,
                    e.unprotected,
                    e.parity_escapes,
                    e.checkpoints_taken,
                    e.restores,
                    e.replay_cycles
                ));
            }
            // RAS counters follow the same rule: emitted only when the
            // layer did something, so pre-RAS journal lines stay valid.
            if !r.ras.is_empty() {
                let a = &r.ras;
                out.push_str(&format!(
                    ",\"ras\":{{\"scrub_reads\":{},\"ce_observations\":{},\
                     \"predictive_retirements\":{},\"demand_retirements\":{},\
                     \"degraded_regions\":{},\"migrated_lines\":{},\
                     \"suppressed_assertions\":{}}}",
                    a.scrub_reads,
                    a.ce_observations,
                    a.predictive_retirements,
                    a.demand_retirements,
                    a.degraded_regions,
                    a.migrated_lines,
                    a.suppressed_assertions
                ));
            }
            // Fabric counters (per-port attribution, NoC resilience) are
            // new: emitted only when something was counted, so pre-NoC
            // record shapes are preserved.
            if !r.fabric.is_empty() {
                out.push_str(",\"fabric\":");
                enc_fabric_stats(out, &r.fabric);
            }
            out.push('}');
        }
        CellData::System(s) => {
            out.push_str(&format!(
                "{{\"kind\":\"system\",\"cycles\":{},\"per_core\":[",
                s.cycles
            ));
            for (i, c) in s.per_core.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                enc_core_stats(out, c);
            }
            out.push_str("],\"fabric\":");
            enc_fabric_stats(out, &s.fabric);
            out.push('}');
        }
        CellData::Metrics(m) => {
            out.push_str("{\"kind\":\"metrics\",\"values\":[");
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json_string(out, k);
                out.push(',');
                enc_f64(out, *v);
                out.push(']');
            }
            out.push_str("]}");
        }
        CellData::Fields(f) => {
            out.push_str("{\"kind\":\"fields\",\"values\":[");
            for (i, (k, v)) in f.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json_string(out, k);
                out.push(',');
                json_string(out, v);
                out.push(']');
            }
            out.push_str("]}");
        }
    }
}

fn enc_core_stats(out: &mut String, s: &CoreStats) {
    out.push_str(&format!(
        "{{\"cycles\":{},\"instructions\":{},\"context_switches\":{},\
         \"switches_masked\":{},\"rf_hits\":{},\"rf_misses\":{},\
         \"rf_dummy_fills\":{},\"rf_spills\":{},\"stall_reg_fill\":{},\
         \"stall_mem\":{},\"stall_idle\":{},\"stall_fetch\":{},\
         \"stall_sq_full\":{},\"stall_ctx_software\":{},\
         \"branch_mispredicts\":{},\"dcache\":",
        s.cycles,
        s.instructions,
        s.context_switches,
        s.switches_masked,
        s.rf_hits,
        s.rf_misses,
        s.rf_dummy_fills,
        s.rf_spills,
        s.stall_reg_fill,
        s.stall_mem,
        s.stall_idle,
        s.stall_fetch,
        s.stall_sq_full,
        s.stall_ctx_software,
        s.branch_mispredicts,
    ));
    enc_cache_stats(out, &s.dcache);
    out.push_str(",\"icache\":");
    enc_cache_stats(out, &s.icache);
    out.push('}');
}

fn enc_fabric_stats(out: &mut String, f: &FabricStats) {
    out.push_str(&format!(
        "{{\"reads\":{},\"writes\":{},\"row_hits\":{},\"row_conflicts\":{},\
         \"row_empty\":{},\"queue_cycles\":{},\"scrub_reads\":{}",
        f.reads, f.writes, f.row_hits, f.row_conflicts, f.row_empty, f.queue_cycles, f.scrub_reads
    ));
    // Per-port attribution and NoC counters follow the ecc/ras rule:
    // emitted only when non-empty, so older record shapes still parse and
    // older builds' lines interleave with newer ones. The per-port array
    // is truncated after its last non-zero entry.
    if let Some(last) = f.per_port.iter().rposition(|p| p[0] != 0 || p[1] != 0) {
        out.push_str(",\"per_port\":[");
        for (i, p) in f.per_port[..=last].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", p[0], p[1]));
        }
        out.push(']');
    }
    for (k, v) in [
        ("noc_hops", f.noc_hops),
        ("noc_crc_detected", f.noc_crc_detected),
        ("noc_retransmissions", f.noc_retransmissions),
        ("noc_links_retired", f.noc_links_retired),
        ("noc_links_fenced", f.noc_links_fenced),
    ] {
        if v != 0 {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
    }
    out.push('}');
}

fn enc_cache_stats(out: &mut String, c: &CacheStats) {
    out.push_str(&format!(
        "{{\"hits\":{},\"misses\":{},\"mshr_stalls\":{},\"port_stalls\":{},\
         \"evictions\":{},\"writebacks\":{},\"pinned_bypasses\":{},\
         \"reg_hits\":{},\"reg_misses\":{}}}",
        c.hits,
        c.misses,
        c.mshr_stalls,
        c.port_stalls,
        c.evictions,
        c.writebacks,
        c.pinned_bypasses,
        c.reg_hits,
        c.reg_misses
    ));
}

/// Exact-roundtrip `f64`: shortest-roundtrip decimal for finite values,
/// tagged strings for the non-finite ones JSON cannot carry.
fn enc_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

// ---------------------------------------------------------------------------
// Record decoding
// ---------------------------------------------------------------------------

/// Parses one journal record line. `None` means corrupt/unknown — the
/// caller skips the line and the cell simply re-runs.
pub fn parse_record(line: &str) -> Option<(String, CellOutcome)> {
    let v = parse_json(line)?;
    let key = v.get("key")?.str()?.to_string();
    let outcome = match v.get("status")?.str()? {
        "ok" => CellOutcome::Ok(dec_data(v.get("data")?)?),
        "failed" => CellOutcome::Failed {
            kind: static_kind(v.get("error_kind")?.str()?),
            error: v.get("error")?.str()?.to_string(),
            retried: v.get("retried")?.bool()?,
        },
        _ => return None,
    };
    Some((key, outcome))
}

/// Maps a parsed kind string back onto the `&'static str` tags the error
/// type uses. Unknown tags (a journal from a newer build) still replay as
/// failures, just with an `unknown` kind.
fn static_kind(s: &str) -> &'static str {
    match s {
        "cycle_budget" => "cycle_budget",
        "livelock" => "livelock",
        "golden_divergence" => "golden_divergence",
        "golden_stuck" => "golden_stuck",
        "fault_detected" => "fault_detected",
        "uncorrectable" => "uncorrectable",
        "structural_hazard" => "structural_hazard",
        "deadline" => "deadline",
        "panic" => "panic",
        _ => "unknown",
    }
}

fn dec_data(v: &Json) -> Option<CellData> {
    match v.get("kind")?.str()? {
        "run" => Some(CellData::Run(Box::new(RunResult {
            cycles: v.get("cycles")?.u64()?,
            stats: dec_core_stats(v.get("stats")?)?,
            // The oracle is never rendered into tables or JSON; replayed
            // cells carry an empty one.
            oracle: OracleSchedule::default(),
            faults_applied: v
                .get("faults_applied")?
                .arr()?
                .iter()
                .map(|f| f.str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            arch_digest: v.get("arch_digest")?.u64()?,
            // Absent in records written before the protection model (and in
            // all unprotected runs): every counter is zero.
            ecc: match v.get("ecc") {
                Some(e) => EccStats {
                    corrected: e.get("corrected")?.u64()?,
                    detected_uncorrectable: e.get("detected_uncorrectable")?.u64()?,
                    unprotected: e.get("unprotected")?.u64()?,
                    parity_escapes: e.get("parity_escapes")?.u64()?,
                    checkpoints_taken: e.get("checkpoints_taken")?.u64()?,
                    restores: e.get("restores")?.u64()?,
                    replay_cycles: e.get("replay_cycles")?.u64()?,
                },
                None => EccStats::default(),
            },
            // Absent before the RAS layer (and in all runs without it).
            ras: match v.get("ras") {
                Some(a) => RasStats {
                    scrub_reads: a.get("scrub_reads")?.u64()?,
                    ce_observations: a.get("ce_observations")?.u64()?,
                    predictive_retirements: a.get("predictive_retirements")?.u64()?,
                    demand_retirements: a.get("demand_retirements")?.u64()?,
                    degraded_regions: a.get("degraded_regions")?.u64()?,
                    migrated_lines: a.get("migrated_lines")?.u64()?,
                    suppressed_assertions: a.get("suppressed_assertions")?.u64()?,
                },
                None => RasStats::default(),
            },
            // Absent before the mesh NoC (and whenever nothing counted).
            fabric: match v.get("fabric") {
                Some(f) => dec_fabric_stats(f)?,
                None => FabricStats::default(),
            },
            // Wall-clock snapshot cost is not journaled (non-deterministic);
            // replayed cells report zero.
            checkpoint_clone_ns: 0,
        }))),
        "system" => Some(CellData::System(Box::new(SystemResult {
            cycles: v.get("cycles")?.u64()?,
            per_core: v
                .get("per_core")?
                .arr()?
                .iter()
                .map(dec_core_stats)
                .collect::<Option<Vec<_>>>()?,
            fabric: dec_fabric_stats(v.get("fabric")?)?,
        }))),
        "metrics" => Some(CellData::Metrics(
            v.get("values")?
                .arr()?
                .iter()
                .map(|pair| {
                    let p = pair.arr()?;
                    Some((p.first()?.str()?.to_string(), p.get(1)?.f64()?))
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        "fields" => Some(CellData::Fields(
            v.get("values")?
                .arr()?
                .iter()
                .map(|pair| {
                    let p = pair.arr()?;
                    Some((p.first()?.str()?.to_string(), p.get(1)?.str()?.to_string()))
                })
                .collect::<Option<Vec<_>>>()?,
        )),
        _ => None,
    }
}

fn dec_core_stats(v: &Json) -> Option<CoreStats> {
    let u = |k: &str| v.get(k).and_then(Json::u64);
    Some(CoreStats {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        context_switches: u("context_switches")?,
        switches_masked: u("switches_masked")?,
        rf_hits: u("rf_hits")?,
        rf_misses: u("rf_misses")?,
        rf_dummy_fills: u("rf_dummy_fills")?,
        rf_spills: u("rf_spills")?,
        stall_reg_fill: u("stall_reg_fill")?,
        stall_mem: u("stall_mem")?,
        stall_idle: u("stall_idle")?,
        stall_fetch: u("stall_fetch")?,
        stall_sq_full: u("stall_sq_full")?,
        stall_ctx_software: u("stall_ctx_software")?,
        branch_mispredicts: u("branch_mispredicts")?,
        dcache: dec_cache_stats(v.get("dcache")?)?,
        icache: dec_cache_stats(v.get("icache")?)?,
    })
}

fn dec_cache_stats(v: &Json) -> Option<CacheStats> {
    let u = |k: &str| v.get(k).and_then(Json::u64);
    Some(CacheStats {
        hits: u("hits")?,
        misses: u("misses")?,
        mshr_stalls: u("mshr_stalls")?,
        port_stalls: u("port_stalls")?,
        evictions: u("evictions")?,
        writebacks: u("writebacks")?,
        pinned_bypasses: u("pinned_bypasses")?,
        reg_hits: u("reg_hits")?,
        reg_misses: u("reg_misses")?,
    })
}

fn dec_fabric_stats(v: &Json) -> Option<FabricStats> {
    let u = |k: &str| v.get(k).and_then(Json::u64);
    // Truncated on encode after the last non-zero pair; the tail is zero.
    let mut per_port = [[0u64; 2]; MAX_STAT_PORTS];
    if let Some(pairs) = v.get("per_port").and_then(Json::arr) {
        for (slot, pair) in per_port.iter_mut().zip(pairs) {
            let p = pair.arr()?;
            slot[0] = p.first()?.u64()?;
            slot[1] = p.get(1)?.u64()?;
        }
    }
    Some(FabricStats {
        reads: u("reads")?,
        writes: u("writes")?,
        row_hits: u("row_hits")?,
        row_conflicts: u("row_conflicts")?,
        row_empty: u("row_empty")?,
        queue_cycles: u("queue_cycles")?,
        // Absent in journals written before the RAS layer.
        scrub_reads: u("scrub_reads").unwrap_or(0),
        per_port,
        // Absent in journals written before the mesh NoC.
        noc_hops: u("noc_hops").unwrap_or(0),
        noc_crc_detected: u("noc_crc_detected").unwrap_or(0),
        noc_retransmissions: u("noc_retransmissions").unwrap_or(0),
        noc_links_retired: u("noc_links_retired").unwrap_or(0),
        noc_links_fenced: u("noc_links_fenced").unwrap_or(0),
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------
// Numbers are kept as raw tokens so `u64` counters round-trip exactly
// (an f64 detour would corrupt values above 2^53).

#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// `u64` from a raw number token or a `"0x…"` hex string.
    fn u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            Json::Str(s) => s
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok()),
            _ => None,
        }
    }

    /// `f64` from a raw number token or a non-finite tag string.
    fn f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let v = parse_value(bytes, &mut i)?;
    skip_ws(bytes, &mut i);
    (i == bytes.len()).then_some(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Option<Json> {
    skip_ws(b, i);
    match *b.get(*i)? {
        b'{' => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Json::Str(s) => s,
                    _ => return None,
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return None;
                }
                *i += 1;
                fields.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i)? {
                    b',' => *i += 1,
                    b'}' => {
                        *i += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i)? {
                    b',' => *i += 1,
                    b']' => {
                        *i += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *i += 1;
            let mut s = String::new();
            loop {
                match *b.get(*i)? {
                    b'"' => {
                        *i += 1;
                        return Some(Json::Str(s));
                    }
                    b'\\' => {
                        *i += 1;
                        match *b.get(*i)? {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'b' => s.push('\u{8}'),
                            b'f' => s.push('\u{c}'),
                            b'u' => {
                                let hex = b.get(*i + 1..*i + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                                s.push(char::from_u32(code)?);
                                *i += 4;
                            }
                            _ => return None,
                        }
                        *i += 1;
                    }
                    _ => {
                        // Advance by whole UTF-8 code points.
                        let rest = std::str::from_utf8(&b[*i..]).ok()?;
                        let ch = rest.chars().next()?;
                        s.push(ch);
                        *i += ch.len_utf8();
                    }
                }
            }
        }
        b't' => {
            if b.get(*i..*i + 4)? == b"true" {
                *i += 4;
                Some(Json::Bool(true))
            } else {
                None
            }
        }
        b'f' => {
            if b.get(*i..*i + 5)? == b"false" {
                *i += 5;
                Some(Json::Bool(false))
            } else {
                None
            }
        }
        b'n' => {
            if b.get(*i..*i + 4)? == b"null" {
                *i += 4;
                Some(Json::Null)
            } else {
                None
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *i;
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
            Some(Json::Num(
                std::str::from_utf8(&b[start..*i]).ok()?.to_string(),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_result() -> RunResult {
        RunResult {
            cycles: 987_654_321_987,
            stats: CoreStats {
                cycles: 987_654_321_987,
                instructions: 42,
                context_switches: 7,
                switches_masked: 1,
                rf_hits: 2,
                rf_misses: 3,
                rf_dummy_fills: 4,
                rf_spills: 5,
                stall_reg_fill: 6,
                stall_mem: 8,
                stall_idle: 9,
                stall_fetch: 10,
                stall_sq_full: 11,
                stall_ctx_software: 12,
                branch_mispredicts: 13,
                dcache: CacheStats {
                    hits: 100,
                    misses: 1,
                    ..Default::default()
                },
                icache: CacheStats {
                    reg_misses: 9,
                    ..Default::default()
                },
            },
            oracle: OracleSchedule::default(),
            faults_applied: vec!["cycle 9: dram word 0x40 bit 3".into()],
            arch_digest: u64::MAX - 1,
            ecc: EccStats {
                corrected: 2,
                detected_uncorrectable: 1,
                unprotected: 3,
                parity_escapes: 0,
                checkpoints_taken: 5,
                restores: 1,
                replay_cycles: 400,
            },
            // Never journaled; roundtrips compare against the restored zero.
            checkpoint_clone_ns: 0,
            ras: RasStats {
                scrub_reads: 11,
                ce_observations: 4,
                predictive_retirements: 1,
                demand_retirements: 2,
                degraded_regions: 1,
                migrated_lines: 16,
                suppressed_assertions: 3,
            },
            fabric: {
                let mut f = FabricStats {
                    noc_hops: 40,
                    noc_crc_detected: 2,
                    noc_retransmissions: 2,
                    noc_links_retired: 1,
                    noc_links_fenced: 1,
                    ..FabricStats::default()
                };
                f.per_port[0] = [17, 3];
                f.per_port[5] = [0, 9];
                f
            },
        }
    }

    fn roundtrip(key: &str, outcome: &CellOutcome) -> (String, CellOutcome) {
        let line = record_line(key, outcome);
        parse_record(&line).unwrap_or_else(|| panic!("record must parse: {line}"))
    }

    #[test]
    fn run_record_roundtrips_exactly() {
        let outcome = CellOutcome::Ok(CellData::Run(Box::new(run_result())));
        let (key, back) = roundtrip("a/b", &outcome);
        assert_eq!(key, "a/b");
        match back {
            CellOutcome::Ok(CellData::Run(r)) => {
                let orig = run_result();
                assert_eq!(r.cycles, orig.cycles);
                assert_eq!(
                    r.arch_digest, orig.arch_digest,
                    "u64 digest must not lose bits"
                );
                assert_eq!(r.stats.branch_mispredicts, 13);
                assert_eq!(r.stats.dcache.hits, 100);
                assert_eq!(r.stats.icache.reg_misses, 9);
                assert_eq!(r.faults_applied, orig.faults_applied);
                assert_eq!(r.ecc, orig.ecc, "protection counters must round-trip");
                assert_eq!(r.ras, orig.ras, "RAS counters must round-trip");
                assert_eq!(
                    r.fabric, orig.fabric,
                    "per-port and NoC counters must round-trip"
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn empty_fabric_block_is_omitted_from_run_records() {
        let mut r = run_result();
        r.fabric = FabricStats::default();
        let line = record_line("a", &CellOutcome::Ok(CellData::Run(Box::new(r))));
        assert!(
            !line.contains("\"fabric\""),
            "quiet fabric must keep the pre-NoC record shape: {line}"
        );
        let (_, back) = parse_record(&line).expect("record parses");
        match back {
            CellOutcome::Ok(CellData::Run(r)) => assert!(r.fabric.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn system_record_roundtrips() {
        let sys = SystemResult {
            cycles: 1234,
            per_core: vec![run_result().stats, CoreStats::default()],
            fabric: {
                let mut f = FabricStats {
                    reads: 1,
                    writes: 2,
                    row_hits: 3,
                    row_conflicts: 4,
                    row_empty: 5,
                    queue_cycles: 6,
                    scrub_reads: 7,
                    noc_retransmissions: 8,
                    ..FabricStats::default()
                };
                f.per_port[2] = [9, 10];
                f
            },
        };
        let expect = sys.fabric;
        let outcome = CellOutcome::Ok(CellData::System(Box::new(sys)));
        let (_, back) = roundtrip("sys", &outcome);
        match back {
            CellOutcome::Ok(CellData::System(s)) => {
                assert_eq!(s.cycles, 1234);
                assert_eq!(s.per_core.len(), 2);
                assert_eq!(s.per_core[0].instructions, 42);
                assert_eq!(s.fabric.queue_cycles, 6);
                assert_eq!(s.fabric.scrub_reads, 7);
                assert_eq!(s.fabric, expect, "fabric block must round-trip exactly");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn metric_values_roundtrip_bit_exactly() {
        let vals = vec![
            ("third".to_string(), 1.0 / 3.0),
            ("tiny".to_string(), f64::MIN_POSITIVE),
            ("neg".to_string(), -0.0),
            ("nan".to_string(), f64::NAN),
            ("inf".to_string(), f64::INFINITY),
            ("ninf".to_string(), f64::NEG_INFINITY),
        ];
        let outcome = CellOutcome::Ok(CellData::Metrics(vals.clone()));
        let (_, back) = roundtrip("m", &outcome);
        match back {
            CellOutcome::Ok(CellData::Metrics(m)) => {
                for ((k, v), (k2, v2)) in vals.iter().zip(&m) {
                    assert_eq!(k, k2);
                    assert!(
                        v.to_bits() == v2.to_bits() || (v.is_nan() && v2.is_nan()),
                        "{k}: {v} vs {v2}"
                    );
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn failed_record_roundtrips_with_static_kind() {
        let outcome = CellOutcome::Failed {
            kind: "deadline",
            error: "wall-clock deadline of 50 ms expired\nwith a second line".into(),
            retried: true,
        };
        let (_, back) = roundtrip("hung", &outcome);
        match back {
            CellOutcome::Failed {
                kind,
                error,
                retried,
            } => {
                assert_eq!(kind, "deadline");
                assert!(error.contains("second line"), "newlines must survive");
                assert!(retried);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn corrupt_lines_do_not_parse() {
        assert!(parse_record("{\"key\":\"x\",\"status\":\"ok\",\"data\":{\"ki").is_none());
        assert!(parse_record("garbage").is_none());
        assert!(parse_record("{\"key\":\"x\",\"status\":\"weird\"}").is_none());
        // trailing garbage after a valid value is rejected too
        assert!(parse_record("{\"key\":\"x\",\"status\":\"ok\"} extra").is_none());
    }

    #[test]
    fn fingerprint_tracks_name_keys_and_meta() {
        let no_meta = std::iter::empty::<(&str, &str)>;
        let a = spec_fingerprint("exp", ["k1", "k2"].into_iter(), no_meta());
        assert_eq!(
            a,
            spec_fingerprint("exp", ["k1", "k2"].into_iter(), no_meta())
        );
        assert_ne!(
            a,
            spec_fingerprint("exp2", ["k1", "k2"].into_iter(), no_meta())
        );
        assert_ne!(a, spec_fingerprint("exp", ["k1"].into_iter(), no_meta()));
        assert_ne!(
            a,
            spec_fingerprint("exp", ["k1k", "2"].into_iter(), no_meta())
        );
        // A different problem size is a different experiment: its journal
        // rows carry different numbers under identical cell keys.
        let n512 = spec_fingerprint("exp", ["k1", "k2"].into_iter(), [("n", "512")].into_iter());
        let n4096 = spec_fingerprint("exp", ["k1", "k2"].into_iter(), [("n", "4096")].into_iter());
        assert_ne!(a, n512);
        assert_ne!(n512, n4096);
        assert_ne!(
            n512,
            spec_fingerprint("exp", ["k1", "k2"].into_iter(), [("n5", "12")].into_iter())
        );
    }

    #[test]
    fn writer_and_loader_cooperate() {
        let dir = std::env::temp_dir().join(format!("virec_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = spec_fingerprint("unit", ["a", "b"].into_iter(), std::iter::empty());
        let mut w = JournalWriter::create(&dir, "unit", fp).expect("create journal");
        w.append(&record_line(
            "a",
            &CellOutcome::Ok(CellData::Metrics(vec![("cycles".into(), 10.0)])),
        ))
        .expect("append");
        let path = journal_path(&dir, "unit");

        // A matching load replays the record.
        match load(&path, "unit", fp) {
            JournalLoad::Loaded {
                records,
                skipped_lines,
            } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].0, "a");
                assert_eq!(skipped_lines, 0);
            }
            _ => panic!("journal must load"),
        }

        // A truncated trailing record is skipped, not fatal.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\":\"b\",\"status\":\"ok\",\"da")
                .unwrap();
        }
        match load(&path, "unit", fp) {
            JournalLoad::Loaded {
                records,
                skipped_lines,
            } => {
                assert_eq!(records.len(), 1);
                assert_eq!(skipped_lines, 1);
            }
            _ => panic!("truncated journal must still load"),
        }

        // The wrong fingerprint is refused.
        assert!(matches!(load(&path, "unit", fp ^ 1), JournalLoad::Mismatch));
        assert!(matches!(load(&path, "other", fp), JournalLoad::Mismatch));
        assert!(matches!(
            load(&dir.join("absent.journal.jsonl"), "unit", fp),
            JournalLoad::Missing
        ));

        // A damaged header is not a spec conflict: it signals CorruptHeader
        // so resume warns accurately and starts fresh.
        for broken in [
            "",                                   // empty file
            "{\"journal\":\"vi",                  // truncated mid-create
            "not json at all",                    // garbage
            "{\"experiment\":\"unit\"}",          // parses, but no marker
            "{\"journal\":\"other-tool\"}\n{}\n", // foreign file
        ] {
            std::fs::write(&path, broken).unwrap();
            assert!(
                matches!(load(&path, "unit", fp), JournalLoad::CorruptHeader),
                "header {broken:?} must classify as CorruptHeader"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
