//! In-situ error protection: a SEC-DED (72,64) extended-Hamming codec, a
//! per-site parity model, and the coverage map that routes injected faults
//! through the protection hardware a near-memory core would actually have.
//!
//! The paper's fault campaign (DESIGN.md §4e) established 100% *detection*
//! through differential checking, but every detected fault was "repaired" by
//! re-executing the whole run. This module is the first half of the
//! protect–detect–correct–recover chain (§4f): it decides, at the moment a
//! [`crate::fault::FaultPlan`] event fires, whether the modeled check bits
//! would have corrected the flip in place (`Corrected`), flagged it as an
//! uncorrectable error (`DetectedUncorrectable` — the checkpoint/replay
//! machinery in [`crate::runner`] takes over), or let it pass through
//! unprotected.
//!
//! ## The codec
//!
//! [`secded_encode`]/[`secded_decode`] implement the standard (72,64)
//! extended Hamming code: seven check bits at power-of-two codeword
//! positions plus an overall-parity bit. Decoding distinguishes a clean
//! word, a correctable single-bit error (in data *or* check storage), and a
//! detected-but-uncorrectable double-bit error — the classic SEC-DED
//! guarantee, verified exhaustively by the proptest suite.

use std::fmt;
use std::str::FromStr;

use crate::fault::FaultSite;

// ---------------------------------------------------------------------------
// SEC-DED (72,64) codec
// ---------------------------------------------------------------------------

/// Number of check bits in the (72,64) code: seven Hamming bits plus the
/// overall-parity bit that upgrades SEC to SEC-DED.
pub const SECDED_CHECK_BITS: u32 = 8;

/// Codeword position (1-based, power-of-two slots reserved for check bits)
/// of data bit `d` (0..64).
fn data_pos(d: u32) -> u32 {
    // Walk codeword positions 1.. skipping powers of two; the (d+1)-th
    // non-power slot is data bit d's home. Closed form: skip count grows
    // by one at each power of two, so iterate (cheap: ≤ 7 adjustments).
    let mut pos = d + 1;
    let mut p = 1u32;
    while p <= pos {
        pos += 1;
        p <<= 1;
    }
    pos
}

/// Encodes `data` into its 8 check bits. Bits 0..7 of the result are the
/// Hamming check bits `p1,p2,p4,...,p64`; bit 7 is the overall parity over
/// the full 72-bit codeword.
pub fn secded_encode(data: u64) -> u8 {
    let mut check = 0u8;
    for c in 0..7u32 {
        let mask = 1u32 << c;
        let mut parity = 0u64;
        for d in 0..64 {
            if data_pos(d) & mask != 0 {
                parity ^= (data >> d) & 1;
            }
        }
        check |= (parity as u8) << c;
    }
    // Overall parity: data bits plus the seven Hamming bits.
    let overall = (data.count_ones() + u32::from(check).count_ones()) & 1;
    check | ((overall as u8) << 7)
}

/// Result of decoding a possibly corrupted word against its stored check
/// bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecDedOutcome {
    /// No error: the word is the stored value.
    Clean,
    /// A single-bit error in the data was corrected; the payload is the
    /// repaired word.
    CorrectedData(u64),
    /// A single-bit error in the *check* storage was corrected; the data
    /// word itself is intact.
    CorrectedCheck,
    /// A double-bit error was detected. The word cannot be repaired.
    DoubleError,
}

/// Decodes `data` against the stored `check` bits.
pub fn secded_decode(data: u64, check: u8) -> SecDedOutcome {
    let expected = secded_encode(data);
    // Syndrome over the seven Hamming bits.
    let syndrome = u32::from((expected ^ check) & 0x7f);
    // Recompute overall parity of the received codeword (data + stored
    // Hamming bits + stored overall bit); even means no single error.
    let received_overall =
        (data.count_ones() + u32::from(check & 0x7f).count_ones() + u32::from(check >> 7)) & 1;
    let expected_overall = 0; // a valid codeword always has even overall parity
    let parity_err = received_overall != expected_overall;

    match (syndrome, parity_err) {
        (0, false) => SecDedOutcome::Clean,
        (0, true) => SecDedOutcome::CorrectedCheck, // the overall bit itself flipped
        (s, true) => {
            // Single error at codeword position s: a data bit if s is not a
            // power of two, a Hamming check bit otherwise.
            if s.is_power_of_two() {
                SecDedOutcome::CorrectedCheck
            } else {
                match (0..64).find(|&d| data_pos(d) == s) {
                    Some(d) => SecDedOutcome::CorrectedData(data ^ (1u64 << d)),
                    // Syndrome points outside the codeword: alias of a
                    // multi-bit error; report detection, never miscorrect.
                    None => SecDedOutcome::DoubleError,
                }
            }
        }
        (_, false) => SecDedOutcome::DoubleError,
    }
}

/// Even-parity bit of a 64-bit word (the one extra bit a parity-protected
/// CAM entry stores).
pub fn parity_bit(data: u64) -> u8 {
    (data.count_ones() & 1) as u8
}

// ---------------------------------------------------------------------------
// Coverage map
// ---------------------------------------------------------------------------

/// Protection level of one fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProtectionLevel {
    /// Raw storage: every flip passes through.
    #[default]
    None,
    /// One parity bit: detects every odd-weight flip, misses even-weight
    /// ones, corrects nothing.
    Parity,
    /// SEC-DED check bits: corrects single-bit flips in place, detects
    /// double-bit flips.
    SecDed,
}

impl fmt::Display for ProtectionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtectionLevel::None => "none",
            ProtectionLevel::Parity => "parity",
            ProtectionLevel::SecDed => "secded",
        })
    }
}

impl FromStr for ProtectionLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<ProtectionLevel, String> {
        match s {
            "none" => Ok(ProtectionLevel::None),
            "parity" => Ok(ProtectionLevel::Parity),
            "secded" => Ok(ProtectionLevel::SecDed),
            other => Err(format!(
                "unknown protection level '{other}' (expected none|parity|secded)"
            )),
        }
    }
}

/// Per-site protection levels — the modeled coverage map.
///
/// The `secded` preset mirrors what the hardware would plausibly build:
/// SEC-DED on the word-organized storage (backing-store register slots,
/// DRAM words, fabric response buffers) and parity on the CAM-organized
/// VRMU structures (tag store, rollback queue), where a full SEC-DED
/// decoder in the match path would cost a pipeline stage. [`FaultSite::StuckFill`]
/// is never protected: a lost fill response is a protocol failure, not a
/// storage bit error, and no check bit catches it (the watchdog does).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ProtectionConfig {
    /// VRMU tag-store entries (value + metadata CAM).
    pub tag_value: ProtectionLevel,
    /// Rollback-queue slots.
    pub rollback_slot: ProtectionLevel,
    /// Backing-store register slots (64-bit words in the reserved region).
    pub backing_reg: ProtectionLevel,
    /// DRAM data words.
    pub dram_line: ProtectionLevel,
    /// In-flight fabric response buffers.
    pub fabric_response: ProtectionLevel,
}

impl ProtectionConfig {
    /// Everything unprotected (the default; identical to the pre-ECC
    /// simulator).
    pub fn none() -> ProtectionConfig {
        ProtectionConfig::default()
    }

    /// Parity everywhere it applies: detection without correction.
    pub fn parity() -> ProtectionConfig {
        ProtectionConfig {
            tag_value: ProtectionLevel::Parity,
            rollback_slot: ProtectionLevel::Parity,
            backing_reg: ProtectionLevel::Parity,
            dram_line: ProtectionLevel::Parity,
            fabric_response: ProtectionLevel::Parity,
        }
    }

    /// The full coverage map: SEC-DED on word storage, parity on the VRMU
    /// CAM structures (see the type-level docs for the rationale).
    pub fn secded() -> ProtectionConfig {
        ProtectionConfig {
            tag_value: ProtectionLevel::Parity,
            rollback_slot: ProtectionLevel::Parity,
            backing_reg: ProtectionLevel::SecDed,
            dram_line: ProtectionLevel::SecDed,
            fabric_response: ProtectionLevel::SecDed,
        }
    }

    /// The protection level covering `site`.
    pub fn level(&self, site: FaultSite) -> ProtectionLevel {
        match site {
            FaultSite::TagValue => self.tag_value,
            FaultSite::RollbackSlot => self.rollback_slot,
            FaultSite::BackingReg => self.backing_reg,
            FaultSite::DramLine => self.dram_line,
            FaultSite::FabricResponse => self.fabric_response,
            FaultSite::StuckFill => ProtectionLevel::None,
            // Link upsets are covered by the NoC's own CRC/retransmission
            // layer, not by a storage coverage map.
            FaultSite::NocLink => ProtectionLevel::None,
        }
    }

    /// True when every site is unprotected (the fast path: the runner skips
    /// the protection plumbing entirely).
    pub fn is_none(&self) -> bool {
        *self == ProtectionConfig::none()
    }
}

impl FromStr for ProtectionConfig {
    type Err = String;
    fn from_str(s: &str) -> Result<ProtectionConfig, String> {
        match s {
            "none" => Ok(ProtectionConfig::none()),
            "parity" => Ok(ProtectionConfig::parity()),
            "secded" => Ok(ProtectionConfig::secded()),
            other => Err(format!(
                "unknown protection preset '{other}' (expected none|parity|secded)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Protection statistics
// ---------------------------------------------------------------------------

/// Counters the protection and checkpoint machinery accumulates over one
/// run. Counters are cumulative across replayed windows: an injector event
/// that re-fires during replay is re-counted, exactly as a hardware scrub
/// counter would tick again if the upset recurred.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Single-bit flips corrected in place by SEC-DED (the scrub counter).
    pub corrected: u64,
    /// Flips detected but not correctable (double-bit under SEC-DED,
    /// odd-weight under parity).
    pub detected_uncorrectable: u64,
    /// Flips that hit unprotected storage and passed through.
    pub unprotected: u64,
    /// Even-weight flips that escaped a parity-only site (the SEC-DED
    /// detection limit the multi-fault campaign exercises).
    pub parity_escapes: u64,
    /// Architectural checkpoints snapshotted into the ring.
    pub checkpoints_taken: u64,
    /// Checkpoint restores triggered by detected-uncorrectable faults.
    pub restores: u64,
    /// Total cycles re-executed across all restores (detection cycle minus
    /// restored checkpoint cycle, summed).
    pub replay_cycles: u64,
}

impl EccStats {
    /// True when no counter ever ticked (the run never touched the
    /// protection model).
    pub fn is_empty(&self) -> bool {
        *self == EccStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_positions_skip_check_slots() {
        // First few data positions: 3, 5, 6, 7, 9, ...
        assert_eq!(data_pos(0), 3);
        assert_eq!(data_pos(1), 5);
        assert_eq!(data_pos(2), 6);
        assert_eq!(data_pos(3), 7);
        assert_eq!(data_pos(4), 9);
        // All 64 positions are distinct and never powers of two.
        let mut seen = std::collections::HashSet::new();
        for d in 0..64 {
            let p = data_pos(d);
            assert!(!p.is_power_of_two(), "data bit {d} landed on a check slot");
            assert!(seen.insert(p), "duplicate position {p}");
            assert!(p <= 72);
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for &w in &[0u64, u64::MAX, 0xdead_beef_cafe_f00d, 1, 1 << 63] {
            assert_eq!(secded_decode(w, secded_encode(w)), SecDedOutcome::Clean);
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected() {
        let w = 0x0123_4567_89ab_cdefu64;
        let check = secded_encode(w);
        for b in 0..64 {
            let corrupted = w ^ (1u64 << b);
            assert_eq!(
                secded_decode(corrupted, check),
                SecDedOutcome::CorrectedData(w),
                "bit {b}"
            );
        }
    }

    #[test]
    fn every_check_bit_flip_is_corrected_without_touching_data() {
        let w = 0xfeed_face_dead_beefu64;
        let check = secded_encode(w);
        for b in 0..8 {
            let outcome = secded_decode(w, check ^ (1 << b));
            assert_eq!(outcome, SecDedOutcome::CorrectedCheck, "check bit {b}");
        }
    }

    #[test]
    fn double_data_flips_detected_never_miscorrected() {
        let w = 0x5555_aaaa_3333_cccc_u64;
        let check = secded_encode(w);
        for a in 0..64 {
            for b in (a + 1)..64 {
                let corrupted = w ^ (1u64 << a) ^ (1u64 << b);
                assert_eq!(
                    secded_decode(corrupted, check),
                    SecDedOutcome::DoubleError,
                    "bits {a},{b}"
                );
            }
        }
    }

    #[test]
    fn parity_detects_odd_weight_only() {
        let w = 0x00ff_00ff_00ff_00ffu64;
        let p = parity_bit(w);
        assert_ne!(parity_bit(w ^ 1), p, "single flip detected");
        assert_eq!(parity_bit(w ^ 3), p, "double flip escapes");
        assert_ne!(parity_bit(w ^ 7), p, "triple flip detected");
    }

    #[test]
    fn presets_and_levels() {
        let full = ProtectionConfig::secded();
        assert_eq!(full.level(FaultSite::DramLine), ProtectionLevel::SecDed);
        assert_eq!(full.level(FaultSite::TagValue), ProtectionLevel::Parity);
        assert_eq!(full.level(FaultSite::StuckFill), ProtectionLevel::None);
        assert!(ProtectionConfig::none().is_none());
        assert!(!full.is_none());
        assert_eq!("secded".parse::<ProtectionConfig>().unwrap(), full);
        assert_eq!(
            "parity".parse::<ProtectionLevel>().unwrap(),
            ProtectionLevel::Parity
        );
        assert!("sec-ded".parse::<ProtectionConfig>().is_err());
    }
}
