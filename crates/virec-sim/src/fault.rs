//! Deterministic fault injection.
//!
//! A [`FaultPlan`] schedules bit flips at chosen cycles in the structures a
//! real near-memory core would need to protect: VRMU tag-store entries,
//! rollback-queue slots, backing-store register slots, DRAM lines, and
//! in-flight fabric responses. Plans are generated from a `u64` seed with
//! the same xorshift generator the core's Random replacement policy uses —
//! no external RNG crate, and a seed fully determines the campaign.
//!
//! [`run_campaign`] drives K single-fault injections against one
//! configuration and classifies every outcome: the paper's differential
//! golden check is the detector, and the acceptance bar is that **no
//! effectful fault survives silently**.

use crate::ecc::ProtectionConfig;
use crate::error::SimError;
use crate::ras::RasConfig;
use crate::runner::{default_checkpoint_interval, try_run_single, RunOptions, RunResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use virec_core::policy::XorShift;
use virec_core::{CoreConfig, EngineFault};
use virec_mem::FabricConfig;
use virec_workloads::Workload;

/// A corruptible structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Flip a bit in a valid VRMU tag-store entry's cached value.
    TagValue,
    /// Corrupt a rollback-queue slot (register list or kind bit).
    RollbackSlot,
    /// Mark a tag-store entry's fill as never completing (lost response).
    StuckFill,
    /// Flip a bit in a register slot of the backing-store region.
    BackingReg,
    /// Flip a bit in a word of the workload's data segment (DRAM cell).
    DramLine,
    /// Flip a bit in the memory behind an in-flight fabric request
    /// (a corrupted response payload).
    FabricResponse,
    /// Corrupt a flit in transit on a mesh NoC link (wire upset). Caught
    /// by the link-level CRC and retransmitted; persistent classes model a
    /// marginal link that the RAS layer retires via route-around. Only
    /// meaningful under [`virec_mem::FabricTopology::Mesh`]; on the
    /// crossbar the injection does not land.
    NocLink,
}

impl FaultSite {
    /// The engine-internal sites: the population a seeded campaign draws
    /// from by default. `NocLink` is deliberately **excluded** so that the
    /// `rng % len` site draw of every pre-existing seeded campaign stays
    /// byte-identical; link upsets are opted into via `--sites noc-link`.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::TagValue,
        FaultSite::RollbackSlot,
        FaultSite::StuckFill,
        FaultSite::BackingReg,
        FaultSite::DramLine,
        FaultSite::FabricResponse,
    ];

    /// Every site including the NoC transport layer — the parse / display
    /// population for `--sites`.
    pub const EVERY: [FaultSite; 7] = [
        FaultSite::TagValue,
        FaultSite::RollbackSlot,
        FaultSite::StuckFill,
        FaultSite::BackingReg,
        FaultSite::DramLine,
        FaultSite::FabricResponse,
        FaultSite::NocLink,
    ];

    /// Sites meaningful for engines without a VRMU (banked, software):
    /// `TagValue` still lands (it maps to register cells via
    /// `EngineFault::RegValue`), the VRMU-internal sites do not.
    pub const NON_VRMU: [FaultSite; 4] = [
        FaultSite::TagValue,
        FaultSite::BackingReg,
        FaultSite::DramLine,
        FaultSite::FabricResponse,
    ];

    /// Word-organized sites covered by SEC-DED under the full coverage map
    /// ([`crate::ecc::ProtectionConfig::secded`]) — the sites a double-bit
    /// burst campaign targets to exercise the detection limit.
    pub const SECDED_WORDS: [FaultSite; 3] = [
        FaultSite::BackingReg,
        FaultSite::DramLine,
        FaultSite::FabricResponse,
    ];

    /// Sites with *retirable* physical cells, for permanent-fault
    /// campaigns: a stuck CAM way (tag-value) or a stuck DRAM cell
    /// (backing-reg / dram-line). Transport upsets (fabric-response) and
    /// control-state sites (rollback-slot, stuck-fill) have no region a
    /// spare can replace and are excluded.
    pub const PERMANENT: [FaultSite; 3] = [
        FaultSite::TagValue,
        FaultSite::BackingReg,
        FaultSite::DramLine,
    ];

    /// Retirable sites for engines without a VRMU: no CAM ways to spare,
    /// only DRAM rows.
    pub const PERMANENT_NON_VRMU: [FaultSite; 2] = [FaultSite::BackingReg, FaultSite::DramLine];

    /// Stable kebab-case name (the `--sites` / journal spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::TagValue => "tag-value",
            FaultSite::RollbackSlot => "rollback-slot",
            FaultSite::StuckFill => "stuck-fill",
            FaultSite::BackingReg => "backing-reg",
            FaultSite::DramLine => "dram-line",
            FaultSite::FabricResponse => "fabric-response",
            FaultSite::NocLink => "noc-link",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultSite {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultSite, String> {
        FaultSite::EVERY
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = FaultSite::EVERY.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site '{s}' (expected one of: {})",
                    known.join(", ")
                )
            })
    }
}

/// Parses a comma-separated `--sites` filter (`tag-value,dram-line`) into a
/// site list. Rejects empty lists and unknown names.
pub fn parse_sites(s: &str) -> Result<Vec<FaultSite>, String> {
    let sites: Vec<FaultSite> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(str::trim)
        .map(FaultSite::from_str)
        .collect::<Result<_, _>>()?;
    if sites.is_empty() {
        return Err("empty site list".into());
    }
    Ok(sites)
}

/// Temporal behaviour of a scheduled fault: how the upset re-asserts after
/// its first firing. Transient flips are one-shot soft errors; intermittent
/// and stuck-at faults model marginal and dead cells that keep re-asserting
/// until the RAS layer retires the region (or, for intermittent, the duty
/// cycle ends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// One-shot soft error: fires once and never again.
    Transient,
    /// Duty-cycled upset (a marginal / variable-retention cell): after the
    /// first firing it re-asserts every `period` cycles, `repeats` more
    /// times, then goes quiet.
    Intermittent {
        /// Cycles between assertions.
        period: u64,
        /// Further assertions after the first.
        repeats: u32,
    },
    /// Permanent stuck-at cell: re-asserts every `period` cycles until the
    /// region is retired or the run ends.
    StuckAt {
        /// Cycles between assertions.
        period: u64,
    },
}

impl FaultClass {
    /// Default assertion period for persistent classes parsed by name.
    pub const DEFAULT_PERIOD: u64 = 400;
    /// Default extra assertions for `intermittent` parsed by name.
    pub const DEFAULT_REPEATS: u32 = 6;

    /// Stable kebab-case name (the `--fault-class` / journal spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Intermittent { .. } => "intermittent",
            FaultClass::StuckAt { .. } => "stuck-at",
        }
    }

    /// Whether the fault re-asserts after its first firing.
    pub fn is_persistent(self) -> bool {
        !matches!(self, FaultClass::Transient)
    }

    /// The re-armed copy scheduled after one assertion: `None` when the
    /// fault has exhausted its duty cycle (or is transient).
    pub fn rearm(self) -> Option<(u64, FaultClass)> {
        match self {
            FaultClass::Transient => None,
            FaultClass::Intermittent { repeats: 0, .. } => None,
            FaultClass::Intermittent { period, repeats } => Some((
                period,
                FaultClass::Intermittent {
                    period,
                    repeats: repeats - 1,
                },
            )),
            FaultClass::StuckAt { period } => Some((period, FaultClass::StuckAt { period })),
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultClass {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultClass, String> {
        match s {
            "transient" => Ok(FaultClass::Transient),
            "intermittent" => Ok(FaultClass::Intermittent {
                period: FaultClass::DEFAULT_PERIOD,
                repeats: FaultClass::DEFAULT_REPEATS,
            }),
            "stuck-at" => Ok(FaultClass::StuckAt {
                period: FaultClass::DEFAULT_PERIOD,
            }),
            other => Err(format!(
                "unknown fault class '{other}' (expected one of: transient, intermittent, stuck-at)"
            )),
        }
    }
}

/// One scheduled corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault is applied (after the core's tick).
    pub cycle: u64,
    /// Structure to corrupt.
    pub site: FaultSite,
    /// Free index the site interprets (entry/slot/thread/line selector).
    pub index: u64,
    /// Bit position the site interprets modulo the field width.
    pub bit: u8,
    /// Temporal class: one-shot, duty-cycled, or permanent.
    pub class: FaultClass,
}

impl FaultEvent {
    /// The `(site, index)` family key: all assertions of one physical
    /// defect share it, and retirement removes the whole family.
    pub fn family(&self) -> (FaultSite, u64) {
        (self.site, self.index)
    }
}

/// A deterministic schedule of faults for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Events, not necessarily sorted; each fires once.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults (the default for ordinary runs).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single fault.
    pub fn single(event: FaultEvent) -> FaultPlan {
        FaultPlan {
            events: vec![event],
        }
    }

    /// `count` faults drawn from `sites`, with cycles uniform in
    /// `window.0..window.1`, fully determined by `seed`.
    pub fn seeded(seed: u64, count: usize, window: (u64, u64), sites: &[FaultSite]) -> FaultPlan {
        assert!(!sites.is_empty(), "fault plan needs at least one site");
        let mut rng = XorShift::new(seed);
        let span = window.1.saturating_sub(window.0).max(1);
        let events = (0..count)
            .map(|_| FaultEvent {
                cycle: window.0 + rng.next_u64() % span,
                site: sites[(rng.next_u64() % sites.len() as u64) as usize],
                index: rng.next_u64(),
                bit: (rng.next_u64() % 64) as u8,
                class: FaultClass::Transient,
            })
            .collect();
        FaultPlan { events }
    }

    /// `count` faults of the given temporal `class`, drawn like
    /// [`FaultPlan::seeded`]. For permanent faults on SEC-DED word sites,
    /// one seed in three models a **pair** of stuck cells in the same word:
    /// correction is defeated from the first assertion, forcing the
    /// demand-retirement path instead of the predictive one.
    pub fn seeded_class(
        seed: u64,
        count: usize,
        window: (u64, u64),
        sites: &[FaultSite],
        class: FaultClass,
    ) -> FaultPlan {
        assert!(!sites.is_empty(), "fault plan needs at least one site");
        let mut rng = XorShift::new(seed);
        let span = window.1.saturating_sub(window.0).max(1);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let cycle = window.0 + rng.next_u64() % span;
            let site = sites[(rng.next_u64() % sites.len() as u64) as usize];
            let index = rng.next_u64();
            let bit = (rng.next_u64() % 64) as u8;
            let double = matches!(class, FaultClass::StuckAt { .. })
                && FaultSite::SECDED_WORDS.contains(&site)
                && rng.next_u64().is_multiple_of(3);
            events.push(FaultEvent {
                cycle,
                site,
                index,
                bit,
                class,
            });
            if double {
                let bit2 = ((bit as u64 + 1 + rng.next_u64() % 63) % 64) as u8;
                events.push(FaultEvent {
                    cycle,
                    site,
                    index,
                    bit: bit2,
                    class,
                });
            }
        }
        FaultPlan { events }
    }

    /// A double-bit burst: `count` upsets drawn from `sites`, each flipping
    /// **two distinct bits of the same word in the same cycle** — the
    /// multi-bit upset pattern that defeats single-error correction and
    /// exercises the SEC-DED detection limit. Fully determined by `seed`.
    pub fn seeded_burst(
        seed: u64,
        count: usize,
        window: (u64, u64),
        sites: &[FaultSite],
    ) -> FaultPlan {
        assert!(!sites.is_empty(), "fault plan needs at least one site");
        let mut rng = XorShift::new(seed);
        let span = window.1.saturating_sub(window.0).max(1);
        let mut events = Vec::with_capacity(count * 2);
        for _ in 0..count {
            let cycle = window.0 + rng.next_u64() % span;
            let site = sites[(rng.next_u64() % sites.len() as u64) as usize];
            let index = rng.next_u64();
            let bit = (rng.next_u64() % 64) as u8;
            // Second flip in the same word, guaranteed distinct so the two
            // cannot XOR-cancel into a no-op.
            let bit2 = ((bit as u64 + 1 + rng.next_u64() % 63) % 64) as u8;
            events.push(FaultEvent {
                cycle,
                site,
                index,
                bit,
                class: FaultClass::Transient,
            });
            events.push(FaultEvent {
                cycle,
                site,
                index,
                bit: bit2,
                class: FaultClass::Transient,
            });
        }
        FaultPlan { events }
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// How one injection ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionOutcome {
    /// The run failed with [`SimError::FaultDetected`]: the checker (or
    /// watchdog/budget) caught the corruption — but the recovery re-run
    /// did not reproduce the clean run's state. Detection without repair.
    Detected,
    /// The corruption was detected **and** re-executing the cell without
    /// the fault plan reproduced the clean run's architectural digest:
    /// the detect-and-re-execute recovery path works end to end.
    Recovered,
    /// The corrupted run panicked on an internal consistency assert —
    /// also a successful detection, via a different tripwire.
    Crashed,
    /// The protection model corrected the flip in place (single-bit under
    /// SEC-DED): the run finished clean with a nonzero scrub counter and
    /// the clean run's digest. The strongest outcome — no time was lost.
    Corrected,
    /// The protection model detected an uncorrectable flip and the runner
    /// restored an architectural checkpoint mid-run, replaying only the
    /// window since the snapshot. The run finished with the clean digest.
    CheckpointRecovered,
    /// The protection model detected an uncorrectable flip with no
    /// checkpoint available; the campaign-level full re-execution
    /// reproduced the clean digest. Detection via check bits, recovery by
    /// re-running from scratch.
    DetectedUncorrectable,
    /// The RAS layer's CE tracker predictively retired the failing region
    /// onto a spare before any uncorrectable error occurred: every
    /// assertion was corrected in place, the leaky-bucket threshold
    /// tripped, and the run finished with the clean digest.
    Retired,
    /// The fault went uncorrectable (stuck CAM way under parity, or a
    /// double stuck cell under SEC-DED); the runner restored a checkpoint
    /// and *demand-retired* the region onto a spare, after which the run
    /// finished with the clean digest.
    Remapped,
    /// A region had to be retired but the spare pool was exhausted: the
    /// region was fenced, capacity shrank, and the run completed — slower,
    /// but with the clean digest. Graceful degradation instead of death.
    Degraded,
    /// The fault was applied but changed nothing observable: the corrupted
    /// state was dead (never read again). Verification passed and the
    /// architectural digest matches the clean run. Benign by construction.
    Masked,
    /// The plan never landed (e.g. VRMU site on an engine without one, or
    /// the scheduled structure was empty at that cycle).
    NotApplied,
    /// The fault changed architectural state **and** every checker passed.
    /// This must never happen; any occurrence is a checker bug.
    Silent,
}

/// One row of a campaign report.
#[derive(Clone, Debug)]
pub struct InjectionRecord {
    /// Seed that generated this injection's plan.
    pub seed: u64,
    /// Descriptions of the faults that actually landed.
    pub faults: Vec<String>,
    /// Classification.
    pub outcome: InjectionOutcome,
    /// Error kind for detected runs (`cycle_budget`, `golden_divergence`…).
    pub error_kind: Option<String>,
    /// Cycles replayed from the restored checkpoint (present only for
    /// [`InjectionOutcome::CheckpointRecovered`]).
    pub replay_cycles: Option<u64>,
}

/// Aggregate result of [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Engine label of the attacked configuration.
    pub engine: String,
    /// Per-injection records, in seed order.
    pub records: Vec<InjectionRecord>,
    /// Cycles of the clean reference run.
    pub clean_cycles: u64,
}

impl CampaignReport {
    /// Count of records with the given outcome.
    pub fn count(&self, outcome: InjectionOutcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Detection rate over *effectful* faults: caught / (applied − masked).
    /// Masked faults hit dead state and are undetectable by any
    /// architectural checker; they are excluded, as in hardware FIT
    /// accounting. Corrected, checkpoint-recovered, ECC-detected, and
    /// re-execution-recovered injections were all caught first, so they
    /// count as caught.
    pub fn detection_rate(&self) -> f64 {
        let caught = self.count(InjectionOutcome::Detected)
            + self.count(InjectionOutcome::Recovered)
            + self.count(InjectionOutcome::Crashed)
            + self.count(InjectionOutcome::Corrected)
            + self.count(InjectionOutcome::CheckpointRecovered)
            + self.count(InjectionOutcome::DetectedUncorrectable)
            + self.count(InjectionOutcome::Retired)
            + self.count(InjectionOutcome::Remapped)
            + self.count(InjectionOutcome::Degraded);
        let effectful = caught + self.count(InjectionOutcome::Silent);
        if effectful == 0 {
            1.0
        } else {
            caught as f64 / effectful as f64
        }
    }

    /// Recovery rate over detected injections: how many ended with the
    /// clean run's architectural state — corrected in place, restored from
    /// a checkpoint, or repaired by a fault-free re-execution (crashes
    /// detect via a different tripwire and are not re-executed). 1.0 when
    /// nothing was detected.
    pub fn recovery_rate(&self) -> f64 {
        let repaired = self.count(InjectionOutcome::Recovered)
            + self.count(InjectionOutcome::Corrected)
            + self.count(InjectionOutcome::CheckpointRecovered)
            + self.count(InjectionOutcome::DetectedUncorrectable)
            + self.count(InjectionOutcome::Retired)
            + self.count(InjectionOutcome::Remapped)
            + self.count(InjectionOutcome::Degraded);
        let detected = repaired + self.count(InjectionOutcome::Detected);
        if detected == 0 {
            1.0
        } else {
            repaired as f64 / detected as f64
        }
    }

    /// Mean cycles replayed per checkpoint recovery, or `None` when no
    /// injection took the checkpoint path. Compare against
    /// [`CampaignReport::clean_cycles`] — the cost of the full
    /// re-execution that recovery used to require.
    pub fn mean_replay_cycles(&self) -> Option<f64> {
        let replays: Vec<u64> = self
            .records
            .iter()
            .filter_map(|r| r.replay_cycles)
            .collect();
        if replays.is_empty() {
            None
        } else {
            Some(replays.iter().sum::<u64>() as f64 / replays.len() as f64)
        }
    }

    /// True when no effectful fault escaped: zero silent corruptions.
    pub fn all_detected(&self) -> bool {
        self.count(InjectionOutcome::Silent) == 0
    }

    /// True when every checker-detected injection also recovered on its
    /// fault-free re-execution.
    pub fn all_recovered(&self) -> bool {
        self.count(InjectionOutcome::Detected) == 0
    }

    /// One summary line for logs and the campaign driver.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {} injections — {} corrected, {} ckpt-recovered, {} detected-uncorrectable, \
             {} recovered, {} detected-only, {} crashed, {} retired, {} remapped, {} degraded, \
             {} masked, {} not applied, {} SILENT (detection rate {:.1}%, recovery rate {:.1}%)",
            self.engine,
            self.records.len(),
            self.count(InjectionOutcome::Corrected),
            self.count(InjectionOutcome::CheckpointRecovered),
            self.count(InjectionOutcome::DetectedUncorrectable),
            self.count(InjectionOutcome::Recovered),
            self.count(InjectionOutcome::Detected),
            self.count(InjectionOutcome::Crashed),
            self.count(InjectionOutcome::Retired),
            self.count(InjectionOutcome::Remapped),
            self.count(InjectionOutcome::Degraded),
            self.count(InjectionOutcome::Masked),
            self.count(InjectionOutcome::NotApplied),
            self.count(InjectionOutcome::Silent),
            self.detection_rate() * 100.0,
            self.recovery_rate() * 100.0
        );
        if let Some(mean) = self.mean_replay_cycles() {
            s.push_str(&format!(
                " [mean replay {:.0} cycles vs {} full re-execution]",
                mean, self.clean_cycles
            ));
        }
        s
    }

    /// The RAS-campaign gate line, greppable by CI:
    /// `retired=N remapped=N degraded_runs=N silent=N`.
    pub fn ras_summary(&self) -> String {
        format!(
            "{}: ras retired={} remapped={} degraded_runs={} silent={}",
            self.engine,
            self.count(InjectionOutcome::Retired),
            self.count(InjectionOutcome::Remapped),
            self.count(InjectionOutcome::Degraded),
            self.count(InjectionOutcome::Silent)
        )
    }
}

/// Knobs for [`run_campaign_with`]: the protection coverage map, the
/// checkpoint spacing, and the single- vs. double-bit injection mode.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOptions {
    /// Per-site protection levels routed in front of every injection.
    pub protection: ProtectionConfig,
    /// Double-bit burst mode: every injection flips two distinct bits of
    /// the same word in the same cycle, defeating single-error correction.
    pub multi_fault: bool,
    /// Architectural-checkpoint spacing in cycles (0 disables mid-run
    /// recovery; detected-uncorrectable faults then fall back to full
    /// re-execution).
    pub checkpoint_interval: u64,
    /// Temporal class of the injected faults (transient, intermittent,
    /// stuck-at). Non-transient classes model defects that re-assert and
    /// are only survivable with the RAS layer enabled.
    pub class: FaultClass,
    /// RAS layer (scrubber + CE tracker + sparing) for the attacked runs.
    /// `None` disables it; persistent faults then end in a bounded typed
    /// uncorrectable error instead of a retirement.
    pub ras: Option<RasConfig>,
    /// Fabric configuration (topology, latencies) for the clean reference
    /// and every attacked run. Mesh topologies make `noc-link` injections
    /// land; the crossbar default keeps legacy campaigns byte-identical.
    pub fabric: FabricConfig,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            protection: ProtectionConfig::none(),
            multi_fault: false,
            checkpoint_interval: 0,
            class: FaultClass::Transient,
            ras: None,
            fabric: FabricConfig::default(),
        }
    }
}

impl CampaignOptions {
    /// The full protect–detect–correct–recover stack: the SEC-DED coverage
    /// map plus checkpointing at the default spacing.
    pub fn protected() -> CampaignOptions {
        CampaignOptions {
            protection: ProtectionConfig::secded(),
            multi_fault: false,
            checkpoint_interval: default_checkpoint_interval(),
            class: FaultClass::Transient,
            ras: None,
            fabric: FabricConfig::default(),
        }
    }

    /// The permanent-fault endurance stack: SEC-DED, checkpoints, stuck-at
    /// injections, and the RAS layer at its default rates.
    pub fn permanent() -> CampaignOptions {
        CampaignOptions {
            class: FaultClass::StuckAt {
                period: FaultClass::DEFAULT_PERIOD,
            },
            ras: Some(RasConfig::default()),
            ..CampaignOptions::protected()
        }
    }
}

/// Runs a clean reference, then `injections` seeded single-fault runs of
/// `cfg` on `workload`, classifying each against the golden checker and the
/// clean run's architectural digest. Equivalent to [`run_campaign_with`]
/// under [`CampaignOptions::default`] — no protection, no checkpoints.
///
/// # Panics
/// Panics if the clean (fault-free) run itself fails — the configuration
/// must be healthy before it is attacked.
pub fn run_campaign(
    cfg: CoreConfig,
    workload: &Workload,
    injections: usize,
    base_seed: u64,
    sites: &[FaultSite],
) -> CampaignReport {
    run_campaign_with(
        cfg,
        workload,
        injections,
        base_seed,
        sites,
        &CampaignOptions::default(),
    )
}

/// [`run_campaign`] with an explicit protection/checkpoint/burst
/// configuration. Each injection is routed through the coverage map first;
/// outcomes extend the detector-only classification with [`InjectionOutcome::Corrected`],
/// [`InjectionOutcome::CheckpointRecovered`], and
/// [`InjectionOutcome::DetectedUncorrectable`].
///
/// # Panics
/// Panics if the clean (fault-free) run itself fails — the configuration
/// must be healthy before it is attacked.
pub fn run_campaign_with(
    cfg: CoreConfig,
    workload: &Workload,
    injections: usize,
    base_seed: u64,
    sites: &[FaultSite],
    campaign: &CampaignOptions,
) -> CampaignReport {
    let clean_opts = RunOptions {
        fabric: campaign.fabric,
        ..RunOptions::default()
    };
    let clean: RunResult = try_run_single(cfg, workload, &clean_opts)
        .unwrap_or_else(|e| panic!("clean reference run failed: {e}"));

    // Inject inside the meaty middle of the run: after warm-up fills, before
    // the drain, so the corrupted state has a real chance to be consumed.
    let window = ((clean.cycles / 10).max(1), (clean.cycles * 9 / 10).max(2));

    // Attacked runs get tripwires scaled to the clean run, not the
    // conservative defaults: a corrupted run that stops committing is
    // flagged after a few clean-run lengths, and one that runs away while
    // still committing (e.g. a flipped loop bound) is flagged by the
    // budget instead of burning the full configured allowance.
    let livelock_cycles = clean.cycles.saturating_mul(4).max(10_000);
    let mut attacked = cfg;
    attacked.max_cycles = clean
        .cycles
        .saturating_mul(20)
        .max(100_000)
        .min(cfg.max_cycles);

    let mut records = Vec::with_capacity(injections);
    for i in 0..injections {
        let seed = base_seed.wrapping_add(i as u64).max(1);
        let faults = if campaign.class.is_persistent() {
            FaultPlan::seeded_class(seed, 1, window, sites, campaign.class)
        } else if campaign.multi_fault {
            FaultPlan::seeded_burst(seed, 1, window, sites)
        } else {
            FaultPlan::seeded(seed, 1, window, sites)
        };
        // One injection in four runs on an end-of-life machine whose spare
        // pools are already consumed: retirement then has to fence the
        // region, exercising the degraded-mode path deterministically.
        let mut ras = campaign.ras;
        if let Some(rc) = &mut ras {
            if i % 4 == 3 {
                rc.spare_rows = 0;
                rc.spare_ways = 0;
            }
        }
        let opts = RunOptions {
            faults,
            livelock_cycles,
            protection: campaign.protection,
            checkpoint_interval: campaign.checkpoint_interval,
            ras,
            fabric: campaign.fabric,
            ..RunOptions::default()
        };
        let run = catch_unwind(AssertUnwindSafe(|| {
            try_run_single(attacked, workload, &opts)
        }));
        let record = match run {
            Err(_) => InjectionRecord {
                seed,
                faults: vec!["(panicked before reporting)".into()],
                outcome: InjectionOutcome::Crashed,
                error_kind: None,
                replay_cycles: None,
            },
            Ok(Err(SimError::FaultDetected {
                faults,
                cause,
                diag: _,
            })) => {
                // Detection is half the story: re-execute once without the
                // fault plan — the checkpoint/restart answer to a detected
                // soft error — and verify the re-run reproduces the clean
                // run's architectural state.
                let recovery_opts = RunOptions {
                    livelock_cycles,
                    fabric: campaign.fabric,
                    ..RunOptions::default()
                };
                let recovered = catch_unwind(AssertUnwindSafe(|| {
                    try_run_single(attacked, workload, &recovery_opts)
                }))
                .map(|r| matches!(r, Ok(rerun) if rerun.arch_digest == clean.arch_digest))
                .unwrap_or(false);
                // An ECC-detected uncorrectable (no checkpoint was
                // available) is its own recovered class: the check bits,
                // not the differential checker, were the tripwire.
                let ecc_detected = cause.kind() == "uncorrectable";
                InjectionRecord {
                    seed,
                    faults,
                    outcome: match (recovered, ecc_detected) {
                        (true, true) => InjectionOutcome::DetectedUncorrectable,
                        (true, false) => InjectionOutcome::Recovered,
                        (false, _) => InjectionOutcome::Detected,
                    },
                    error_kind: Some(cause.kind().to_string()),
                    replay_cycles: None,
                }
            }
            Ok(Err(other)) => InjectionRecord {
                // A failure without an applied fault: infrastructure bug,
                // surface it loudly as a crash rather than a detection.
                seed,
                faults: Vec::new(),
                outcome: InjectionOutcome::Crashed,
                error_kind: Some(other.kind().to_string()),
                replay_cycles: None,
            },
            Ok(Ok(result)) => {
                let clean_digest = result.arch_digest == clean.arch_digest;
                // RAS outcomes outrank the transient-era classes: a run
                // that fenced a region *and* replayed a checkpoint is a
                // degradation story, not a recovery story.
                let (outcome, replay) = if result.ras.degraded_regions > 0 && clean_digest {
                    (InjectionOutcome::Degraded, None)
                } else if result.ras.demand_retirements > 0 && clean_digest {
                    (InjectionOutcome::Remapped, Some(result.ecc.replay_cycles))
                } else if result.ras.predictive_retirements > 0 && clean_digest {
                    (InjectionOutcome::Retired, None)
                } else if result.ecc.restores > 0 && clean_digest {
                    (
                        InjectionOutcome::CheckpointRecovered,
                        Some(result.ecc.replay_cycles),
                    )
                } else if result.ecc.corrected > 0 && clean_digest {
                    (InjectionOutcome::Corrected, None)
                } else if result.faults_applied.is_empty() {
                    (InjectionOutcome::NotApplied, None)
                } else if clean_digest {
                    (InjectionOutcome::Masked, None)
                } else {
                    (InjectionOutcome::Silent, None)
                };
                InjectionRecord {
                    seed,
                    faults: result.faults_applied,
                    outcome,
                    error_kind: None,
                    replay_cycles: replay,
                }
            }
        };
        records.push(record);
    }

    CampaignReport {
        engine: crate::runner::engine_label(&cfg).to_string(),
        records,
        clean_cycles: clean.cycles,
    }
}

/// Maps a generic (site, index, bit) event onto the engine's fault hooks.
/// Used by the runner; exposed for tests.
pub fn engine_fault_of(event: &FaultEvent) -> Option<EngineFault> {
    match event.site {
        FaultSite::TagValue => Some(EngineFault::RegValue {
            nth: event.index,
            bit: event.bit,
        }),
        FaultSite::RollbackSlot => Some(EngineFault::RollbackSlot {
            nth: event.index,
            bit: event.bit,
        }),
        FaultSite::StuckFill => Some(EngineFault::StuckFill { nth: event.index }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 8, (100, 1000), &FaultSite::ALL);
        let b = FaultPlan::seeded(42, 8, (100, 1000), &FaultSite::ALL);
        assert_eq!(a.events.len(), 8);
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.cycle, y.cycle);
            assert_eq!(x.site, y.site);
            assert_eq!(x.index, y.index);
            assert_eq!(x.bit, y.bit);
        }
        let c = FaultPlan::seeded(43, 8, (100, 1000), &FaultSite::ALL);
        assert!(a
            .events
            .iter()
            .zip(&c.events)
            .any(|(x, y)| x.cycle != y.cycle || x.index != y.index));
    }

    #[test]
    fn plan_cycles_respect_window() {
        let p = FaultPlan::seeded(7, 64, (500, 600), &FaultSite::ALL);
        for e in &p.events {
            assert!(
                (500..600).contains(&e.cycle),
                "cycle {} outside window",
                e.cycle
            );
        }
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::EVERY {
            let name = site.to_string();
            assert_eq!(
                name.parse::<FaultSite>().unwrap(),
                site,
                "round trip through '{name}'"
            );
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "'{name}' is not stable kebab-case"
            );
        }
        assert!("tag_value".parse::<FaultSite>().is_err());
        assert_eq!(
            parse_sites("tag-value,dram-line").unwrap(),
            vec![FaultSite::TagValue, FaultSite::DramLine]
        );
        assert_eq!(
            parse_sites("noc-link").unwrap(),
            vec![FaultSite::NocLink],
            "the NoC transport site parses even though ALL excludes it"
        );
        assert!(!FaultSite::ALL.contains(&FaultSite::NocLink));
        assert!(parse_sites("").is_err());
        assert!(parse_sites("tag-value,bogus").is_err());
    }

    #[test]
    fn burst_plans_pair_distinct_bits_in_one_word() {
        let p = FaultPlan::seeded_burst(99, 16, (100, 1000), &FaultSite::SECDED_WORDS);
        assert_eq!(p.events.len(), 32);
        for pair in p.events.chunks(2) {
            assert_eq!(pair[0].cycle, pair[1].cycle, "same cycle");
            assert_eq!(pair[0].site, pair[1].site, "same site");
            assert_eq!(pair[0].index, pair[1].index, "same word");
            assert_ne!(pair[0].bit, pair[1].bit, "distinct bits");
        }
        let q = FaultPlan::seeded_burst(99, 16, (100, 1000), &FaultSite::SECDED_WORDS);
        assert_eq!(p.events, q.events, "seed determines the burst");
    }

    #[test]
    fn report_math() {
        let rec = |outcome| InjectionRecord {
            seed: 1,
            faults: vec![],
            outcome,
            error_kind: None,
            replay_cycles: None,
        };
        let report = CampaignReport {
            engine: "virec".into(),
            records: vec![
                rec(InjectionOutcome::Recovered),
                rec(InjectionOutcome::Recovered),
                rec(InjectionOutcome::Crashed),
                rec(InjectionOutcome::Masked),
                rec(InjectionOutcome::NotApplied),
            ],
            clean_cycles: 1000,
        };
        assert!(report.all_detected());
        assert!(report.all_recovered());
        assert_eq!(report.detection_rate(), 1.0);
        assert_eq!(report.recovery_rate(), 1.0);

        let mut partial = report.clone();
        partial.records.push(rec(InjectionOutcome::Detected));
        assert!(partial.all_detected(), "detection still holds");
        assert!(!partial.all_recovered());
        assert!((partial.recovery_rate() - 2.0 / 3.0).abs() < 1e-12);

        let mut bad = report.clone();
        bad.records.push(rec(InjectionOutcome::Silent));
        assert!(!bad.all_detected());
        assert!(bad.detection_rate() < 1.0);
        assert!(bad.summary().contains("1 SILENT"));

        let mut protected = report.clone();
        protected.records.push(rec(InjectionOutcome::Corrected));
        protected
            .records
            .push(rec(InjectionOutcome::DetectedUncorrectable));
        protected.records.push(InjectionRecord {
            seed: 9,
            faults: vec![],
            outcome: InjectionOutcome::CheckpointRecovered,
            error_kind: None,
            replay_cycles: Some(400),
        });
        assert!(protected.all_detected());
        assert!(protected.all_recovered());
        assert_eq!(protected.detection_rate(), 1.0);
        assert_eq!(protected.recovery_rate(), 1.0);
        assert_eq!(protected.mean_replay_cycles(), Some(400.0));
        assert!(protected.summary().contains("1 ckpt-recovered"));
        assert!(protected.summary().contains("mean replay 400 cycles"));
    }
}
