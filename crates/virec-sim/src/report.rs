//! Plain-text report emission for the figure binaries.
//!
//! Figures are regenerated as aligned text tables (readable in a terminal)
//! plus machine-readable CSV blocks, avoiding any serialization dependency.

/// A simple table builder with aligned columns.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders a CSV block (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints both renderings to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("csv:\n{}", self.to_csv());
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice (panics on empty or non-positive values).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "ipc"]);
        t.row(vec!["gather".into(), "0.512".into()]);
        t.row(vec!["x".into(), "1.0".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("gather"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
