//! Single-core experiment runner.
//!
//! [`try_run_single`] is the fallible core: it drives the cycle loop with a
//! forward-progress watchdog, applies any scheduled [`FaultPlan`], and
//! verifies the final architectural state against the golden interpreter,
//! returning a typed [`SimError`] instead of panicking. [`run_single`] is
//! the thin panicking wrapper the examples and figure binaries use.

use crate::cancel::{GateTrip, RunGate};
use crate::error::{DivergenceSite, RunDiagnostics, SimError};
use crate::fault::{engine_fault_of, FaultEvent, FaultPlan, FaultSite};
use crate::offload::offload;
use crate::watchdog::{Watchdog, DEFAULT_LIVELOCK_CYCLES};
use virec_core::{Core, CoreConfig, CoreStats, EngineKind, OracleSchedule, QuantumTrace};
use virec_isa::{ExecOutcome, FlatMem, Interpreter, Reg, ThreadCtx};
use virec_mem::{Fabric, FabricConfig};
use virec_workloads::{layout, Workload};

/// Options for a single-core run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Fabric (crossbar + DRAM) configuration.
    pub fabric: FabricConfig,
    /// Check final architectural state against the golden interpreter
    /// (cheap insurance; on by default).
    pub verify: bool,
    /// Record per-quantum register sets (for the prefetch oracle).
    pub record_oracle: bool,
    /// Oracle to feed an exact-context prefetching core.
    pub oracle: OracleSchedule,
    /// Watchdog threshold: cycles without a commit before the run is
    /// declared livelocked (0 disables the watchdog).
    pub livelock_cycles: u64,
    /// Scheduled fault injections (empty for ordinary runs).
    pub faults: FaultPlan,
    /// Wall-clock deadline / cooperative-cancellation gate; the default
    /// never trips. The step loop polls it cheaply and degrades to a
    /// typed [`SimError::Deadline`] when it fires.
    pub gate: RunGate,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fabric: FabricConfig::default(),
            verify: true,
            record_oracle: false,
            oracle: OracleSchedule::default(),
            livelock_cycles: DEFAULT_LIVELOCK_CYCLES,
            faults: FaultPlan::empty(),
            gate: RunGate::unbounded(),
        }
    }
}

/// Builds the typed error for a tripped gate from a live core snapshot.
pub(crate) fn deadline_error(trip: GateTrip, workload: &str, core: &Core, cycles: u64) -> SimError {
    SimError::Deadline {
        elapsed_ms: trip.elapsed_ms,
        limit_ms: trip.limit_ms,
        diag: RunDiagnostics::capture(workload, core, cycles),
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total cycles until every thread halted.
    pub cycles: u64,
    /// Core statistics (caches folded in).
    pub stats: CoreStats,
    /// Recorded oracle (empty unless requested).
    pub oracle: OracleSchedule,
    /// Descriptions of the injected faults that actually landed.
    pub faults_applied: Vec<String>,
    /// FNV digest of the final architectural state (all thread registers
    /// plus the data segment) — used by fault campaigns to distinguish
    /// masked faults from silent corruptions.
    pub arch_digest: u64,
}

impl RunResult {
    /// Instructions per cycle — the paper's primary performance metric.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Fallible single-core run: returns a typed error instead of panicking.
///
/// The cycle loop distinguishes *livelock* (no commit for
/// [`RunOptions::livelock_cycles`] — the machine is wedged, reported with a
/// full pipeline/engine/MSHR dump) from a *slow run* (commits still landing
/// when `CoreConfig::max_cycles` runs out — a budget problem). If the
/// options carry a [`FaultPlan`], events are applied at their scheduled
/// cycles and any subsequent failure is wrapped in
/// [`SimError::FaultDetected`] so campaign drivers can attribute it.
pub fn try_run_single(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<RunResult, SimError> {
    try_run_single_impl(cfg, workload, opts, false).map(|(r, _)| r)
}

/// [`try_run_single`] plus a per-quantum trace: start/resume PCs, the
/// decode-acquired use and read-before-written demand masks, and the
/// engine's resident/committed live-bit samples at each switch-out. Used by
/// `virec-verify` to cross-check the timing model against static liveness.
/// `RunResult` itself is unchanged (it round-trips through the sweep
/// journal codec), so the trace rides alongside.
pub fn try_run_single_traced(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<(RunResult, QuantumTrace), SimError> {
    try_run_single_impl(cfg, workload, opts, true)
}

fn try_run_single_impl(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
    want_trace: bool,
) -> Result<(RunResult, QuantumTrace), SimError> {
    let mut mem = FlatMem::new(
        0,
        layout::mem_size(1).max((workload.layout.data_base + workload.layout.data_size) as usize),
    );
    let region = offload(&mut mem, workload, cfg.nthreads);

    let mut core = Core::with_oracle(
        cfg,
        workload.program().clone(),
        region,
        workload.layout.code_base,
        (0, 1),
        opts.oracle.clone(),
    );
    if opts.record_oracle {
        core.enable_quantum_recording();
    }
    if want_trace {
        core.enable_quantum_trace();
    }

    let mut fabric = Fabric::new(opts.fabric);
    let mut watchdog = Watchdog::new(opts.livelock_cycles);
    let mut pending: Vec<FaultEvent> = opts.faults.events.clone();
    let mut faults_applied: Vec<String> = Vec::new();
    let wrap = |e: SimError, applied: &[String]| -> SimError {
        if applied.is_empty() {
            e
        } else {
            let diag = Box::new(e.diagnostics().clone());
            SimError::FaultDetected {
                faults: applied.to_vec(),
                cause: Box::new(e),
                diag,
            }
        }
    };

    // Check the gate once up front so a pre-cancelled run (e.g. a SIGINT
    // abort that lands between cells) trips deterministically even when
    // the workload would finish in under one poll interval.
    if let Some(trip) = opts.gate.trip() {
        return Err(wrap(
            deadline_error(trip, workload.name, &core, 0),
            &faults_applied,
        ));
    }

    let mut now = 0u64;
    while !core.done() {
        if let Some(trip) = opts.gate.poll(now) {
            return Err(wrap(
                deadline_error(trip, workload.name, &core, now),
                &faults_applied,
            ));
        }
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);

        if !pending.is_empty() {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].cycle <= now {
                    let event = pending.swap_remove(i);
                    if let Some(desc) = apply_fault(&event, &mut core, &fabric, &mut mem, workload)
                    {
                        faults_applied.push(format!("cycle {now}: {desc}"));
                    }
                } else {
                    i += 1;
                }
            }
        }

        now += 1;
        if let Err(stalled) = watchdog.observe(now, core.stats().instructions) {
            let e = SimError::Livelock {
                stalled_cycles: stalled,
                dump: core.debug_dump(),
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }
        if now >= cfg.max_cycles {
            let e = SimError::CycleBudgetExceeded {
                budget: cfg.max_cycles,
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }
    }
    core.finalize_stats();
    core.drain(&mut mem);

    let arch_digest = arch_digest(&core, &mem, workload, cfg.nthreads);

    if opts.verify {
        if let Err(e) = try_verify_against_golden(workload, cfg.nthreads, &core, &mem, now) {
            return Err(wrap(e, &faults_applied));
        }
    }

    let oracle = core.take_oracle();
    let trace = core.take_quantum_trace();
    Ok((
        RunResult {
            cycles: now,
            stats: *core.stats(),
            oracle,
            faults_applied,
            arch_digest,
        },
        trace,
    ))
}

/// Runs `workload` on a single core with `nthreads` hardware threads.
///
/// ```
/// use virec_core::CoreConfig;
/// use virec_sim::runner::{run_single, RunOptions};
/// use virec_workloads::{kernels, Layout};
///
/// let w = kernels::stream::reduction(256, Layout::for_core(0));
/// let r = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
/// assert!(r.ipc() > 0.0);
/// assert!(r.stats.instructions > 256);
/// ```
///
/// # Panics
/// Panics with the [`SimError`] display if the run exceeds the configured
/// cycle limit, livelocks, or (with `verify`) diverges from the golden
/// interpreter. Use [`try_run_single`] to handle failures structurally.
pub fn run_single(cfg: CoreConfig, workload: &Workload, opts: &RunOptions) -> RunResult {
    try_run_single(cfg, workload, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Applies one fault event to the live machine. Returns a description when
/// the fault landed, `None` when the targeted structure had nothing to
/// corrupt (e.g. a VRMU site on a banked engine, or no in-flight request).
fn apply_fault(
    event: &FaultEvent,
    core: &mut Core,
    fabric: &Fabric,
    mem: &mut FlatMem,
    workload: &Workload,
) -> Option<String> {
    let flip = |mem: &mut FlatMem, addr: u64, bit: u8| {
        let v = mem.read_u64(addr);
        mem.write_u64(addr, v ^ (1u64 << (bit % 64)));
    };
    let mem_end = mem.size() as u64;
    match event.site {
        FaultSite::TagValue | FaultSite::RollbackSlot | FaultSite::StuckFill => {
            core.inject_fault(engine_fault_of(event)?)
        }
        FaultSite::BackingReg => {
            let nthreads = core.config().nthreads as u64;
            let t = (event.index % nthreads) as usize;
            let r = Reg::new(((event.index / nthreads) % 31) as u8);
            let addr = core.region().reg_addr(t, r);
            if addr + 8 > mem_end {
                return None;
            }
            flip(mem, addr, event.bit);
            Some(format!("backing-store t{t} {r} bit {}", event.bit % 64))
        }
        FaultSite::DramLine => {
            let words = (workload.layout.data_size / 8).max(1);
            let addr = workload.layout.data_base + (event.index % words) * 8;
            if addr + 8 > mem_end {
                return None;
            }
            flip(mem, addr, event.bit);
            Some(format!("dram word {addr:#x} bit {}", event.bit % 64))
        }
        FaultSite::FabricResponse => {
            let addr = fabric.inflight_addr(event.index as usize)?;
            let line = addr & !63;
            let word = line + (event.bit as u64 % 8) * 8;
            if word + 8 > mem_end {
                return None;
            }
            flip(mem, word, event.bit);
            Some(format!(
                "fabric response line {line:#x} word {} bit {}",
                event.bit % 8,
                event.bit % 64
            ))
        }
    }
}

/// FNV-1a digest of the final architectural state: every allocatable
/// register of every thread, then the data segment bytes.
fn arch_digest(core: &Core, mem: &FlatMem, workload: &Workload, nthreads: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for t in 0..nthreads {
        for r in Reg::allocatable() {
            for b in core.arch_reg(t, r, mem).to_le_bytes() {
                eat(b);
            }
        }
    }
    let data_lo = workload.layout.data_base as usize;
    let data_hi =
        (workload.layout.data_base + workload.layout.data_size).min(mem.size() as u64) as usize;
    for &b in &mem.bytes()[data_lo..data_hi] {
        eat(b);
    }
    h
}

/// Step cap for the golden interpreter, derived from the timing run's
/// actual committed-instruction count (with generous slack) instead of a
/// hard-coded constant — a workload that legitimately needs more steps
/// cannot be misreported, and a wedged golden run is detected at a cap
/// proportional to the work actually done.
fn golden_step_cap(committed_instructions: u64) -> u64 {
    committed_instructions
        .saturating_mul(4)
        .saturating_add(100_000)
}

/// Fallible form of [`verify_against_golden`]: compares a finished core's
/// architectural state (registers and data segment) against a fresh
/// golden-interpreter run of the same workload.
pub fn try_verify_against_golden(
    workload: &Workload,
    nthreads: usize,
    core: &Core,
    mem: &FlatMem,
    cycles: u64,
) -> Result<(), SimError> {
    let diag = || RunDiagnostics::capture(workload.name, core, cycles);
    let step_cap = golden_step_cap(core.stats().instructions);
    let mut gold_mem = FlatMem::new(0, mem.size());
    workload.init_mem(&mut gold_mem);
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in workload.thread_ctx(t, nthreads) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(workload.program(), &mut gold_mem).run(&mut ctx, step_cap);
        if !matches!(out, ExecOutcome::Halted { .. }) {
            return Err(SimError::GoldenRunStuck {
                thread: t,
                step_cap,
                diag: diag(),
            });
        }
        for r in Reg::allocatable() {
            let got = core.arch_reg(t, r, mem);
            let want = ctx.get(r);
            if got != want {
                return Err(SimError::GoldenDivergence {
                    site: DivergenceSite::Register {
                        thread: t,
                        reg: r,
                        got,
                        want,
                    },
                    diag: diag(),
                });
            }
        }
    }
    let data_lo = workload.layout.data_base as usize;
    let data_hi =
        (workload.layout.data_base + workload.layout.data_size).min(mem.size() as u64) as usize;
    let got = &mem.bytes()[data_lo..data_hi];
    let want = &gold_mem.bytes()[data_lo..data_hi];
    if got != want {
        let first_mismatch = got
            .iter()
            .zip(want)
            .position(|(a, b)| a != b)
            .map_or(data_lo, |off| data_lo + off);
        return Err(SimError::GoldenDivergence {
            site: DivergenceSite::DataRange {
                lo: data_lo,
                hi: data_hi,
                first_mismatch,
            },
            diag: diag(),
        });
    }
    Ok(())
}

/// Compares a finished core's architectural state (registers and data
/// segment) against a fresh golden-interpreter run of the same workload.
///
/// # Panics
/// Panics on any divergence — a timing model must never change results.
/// Use [`try_verify_against_golden`] to handle divergence structurally.
pub fn verify_against_golden(workload: &Workload, nthreads: usize, core: &Core, mem: &FlatMem) {
    try_verify_against_golden(workload, nthreads, core, mem, core.stats().cycles)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible oracle recording: runs the workload on a banked core with the
/// same thread count under `gate`, returning the recorded schedule.
pub fn try_record_oracle(
    workload: &Workload,
    nthreads: usize,
    fabric: FabricConfig,
    gate: &RunGate,
) -> Result<OracleSchedule, SimError> {
    let cfg = CoreConfig::banked(nthreads);
    let opts = RunOptions {
        fabric,
        verify: false,
        record_oracle: true,
        gate: gate.clone(),
        ..RunOptions::default()
    };
    try_run_single(cfg, workload, &opts).map(|r| r.oracle)
}

/// Records the per-quantum oracle by running the workload on a banked core
/// with the same thread count (the recording substrate for §6.1's exact
/// prefetching comparison).
pub fn record_oracle(workload: &Workload, nthreads: usize, fabric: FabricConfig) -> OracleSchedule {
    try_record_oracle(workload, nthreads, fabric, &RunGate::unbounded())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: run an exact-context prefetching core, recording the oracle
/// first.
pub fn run_prefetch_exact(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
) -> RunResult {
    let oracle = record_oracle(workload, nthreads, fabric);
    let cfg = CoreConfig::prefetch_exact(nthreads, regs_per_thread);
    let opts = RunOptions {
        fabric,
        oracle,
        ..RunOptions::default()
    };
    run_single(cfg, workload, &opts)
}

/// Fallible form of [`run_prefetch_exact`].
pub fn try_run_prefetch_exact(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
) -> Result<RunResult, SimError> {
    try_run_prefetch_exact_gated(
        nthreads,
        regs_per_thread,
        workload,
        fabric,
        &RunGate::unbounded(),
    )
}

/// [`try_run_prefetch_exact`] under a cancellation gate. The same gate —
/// and therefore the same wall-clock deadline — spans both the oracle
/// recording and the replay phase, so the cell's total time is bounded.
pub fn try_run_prefetch_exact_gated(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
    gate: &RunGate,
) -> Result<RunResult, SimError> {
    let oracle = try_record_oracle(workload, nthreads, fabric, gate)?;
    let cfg = CoreConfig::prefetch_exact(nthreads, regs_per_thread);
    let opts = RunOptions {
        fabric,
        oracle,
        gate: gate.clone(),
        ..RunOptions::default()
    };
    try_run_single(cfg, workload, &opts)
}

/// Sanity marker so downstream code can assert which engine a config is.
pub fn engine_label(cfg: &CoreConfig) -> &'static str {
    match cfg.engine {
        EngineKind::ViReC => "virec",
        EngineKind::Banked => "banked",
        EngineKind::Software => "software",
        EngineKind::PrefetchFull => "prefetch_full",
        EngineKind::PrefetchExact => "prefetch_exact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::{kernels, Layout};

    #[test]
    fn banked_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(r.cycles > 0);
        assert!(r.stats.instructions > 256 * 5);
    }

    #[test]
    fn virec_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default());
        assert!(r.stats.rf_misses > 0);
    }

    #[test]
    fn oracle_recording_produces_quanta() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let o = record_oracle(&w, 4, FabricConfig::default());
        assert_eq!(o.sets.len(), 4);
        assert!(
            o.sets.iter().any(|s| s.len() > 1),
            "multiple quanta expected"
        );
    }

    #[test]
    fn prefetch_exact_runs_with_recorded_oracle() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_prefetch_exact(4, 8, &w, FabricConfig::default());
        assert!(r.cycles > 0);
    }

    #[test]
    fn multithreading_beats_single_thread_on_gather() {
        // The core premise: TLP hides memory latency.
        let w = kernels::spatter::gather(1024, Layout::for_core(0));
        let one = run_single(CoreConfig::banked(1), &w, &RunOptions::default());
        let four = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(
            four.cycles * 2 < one.cycles * 3,
            "4 threads ({}) should clearly beat 1 thread ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn budget_exhaustion_is_typed_not_a_panic() {
        let w = kernels::spatter::gather(512, Layout::for_core(0));
        let mut cfg = CoreConfig::virec(4, 32);
        cfg.max_cycles = 2_000; // far too small for 512 elements
        let err = try_run_single(cfg, &w, &RunOptions::default()).unwrap_err();
        match &err {
            SimError::CycleBudgetExceeded { budget, diag } => {
                assert_eq!(*budget, 2_000);
                assert_eq!(diag.nthreads, 4);
                assert_eq!(diag.last_commit_pc.len(), 4);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        assert_eq!(err.kind(), "cycle_budget");
    }

    #[test]
    fn cancelled_gate_surfaces_as_typed_deadline() {
        use crate::cancel::CancelToken;
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let token = CancelToken::new();
        token.cancel();
        let opts = RunOptions {
            gate: RunGate::new(token, 0),
            ..RunOptions::default()
        };
        let err = try_run_single(CoreConfig::virec(4, 32), &w, &opts).unwrap_err();
        match &err {
            SimError::Deadline { limit_ms, .. } => assert_eq!(*limit_ms, 0),
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert_eq!(err.kind(), "deadline");
        assert!(!err.deadline_expired(), "a cancellation is not an expiry");
    }

    #[test]
    fn expired_deadline_stops_a_long_run() {
        // A deadline that has already passed when the loop starts polling:
        // the run must stop at the first poll with an expired trip.
        let w = kernels::spatter::gather(4096, Layout::for_core(0));
        let gate = RunGate::new(crate::cancel::CancelToken::new(), 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let opts = RunOptions {
            gate,
            ..RunOptions::default()
        };
        let err = try_run_single(CoreConfig::virec(4, 32), &w, &opts).unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(err.deadline_expired());
    }

    #[test]
    fn identical_runs_have_identical_digests() {
        let w = kernels::stream::stream_triad(128, Layout::for_core(0));
        let a = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
        let b = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
        assert_eq!(a.arch_digest, b.arch_digest, "runs are deterministic");
        // A different kernel must not collide.
        let w2 = kernels::stream::reduction(128, Layout::for_core(0));
        let c = run_single(CoreConfig::virec(4, 24), &w2, &RunOptions::default());
        assert_ne!(a.arch_digest, c.arch_digest);
    }

    #[test]
    fn engines_agree_on_arch_digest() {
        // The digest is over architectural state, so every engine that
        // verifies against the same golden model must produce the same one.
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let banked = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        let virec = run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default());
        assert_eq!(banked.arch_digest, virec.arch_digest);
    }
}
