//! Single-core experiment runner.

use crate::offload::offload;
use virec_core::{Core, CoreConfig, CoreStats, EngineKind, OracleSchedule};
use virec_isa::{ExecOutcome, FlatMem, Interpreter, Reg, ThreadCtx};
use virec_mem::{Fabric, FabricConfig};
use virec_workloads::{layout, Workload};

/// Options for a single-core run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Fabric (crossbar + DRAM) configuration.
    pub fabric: FabricConfig,
    /// Check final architectural state against the golden interpreter
    /// (cheap insurance; on by default).
    pub verify: bool,
    /// Record per-quantum register sets (for the prefetch oracle).
    pub record_oracle: bool,
    /// Oracle to feed an exact-context prefetching core.
    pub oracle: OracleSchedule,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fabric: FabricConfig::default(),
            verify: true,
            record_oracle: false,
            oracle: OracleSchedule::default(),
        }
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total cycles until every thread halted.
    pub cycles: u64,
    /// Core statistics (caches folded in).
    pub stats: CoreStats,
    /// Recorded oracle (empty unless requested).
    pub oracle: OracleSchedule,
}

impl RunResult {
    /// Instructions per cycle — the paper's primary performance metric.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Runs `workload` on a single core with `nthreads` hardware threads.
///
/// ```
/// use virec_core::CoreConfig;
/// use virec_sim::runner::{run_single, RunOptions};
/// use virec_workloads::{kernels, Layout};
///
/// let w = kernels::stream::reduction(256, Layout::for_core(0));
/// let r = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
/// assert!(r.ipc() > 0.0);
/// assert!(r.stats.instructions > 256);
/// ```
///
/// # Panics
/// Panics if the run exceeds the configured cycle limit or (with
/// `verify`) diverges from the golden interpreter.
pub fn run_single(cfg: CoreConfig, workload: &Workload, opts: &RunOptions) -> RunResult {
    let mut mem = FlatMem::new(
        0,
        layout::mem_size(1).max((workload.layout.data_base + workload.layout.data_size) as usize),
    );
    let region = offload(&mut mem, workload, cfg.nthreads);

    let mut core = Core::with_oracle(
        cfg,
        workload.program().clone(),
        region,
        workload.layout.code_base,
        (0, 1),
        opts.oracle.clone(),
    );
    if opts.record_oracle {
        core.enable_quantum_recording();
    }

    let mut fabric = Fabric::new(opts.fabric);
    let mut now = 0u64;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(
            now < cfg.max_cycles,
            "{}: exceeded {} cycles (engine {:?}, {} threads)",
            workload.name,
            cfg.max_cycles,
            cfg.engine,
            cfg.nthreads
        );
    }
    core.finalize_stats();
    core.drain(&mut mem);

    if opts.verify {
        verify_against_golden(workload, cfg.nthreads, &core, &mem);
    }

    let oracle = core.take_oracle();
    RunResult {
        cycles: now,
        stats: *core.stats(),
        oracle,
    }
}

/// Compares a finished core's architectural state (registers and data
/// segment) against a fresh golden-interpreter run of the same workload.
///
/// # Panics
/// Panics on any divergence — a timing model must never change results.
pub fn verify_against_golden(workload: &Workload, nthreads: usize, core: &Core, mem: &FlatMem) {
    let mut gold_mem = FlatMem::new(0, mem.size());
    workload.init_mem(&mut gold_mem);
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in workload.thread_ctx(t, nthreads) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(workload.program(), &mut gold_mem).run(&mut ctx, 100_000_000);
        assert!(
            matches!(out, ExecOutcome::Halted { .. }),
            "golden run of {} did not halt",
            workload.name
        );
        for r in Reg::allocatable() {
            assert_eq!(
                core.arch_reg(t, r, mem),
                ctx.get(r),
                "{}: thread {t} register {r} diverged",
                workload.name
            );
        }
    }
    let data_lo = workload.layout.data_base as usize;
    let data_hi =
        (workload.layout.data_base + workload.layout.data_size).min(mem.size() as u64) as usize;
    assert_eq!(
        &mem.bytes()[data_lo..data_hi],
        &gold_mem.bytes()[data_lo..data_hi],
        "{}: data segment diverged",
        workload.name
    );
}

/// Records the per-quantum oracle by running the workload on a banked core
/// with the same thread count (the recording substrate for §6.1's exact
/// prefetching comparison).
pub fn record_oracle(workload: &Workload, nthreads: usize, fabric: FabricConfig) -> OracleSchedule {
    let cfg = CoreConfig::banked(nthreads);
    let opts = RunOptions {
        fabric,
        verify: false,
        record_oracle: true,
        oracle: OracleSchedule::default(),
    };
    run_single(cfg, workload, &opts).oracle
}

/// Convenience: run an exact-context prefetching core, recording the oracle
/// first.
pub fn run_prefetch_exact(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
) -> RunResult {
    let oracle = record_oracle(workload, nthreads, fabric);
    let cfg = CoreConfig::prefetch_exact(nthreads, regs_per_thread);
    let opts = RunOptions {
        fabric,
        oracle,
        ..RunOptions::default()
    };
    run_single(cfg, workload, &opts)
}

/// Sanity marker so downstream code can assert which engine a config is.
pub fn engine_label(cfg: &CoreConfig) -> &'static str {
    match cfg.engine {
        EngineKind::ViReC => "virec",
        EngineKind::Banked => "banked",
        EngineKind::Software => "software",
        EngineKind::PrefetchFull => "prefetch_full",
        EngineKind::PrefetchExact => "prefetch_exact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::{kernels, Layout};

    #[test]
    fn banked_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(r.cycles > 0);
        assert!(r.stats.instructions > 256 * 5);
    }

    #[test]
    fn virec_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default());
        assert!(r.stats.rf_misses > 0);
    }

    #[test]
    fn oracle_recording_produces_quanta() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let o = record_oracle(&w, 4, FabricConfig::default());
        assert_eq!(o.sets.len(), 4);
        assert!(
            o.sets.iter().any(|s| s.len() > 1),
            "multiple quanta expected"
        );
    }

    #[test]
    fn prefetch_exact_runs_with_recorded_oracle() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_prefetch_exact(4, 8, &w, FabricConfig::default());
        assert!(r.cycles > 0);
    }

    #[test]
    fn multithreading_beats_single_thread_on_gather() {
        // The core premise: TLP hides memory latency.
        let w = kernels::spatter::gather(1024, Layout::for_core(0));
        let one = run_single(CoreConfig::banked(1), &w, &RunOptions::default());
        let four = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(
            four.cycles * 2 < one.cycles * 3,
            "4 threads ({}) should clearly beat 1 thread ({})",
            four.cycles,
            one.cycles
        );
    }
}
