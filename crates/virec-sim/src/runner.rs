//! Single-core experiment runner.
//!
//! [`try_run_single`] is the fallible core: it drives the cycle loop with a
//! forward-progress watchdog, applies any scheduled [`FaultPlan`], and
//! verifies the final architectural state against the golden interpreter,
//! returning a typed [`SimError`] instead of panicking. [`run_single`] is
//! the thin panicking wrapper the examples and figure binaries use.

use crate::cancel::{GateTrip, RunGate};
use crate::ecc::{
    secded_decode, secded_encode, EccStats, ProtectionConfig, ProtectionLevel, SecDedOutcome,
};
use crate::error::{DivergenceSite, RunDiagnostics, SimError};
use crate::fault::{engine_fault_of, FaultEvent, FaultPlan, FaultSite};
use crate::offload::offload;
use crate::ras::{CeTracker, RasConfig, RasStats, RetiredRegion, Scrubber};
use crate::watchdog::{Watchdog, DEFAULT_LIVELOCK_CYCLES};
use std::collections::{HashMap, VecDeque};
use virec_core::engines::ROLLBACK_DEPTH;
use virec_core::{Core, CoreConfig, CoreStats, EngineKind, OracleSchedule, QuantumTrace};
use virec_isa::{ExecOutcome, FlatMem, Interpreter, Reg, ThreadCtx};
use virec_mem::{Fabric, FabricConfig, FabricStats, LinkRetireOutcome, RetireOutcome};
use virec_workloads::{layout, Workload};

/// Default architectural-checkpoint spacing: the rollback depth (the
/// backend's in-flight window, §5.1) times a nominal 256-cycle scheduling
/// quantum — deep enough that checkpointing stays off the critical path,
/// shallow enough that replay after a detected-uncorrectable fault is a
/// small fraction of a run.
pub fn default_checkpoint_interval() -> u64 {
    ROLLBACK_DEPTH as u64 * 256
}

/// Options for a single-core run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Fabric (crossbar + DRAM) configuration.
    pub fabric: FabricConfig,
    /// Check final architectural state against the golden interpreter
    /// (cheap insurance; on by default).
    pub verify: bool,
    /// Record per-quantum register sets (for the prefetch oracle).
    pub record_oracle: bool,
    /// Oracle to feed an exact-context prefetching core.
    pub oracle: OracleSchedule,
    /// Watchdog threshold: cycles without a commit before the run is
    /// declared livelocked (0 disables the watchdog).
    pub livelock_cycles: u64,
    /// Scheduled fault injections (empty for ordinary runs).
    pub faults: FaultPlan,
    /// Per-site protection levels the fault events are routed through
    /// before they corrupt anything (default: everything unprotected, the
    /// pre-ECC behavior).
    pub protection: ProtectionConfig,
    /// Architectural-checkpoint spacing in cycles; 0 disables
    /// checkpointing (the default — ordinary runs pay nothing). See
    /// [`default_checkpoint_interval`] for the campaign default.
    pub checkpoint_interval: u64,
    /// Depth of the in-memory checkpoint ring (ignored when
    /// checkpointing is disabled).
    pub checkpoint_depth: usize,
    /// Wall-clock deadline / cooperative-cancellation gate; the default
    /// never trips. The step loop polls it cheaply and degrades to a
    /// typed [`SimError::Deadline`] when it fires.
    pub gate: RunGate,
    /// Force the dense cycle-by-cycle loop instead of event-driven cycle
    /// skipping. Both loops produce byte-identical stats and digests; the
    /// dense loop exists as a differential reference and escape hatch
    /// (also reachable via the `VIREC_NO_SKIP=1` environment variable).
    pub dense_loop: bool,
    /// RAS layer (patrol scrubber, CE tracker, spare pools) for surviving
    /// persistent faults. `None` (the default) leaves the machine exactly
    /// as before this layer existed; persistent faults then end in a
    /// bounded typed [`SimError::Uncorrectable`] after two failed
    /// checkpoint replays instead of a retirement.
    pub ras: Option<RasConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fabric: FabricConfig::default(),
            verify: true,
            record_oracle: false,
            oracle: OracleSchedule::default(),
            livelock_cycles: DEFAULT_LIVELOCK_CYCLES,
            faults: FaultPlan::empty(),
            protection: ProtectionConfig::none(),
            checkpoint_interval: 0,
            checkpoint_depth: 4,
            gate: RunGate::unbounded(),
            dense_loop: false,
            ras: None,
        }
    }
}

/// True when event-driven cycle skipping is disabled, either per-run
/// ([`RunOptions::dense_loop`]) or process-wide (`VIREC_NO_SKIP=1`).
pub(crate) fn dense_requested(opt_dense: bool) -> bool {
    opt_dense || std::env::var_os("VIREC_NO_SKIP").is_some_and(|v| v == "1")
}

/// Builds the typed error for a tripped gate from a live core snapshot.
pub(crate) fn deadline_error(trip: GateTrip, workload: &str, core: &Core, cycles: u64) -> SimError {
    SimError::Deadline {
        elapsed_ms: trip.elapsed_ms,
        limit_ms: trip.limit_ms,
        diag: RunDiagnostics::capture(workload, core, cycles),
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total cycles until every thread halted.
    pub cycles: u64,
    /// Core statistics (caches folded in).
    pub stats: CoreStats,
    /// Recorded oracle (empty unless requested).
    pub oracle: OracleSchedule,
    /// Descriptions of the injected faults that actually landed.
    pub faults_applied: Vec<String>,
    /// FNV digest of the final architectural state (all thread registers
    /// plus the data segment) — used by fault campaigns to distinguish
    /// masked faults from silent corruptions.
    pub arch_digest: u64,
    /// Protection-model and checkpoint/replay counters (all zero unless
    /// the run carried a fault plan with protection or checkpointing on).
    pub ecc: EccStats,
    /// Wall-clock nanoseconds spent snapshotting into the checkpoint ring
    /// (zero when checkpointing is off). Non-deterministic by nature, so it
    /// is reported but never journaled or folded into digests.
    pub checkpoint_clone_ns: u64,
    /// RAS-layer counters (all zero unless [`RunOptions::ras`] was set and
    /// the layer did something).
    pub ras: RasStats,
    /// Fabric counters: per-port read/write attribution plus, under a mesh
    /// topology, NoC hop/CRC/retransmission/retirement counts.
    pub fabric: FabricStats,
}

impl RunResult {
    /// Instructions per cycle — the paper's primary performance metric.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Fallible single-core run: returns a typed error instead of panicking.
///
/// The cycle loop distinguishes *livelock* (no commit for
/// [`RunOptions::livelock_cycles`] — the machine is wedged, reported with a
/// full pipeline/engine/MSHR dump) from a *slow run* (commits still landing
/// when `CoreConfig::max_cycles` runs out — a budget problem). If the
/// options carry a [`FaultPlan`], events are applied at their scheduled
/// cycles and any subsequent failure is wrapped in
/// [`SimError::FaultDetected`] so campaign drivers can attribute it.
pub fn try_run_single(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<RunResult, SimError> {
    try_run_single_impl(cfg, workload, opts, false).map(|(r, _)| r)
}

/// [`try_run_single`] plus a per-quantum trace: start/resume PCs, the
/// decode-acquired use and read-before-written demand masks, and the
/// engine's resident/committed live-bit samples at each switch-out. Used by
/// `virec-verify` to cross-check the timing model against static liveness.
/// `RunResult` itself is unchanged (it round-trips through the sweep
/// journal codec), so the trace rides alongside.
pub fn try_run_single_traced(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<(RunResult, QuantumTrace), SimError> {
    try_run_single_impl(cfg, workload, opts, true)
}

fn try_run_single_impl(
    cfg: CoreConfig,
    workload: &Workload,
    opts: &RunOptions,
    want_trace: bool,
) -> Result<(RunResult, QuantumTrace), SimError> {
    // The RAS layer provisions its spare CAM ways at core construction:
    // they are physically present (priced by virec-area) but masked until
    // a retirement activates one.
    let mut cfg = cfg;
    if let Some(rc) = &opts.ras {
        if cfg.engine == EngineKind::ViReC {
            cfg.spare_ways = rc.spare_ways as usize;
        }
    }
    let mut mem = FlatMem::new(
        0,
        layout::mem_size(1).max((workload.layout.data_base + workload.layout.data_size) as usize),
    );
    let region = offload(&mut mem, workload, cfg.nthreads);

    let mut core = Core::with_oracle(
        cfg,
        workload.program().clone(),
        region,
        workload.layout.code_base,
        (0, 1),
        opts.oracle.clone(),
    );
    if opts.record_oracle {
        core.enable_quantum_recording();
    }
    if want_trace {
        core.enable_quantum_trace();
    }

    let mut fabric = Fabric::new(opts.fabric);
    let mut watchdog = Watchdog::new(opts.livelock_cycles);
    let mut pending: Vec<FaultEvent> = opts.faults.events.clone();
    let mut faults_applied: Vec<String> = Vec::new();
    let mut ecc = EccStats::default();
    let mut checkpoints: VecDeque<Checkpoint> = VecDeque::new();
    let ckpt_interval = opts.checkpoint_interval;
    let ckpt_depth = opts.checkpoint_depth.max(1);

    // RAS state lives *outside* the checkpoint ring: a physical repair
    // (a masked way, a remapped row) survives an architectural rollback.
    // Restores clone the machine from the ring, so the retirement log is
    // replayed onto every restored clone.
    let mut ras = RasStats::default();
    let mut tracker = CeTracker::new(
        opts.ras.map_or(1, |rc| rc.ce_threshold),
        opts.ras.map_or(0, |rc| rc.ce_leak_interval),
    );
    let mut scrubber = opts.ras.and_then(|rc| {
        (rc.scrub_interval > 0).then(|| {
            Scrubber::new(vec![
                (region.base, region.size()),
                (workload.layout.data_base, workload.layout.data_size),
            ])
        })
    });
    let mut retired_log: Vec<RetiredRegion> = Vec::new();
    let mut retired_families: Vec<(FaultSite, u64)> = Vec::new();
    let mut due_restores: HashMap<(FaultSite, u64), u32> = HashMap::new();
    if let Some(rc) = &opts.ras {
        fabric.provision_spare_rows(rc.spare_rows);
    }
    let wrap = |e: SimError, applied: &[String]| -> SimError {
        if applied.is_empty() {
            e
        } else {
            let diag = Box::new(e.diagnostics().clone());
            SimError::FaultDetected {
                faults: applied.to_vec(),
                cause: Box::new(e),
                diag,
            }
        }
    };

    // Check the gate once up front so a pre-cancelled run (e.g. a SIGINT
    // abort that lands between cells) trips deterministically even when
    // the workload would finish in under one poll interval.
    if let Some(trip) = opts.gate.trip() {
        return Err(wrap(
            deadline_error(trip, workload.name, &core, 0),
            &faults_applied,
        ));
    }

    let dense = dense_requested(opts.dense_loop);
    let mut next_poll = 0u64;
    let mut checkpoint_clone_ns = 0u64;

    let mut now = 0u64;
    while !core.done() {
        if let Some(trip) = opts.gate.poll_due(now, &mut next_poll) {
            return Err(wrap(
                deadline_error(trip, workload.name, &core, now),
                &faults_applied,
            ));
        }
        if ckpt_interval > 0 && now.is_multiple_of(ckpt_interval) {
            let snap_start = std::time::Instant::now();
            if checkpoints.len() == ckpt_depth {
                // Swap-and-overwrite: recycle the evicted ring slot's heap
                // buffers (memory image, cache arrays, queues) instead of
                // reallocating a full deep copy for every snapshot. Only
                // the boxed engine is necessarily a fresh allocation.
                let mut slot = checkpoints.pop_front().expect("ring is non-empty at depth");
                slot.cycle = now;
                slot.core.clone_from(&core);
                slot.fabric.clone_from(&fabric);
                slot.mem.clone_from(&mem);
                slot.pending.clone_from(&pending);
                slot.faults_applied.clone_from(&faults_applied);
                slot.ecc = ecc;
                checkpoints.push_back(slot);
            } else {
                checkpoints.push_back(Checkpoint {
                    cycle: now,
                    core: core.clone(),
                    fabric: fabric.clone(),
                    mem: mem.clone(),
                    pending: pending.clone(),
                    faults_applied: faults_applied.clone(),
                    ecc,
                });
            }
            checkpoint_clone_ns += snap_start.elapsed().as_nanos() as u64;
            ecc.checkpoints_taken += 1;
        }
        if let (Some(rc), Some(sc)) = (&opts.ras, scrubber.as_mut()) {
            if now.is_multiple_of(rc.scrub_interval) {
                if let Some(addr) = sc.next_line() {
                    // Patrol read: a real fabric request that occupies the
                    // target bank like demand traffic — scrubbing is not
                    // free bandwidth.
                    fabric.submit_scrub(now, addr);
                    ras.scrub_reads += 1;
                    // Patrol detection: a persistent defect whose cells
                    // sit in the line just scrubbed registers a
                    // correctable error with the CE tracker before demand
                    // traffic trips over it.
                    let line = addr & !(virec_mem::LINE_BYTES - 1);
                    let mut hits: Vec<(FaultEvent, u64)> = Vec::new();
                    for ev in &pending {
                        if ev.class.is_persistent()
                            && matches!(ev.site, FaultSite::BackingReg | FaultSite::DramLine)
                        {
                            if let Some((waddr, _)) =
                                word_target(ev, &core, &fabric, &mem, workload)
                            {
                                if waddr & !(virec_mem::LINE_BYTES - 1) == line {
                                    hits.push((*ev, waddr));
                                }
                            }
                        }
                    }
                    let mut seen: Vec<(FaultSite, u64)> = Vec::new();
                    for (ev, waddr) in hits {
                        let fam = ev.family();
                        if seen.contains(&fam) || retired_families.contains(&fam) {
                            continue;
                        }
                        seen.push(fam);
                        ras.ce_observations += 1;
                        let key = fabric.row_key(waddr);
                        if tracker.observe(key, now) {
                            tracker.clear(key);
                            ras.predictive_retirements += 1;
                            ras_retire_family(
                                &ev,
                                Some(waddr),
                                &mut core,
                                &mut fabric,
                                &mut mem,
                                now,
                                &mut ras,
                                &mut retired_log,
                                &mut faults_applied,
                            );
                            retired_families.push(fam);
                            pending.retain(|e| e.family() != fam);
                        }
                    }
                }
            }
        }
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);

        if let Some(detail) = core.structural_fault() {
            let e = SimError::StructuralHazard {
                detail: detail.to_string(),
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }
        // NoC watchdog: a flit past its age cap or out of retransmission
        // budget means the interconnect can no longer guarantee delivery —
        // a structural hazard, not a hang.
        if let Some(detail) = fabric.noc_fault().map(str::to_string) {
            let e = SimError::StructuralHazard {
                detail,
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }

        if !pending.is_empty() {
            // Collect every event due this cycle, then group the ones that
            // hit the same word of the same site — that is a multi-bit
            // upset, and the protection model must see it whole (a
            // double-bit flip is one DUE, not two correctable singles).
            let mut due: Vec<FaultEvent> = Vec::new();
            let mut i = 0;
            while i < pending.len() {
                if pending[i].cycle <= now {
                    let ev = pending.swap_remove(i);
                    if retired_families.contains(&ev.family()) {
                        // The region is out of service — its cells are no
                        // longer wired to anything. The assertion is
                        // dropped and the family is not re-armed.
                        ras.suppressed_assertions += 1;
                        continue;
                    }
                    // Persistent classes re-assert: schedule the next
                    // firing up front so the skip loop's pending-fault cap
                    // covers it like any scheduled event.
                    if let Some((period, next)) = ev.class.rearm() {
                        pending.push(FaultEvent {
                            cycle: now + period,
                            class: next,
                            ..ev
                        });
                    }
                    due.push(ev);
                } else {
                    i += 1;
                }
            }
            let mut groups: Vec<Vec<FaultEvent>> = Vec::new();
            for ev in due {
                match groups
                    .iter_mut()
                    .find(|g| g[0].site == ev.site && g[0].index == ev.index)
                {
                    Some(g) => g.push(ev),
                    None => groups.push(vec![ev]),
                }
            }
            let mut suppress: Vec<FaultEvent> = Vec::new();
            let mut detected_desc = String::new();
            for group in &groups {
                if group[0].site == FaultSite::NocLink {
                    // Link upsets never reach the word-protection model:
                    // the per-hop CRC detects the corrupted flit in transit
                    // and the nack/retransmit protocol delivers a clean
                    // copy, so the upset is corrected at the link layer.
                    // Persistent defects charge the link's CE leaky bucket
                    // toward predictive retirement (route-around) or, when
                    // no route would survive, degraded fencing.
                    for ev in group {
                        let Some(link) = fabric.inject_link_fault(ev.index) else {
                            // Crossbar topology, or the link is already out
                            // of service: nothing left to corrupt.
                            continue;
                        };
                        ecc.corrected += 1;
                        faults_applied.push(format!(
                            "cycle {now}: noc link {link} upset (crc caught, retransmitted)"
                        ));
                        let fam = ev.family();
                        if opts.ras.is_some()
                            && ev.class.is_persistent()
                            && !retired_families.contains(&fam)
                        {
                            ras.ce_observations += 1;
                            let key = (1u64 << 62) | link as u64;
                            if tracker.observe(key, now) {
                                tracker.clear(key);
                                ras.predictive_retirements += 1;
                                match fabric
                                    .retire_link(link)
                                    .expect("mesh confirmed by inject_link_fault")
                                {
                                    LinkRetireOutcome::Rerouted => {
                                        faults_applied.push(format!(
                                            "cycle {now}: ras retired noc link {link} \
                                             (rerouted)"
                                        ));
                                    }
                                    LinkRetireOutcome::Fenced => {
                                        ras.degraded_regions += 1;
                                        faults_applied.push(format!(
                                            "cycle {now}: ras fenced noc link {link} \
                                             (half bandwidth, no surviving route)"
                                        ));
                                    }
                                }
                                retired_log.push(RetiredRegion::Link { link });
                                retired_families.push(fam);
                                pending.retain(|e| e.family() != fam);
                            }
                        }
                    }
                    continue;
                }
                let corrected_before = ecc.corrected;
                if let Protected::Uncorrectable(desc) = protect_apply_group(
                    group,
                    now,
                    &opts.protection,
                    &mut core,
                    &fabric,
                    &mut mem,
                    workload,
                    &mut ecc,
                    &mut faults_applied,
                ) {
                    suppress.extend_from_slice(group);
                    detected_desc = desc;
                }
                // Predictive sparing: every *corrected* assertion of a
                // persistent defect charges the region's leaky bucket; at
                // the threshold the region is retired before a second cell
                // failure can turn correctable into uncorrectable.
                if opts.ras.is_some()
                    && ecc.corrected > corrected_before
                    && group[0].class.is_persistent()
                {
                    let fam = group[0].family();
                    if !retired_families.contains(&fam) {
                        ras.ce_observations += 1;
                        let (key, waddr) = match group[0].site {
                            FaultSite::BackingReg
                            | FaultSite::DramLine
                            | FaultSite::FabricResponse => {
                                match word_target(&group[0], &core, &fabric, &mem, workload) {
                                    Some((a, _)) => (fabric.row_key(a), Some(a)),
                                    None => ((1 << 63) | group[0].index, None),
                                }
                            }
                            _ => ((1 << 63) | group[0].index, None),
                        };
                        if tracker.observe(key, now) {
                            tracker.clear(key);
                            ras.predictive_retirements += 1;
                            ras_retire_family(
                                &group[0],
                                waddr,
                                &mut core,
                                &mut fabric,
                                &mut mem,
                                now,
                                &mut ras,
                                &mut retired_log,
                                &mut faults_applied,
                            );
                            retired_families.push(fam);
                            pending.retain(|e| e.family() != fam);
                        }
                    }
                }
            }
            if !suppress.is_empty() {
                // Persistent faults cannot be outlived by replay alone —
                // the cells stay broken. Without the RAS layer the runner
                // bounds the retry loop: a defect family that trips a
                // second detected-uncorrectable after a restore fails the
                // run with a typed error instead of replaying forever.
                if opts.ras.is_none() {
                    for fam in suppress
                        .iter()
                        .filter(|e| e.class.is_persistent())
                        .map(FaultEvent::family)
                    {
                        let c = due_restores.entry(fam).or_insert(0);
                        *c += 1;
                        if *c >= 2 {
                            let e = SimError::Uncorrectable {
                                site: fam.0.to_string(),
                                detail: format!(
                                    "persistent fault at {} index {} re-asserted after a \
                                     checkpoint replay; no RAS layer to retire the region",
                                    fam.0, fam.1
                                ),
                                diag: RunDiagnostics::capture(workload.name, &core, now),
                            };
                            return Err(wrap(e, &faults_applied));
                        }
                    }
                }
                match checkpoints.back() {
                    Some(ck) => {
                        // Mid-run recovery: rewind to the newest checkpoint
                        // (snapshotted before this cycle's injection) and
                        // replay with the detected fault suppressed.
                        let detect_cycle = now;
                        core = ck.core.clone();
                        fabric = ck.fabric.clone();
                        mem = ck.mem.clone();
                        pending = ck.pending.clone();
                        faults_applied = ck.faults_applied.clone();
                        now = ck.cycle;
                        // Transient members of the detected group are
                        // suppressed for the replay; persistent members
                        // stay armed — only a retirement (below) or the
                        // bounded-restore tripwire above removes them.
                        pending.retain(|e| !suppress.contains(e) || e.class.is_persistent());
                        // Physical repairs survive the rollback: replay the
                        // retirement log onto the restored clone. Stats are
                        // not recounted, and spare numbering re-applies in
                        // log order, hence deterministically.
                        for r in &retired_log {
                            match *r {
                                RetiredRegion::Way { idx, spared } => {
                                    core.remask_way(idx, spared, &mut fabric, &mut mem);
                                }
                                RetiredRegion::Row { addr, .. } => {
                                    fabric.retire_row(addr);
                                }
                                RetiredRegion::Link { link } => {
                                    // Re-decides rerouted-vs-fenced on the
                                    // restored fabric; log order makes the
                                    // outcome deterministic.
                                    let _ = fabric.retire_link(link);
                                }
                            }
                        }
                        // Demand retirement: with RAS on, a detected
                        // uncorrectable in a persistent region retires it
                        // on the restored machine, so the replay cannot
                        // trip over the same defect again.
                        if opts.ras.is_some() {
                            let mut fams: Vec<FaultEvent> = Vec::new();
                            for ev in suppress.iter().filter(|e| e.class.is_persistent()) {
                                if !retired_families.contains(&ev.family())
                                    && !fams.iter().any(|f| f.family() == ev.family())
                                {
                                    fams.push(*ev);
                                }
                            }
                            for ev in fams {
                                let waddr = word_target(&ev, &core, &fabric, &mem, workload)
                                    .map(|(a, _)| a);
                                ras.demand_retirements += 1;
                                ras_retire_family(
                                    &ev,
                                    waddr,
                                    &mut core,
                                    &mut fabric,
                                    &mut mem,
                                    now,
                                    &mut ras,
                                    &mut retired_log,
                                    &mut faults_applied,
                                );
                                retired_families.push(ev.family());
                            }
                            pending.retain(|e| !retired_families.contains(&e.family()));
                        }
                        // Correction/escape counters rewind with the state
                        // (re-fired events in the replay window re-count);
                        // the cumulative recovery counters carry forward.
                        let (taken, restores, replay) =
                            (ecc.checkpoints_taken, ecc.restores, ecc.replay_cycles);
                        ecc = ck.ecc;
                        ecc.checkpoints_taken = taken;
                        ecc.detected_uncorrectable += 1;
                        ecc.restores = restores + 1;
                        ecc.replay_cycles = replay + (detect_cycle - ck.cycle);
                        faults_applied.push(format!(
                            "{detected_desc}; restored checkpoint @ cycle {} (replaying {} cycles)",
                            ck.cycle,
                            detect_cycle - ck.cycle
                        ));
                        watchdog = Watchdog::new(opts.livelock_cycles);
                        // The poll schedule rewinds with the clock so the
                        // replay window stays responsive to cancellation.
                        next_poll = now;
                        continue;
                    }
                    None => {
                        let e = SimError::Uncorrectable {
                            site: suppress[0].site.to_string(),
                            detail: detected_desc,
                            diag: RunDiagnostics::capture(workload.name, &core, now),
                        };
                        return Err(wrap(e, &faults_applied));
                    }
                }
            }
        }

        now += 1;
        if let Err(stalled) = watchdog.observe(now, core.stats().instructions) {
            let e = SimError::Livelock {
                stalled_cycles: stalled,
                dump: core.debug_dump(),
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }
        if now >= cfg.max_cycles {
            let e = SimError::CycleBudgetExceeded {
                budget: cfg.max_cycles,
                diag: RunDiagnostics::capture(workload.name, &core, now),
            };
            return Err(wrap(e, &faults_applied));
        }

        // Event-driven fast-forward (tentpole of the wakeup-scheduled core):
        // the cycle just ticked was `now - 1`; if no component can do
        // anything before `wake`, every tick in `[now, wake)` is provably a
        // no-op and the clock jumps there directly, crediting the span to
        // the same stall counters the dense loop would have bumped. Wakeups
        // are capped so scheduled faults, checkpoints, the watchdog's firing
        // observation, and the cycle budget all land on exactly the cycles
        // the dense loop gives them.
        if !dense && !core.done() {
            let ticked = now - 1;
            // On a productive cycle the core's answer is exactly `now`
            // (its fast path); bail before paying for the fabric scan and
            // the cap arithmetic.
            let core_next = core.next_event(ticked, &fabric);
            if core_next == Some(now) {
                continue;
            }
            let mut wake = [core_next, fabric.next_event(ticked)]
                .into_iter()
                .flatten()
                .min()
                .unwrap_or(u64::MAX);
            if let Some(deadline) = watchdog.deadline() {
                // Tick deadline-1; the observation at `deadline` then
                // reports a stall of exactly the threshold, as dense does.
                wake = wake.min(deadline - 1);
            }
            wake = wake.min(cfg.max_cycles - 1);
            for ev in &pending {
                wake = wake.min(ev.cycle);
            }
            if ckpt_interval > 0 {
                wake = wake.min(now.next_multiple_of(ckpt_interval));
            }
            if let Some(rc) = &opts.ras {
                // Scrub wakeups are scheduled events like checkpoints:
                // the clock must land on every patrol cycle.
                if scrubber.is_some() {
                    wake = wake.min(now.next_multiple_of(rc.scrub_interval));
                }
            }
            if wake > now {
                core.credit_skipped(wake - now);
                now = wake;
            }
        }
    }
    core.finalize_stats();
    core.drain(&mut mem);

    let arch_digest = arch_digest(&core, &mem, workload, cfg.nthreads);

    if opts.verify {
        if let Err(e) = try_verify_against_golden(workload, cfg.nthreads, &core, &mem, now) {
            return Err(wrap(e, &faults_applied));
        }
    }

    let oracle = core.take_oracle();
    let trace = core.take_quantum_trace();
    Ok((
        RunResult {
            cycles: now,
            stats: *core.stats(),
            oracle,
            faults_applied,
            arch_digest,
            ecc,
            checkpoint_clone_ns,
            ras,
            fabric: *fabric.stats(),
        },
        trace,
    ))
}

/// One entry of the in-memory checkpoint ring: a full deep copy of the
/// machine (core, fabric, functional memory) plus the injection bookkeeping
/// needed to replay deterministically from this cycle.
struct Checkpoint {
    cycle: u64,
    core: Core,
    fabric: Fabric,
    mem: FlatMem,
    pending: Vec<FaultEvent>,
    faults_applied: Vec<String>,
    ecc: EccStats,
}

/// What the protection model decided about one fault group.
enum Protected {
    /// Absorbed (corrected / not applicable) or applied (pass-through,
    /// parity escape); the run continues.
    Continue,
    /// Detected but uncorrectable: the machine was *not* corrupted (the
    /// detection is precise), and the runner must either restore a
    /// checkpoint or fail with [`SimError::Uncorrectable`].
    Uncorrectable(String),
}

/// Takes the physical region behind one persistent fault family out of
/// service: masks a VRMU way (activating a spare when provisioned) or
/// retires a DRAM row through the remap table (consuming a spare row or
/// fencing onto the shared remnant row). Regions without retirable cells —
/// control state, transport, a banked engine's register cells — are fenced
/// logically: the family is dropped and the loss is accounted as degraded
/// capacity. Migration of a retired row's data is modeled as real
/// scrub-read traffic through the fabric.
#[allow(clippy::too_many_arguments)]
fn ras_retire_family(
    ev: &FaultEvent,
    word_addr: Option<u64>,
    core: &mut Core,
    fabric: &mut Fabric,
    mem: &mut FlatMem,
    now: u64,
    ras: &mut RasStats,
    retired_log: &mut Vec<RetiredRegion>,
    applied: &mut Vec<String>,
) {
    match ev.site {
        FaultSite::TagValue => match core.retire_value_way(ev.index, true, fabric, mem) {
            Some(w) => {
                if !w.spared {
                    ras.degraded_regions += 1;
                }
                applied.push(format!("cycle {now}: ras {}", w.desc));
                retired_log.push(RetiredRegion::Way {
                    idx: w.idx,
                    spared: w.spared,
                });
            }
            None => {
                // No maskable way (banked engine) or the store is at its
                // in-flight floor: fence the family logically and run on
                // with the capacity loss.
                ras.degraded_regions += 1;
                applied.push(format!(
                    "cycle {now}: ras fenced unmaskable way family index {}",
                    ev.index
                ));
            }
        },
        FaultSite::BackingReg | FaultSite::DramLine | FaultSite::FabricResponse
            if word_addr.is_some() =>
        {
            let addr = word_addr.expect("guarded by match arm");
            let outcome = fabric.retire_row(addr);
            let spared = matches!(outcome, RetireOutcome::Spared { .. });
            if !spared {
                ras.degraded_regions += 1;
            }
            // Data migration: the row's live lines are copied to the
            // replacement row through the fabric — repair bandwidth is
            // real bandwidth, so it contends with demand traffic.
            let lines = fabric.config().dram.lines_per_row.min(32);
            let base = addr & !(virec_mem::LINE_BYTES - 1);
            for i in 0..lines {
                fabric.submit_scrub(now, base + i * virec_mem::LINE_BYTES);
            }
            ras.migrated_lines += lines;
            applied.push(format!(
                "cycle {now}: ras retired row behind {addr:#x} ({})",
                if spared { "spared" } else { "fenced" }
            ));
            retired_log.push(RetiredRegion::Row { addr, spared });
        }
        _ => {
            ras.degraded_regions += 1;
            applied.push(format!(
                "cycle {now}: ras fenced non-retirable site {} index {}",
                ev.site, ev.index
            ));
        }
    }
}

/// Routes one fault group (same cycle, same site, same word) through the
/// coverage map and applies whatever the modeled hardware lets through.
#[allow(clippy::too_many_arguments)]
fn protect_apply_group(
    group: &[FaultEvent],
    now: u64,
    protection: &ProtectionConfig,
    core: &mut Core,
    fabric: &Fabric,
    mem: &mut FlatMem,
    workload: &Workload,
    ecc: &mut EccStats,
    applied: &mut Vec<String>,
) -> Protected {
    let site = group[0].site;
    let level = protection.level(site);
    if level == ProtectionLevel::None {
        for ev in group {
            if let Some(desc) = apply_fault(ev, core, fabric, mem, workload) {
                if !protection.is_none() {
                    ecc.unprotected += 1;
                }
                applied.push(format!("cycle {now}: {desc}"));
            }
        }
        return Protected::Continue;
    }
    match site {
        FaultSite::TagValue | FaultSite::RollbackSlot => {
            // Probe applicability on a deep copy so detected or corrected
            // flips never touch the real machine — the check bits caught
            // them before any consumer read the entry.
            let mut probe = core.clone();
            let landed: Vec<String> = group
                .iter()
                .filter_map(engine_fault_of)
                .filter_map(|f| probe.inject_fault(f))
                .collect();
            let n = landed.len();
            if n == 0 {
                return Protected::Continue; // structure empty: nothing to protect
            }
            match level {
                ProtectionLevel::Parity if n % 2 == 1 => {
                    ecc.detected_uncorrectable += 1;
                    let desc = format!(
                        "cycle {now}: parity detected {} ({})",
                        site,
                        landed.join("; ")
                    );
                    applied.push(desc.clone());
                    Protected::Uncorrectable(desc)
                }
                ProtectionLevel::Parity => {
                    // Even-weight flip: the parity bit is blind to it. The
                    // corruption goes through for real and the differential
                    // checker is the only remaining net.
                    for f in group.iter().filter_map(engine_fault_of) {
                        core.inject_fault(f);
                    }
                    ecc.parity_escapes += 1;
                    applied.push(format!(
                        "cycle {now}: parity escape {} ({})",
                        site,
                        landed.join("; ")
                    ));
                    Protected::Continue
                }
                ProtectionLevel::SecDed if n == 1 => {
                    ecc.corrected += 1;
                    applied.push(format!(
                        "cycle {now}: secded corrected {} ({})",
                        site, landed[0]
                    ));
                    Protected::Continue
                }
                ProtectionLevel::SecDed if n == 2 => {
                    ecc.detected_uncorrectable += 1;
                    let desc = format!(
                        "cycle {now}: secded detected double-bit {} ({})",
                        site,
                        landed.join("; ")
                    );
                    applied.push(desc.clone());
                    Protected::Uncorrectable(desc)
                }
                _ => {
                    // ≥ 3 simultaneous flips: beyond the SEC-DED guarantee;
                    // modeled as raw pass-through.
                    for f in group.iter().filter_map(engine_fault_of) {
                        core.inject_fault(f);
                    }
                    ecc.unprotected += n as u64;
                    applied.push(format!("cycle {now}: {} flips passed {}", n, site));
                    Protected::Continue
                }
            }
        }
        FaultSite::StuckFill => unreachable!("stuck-fill is never protected"),
        FaultSite::NocLink => unreachable!("link upsets are handled at the link layer"),
        FaultSite::BackingReg | FaultSite::DramLine | FaultSite::FabricResponse => {
            let Some((addr, base)) = word_target(&group[0], core, fabric, mem, workload) else {
                return Protected::Continue; // target out of range / no in-flight request
            };
            let mask: u64 = group.iter().fold(0, |m, ev| m ^ (1u64 << (ev.bit % 64)));
            if mask == 0 {
                return Protected::Continue; // flips cancelled each other
            }
            let word = mem.read_u64(addr);
            match level {
                ProtectionLevel::Parity if mask.count_ones() % 2 == 1 => {
                    ecc.detected_uncorrectable += 1;
                    let desc = format!("cycle {now}: parity detected {base} mask {mask:#x}");
                    applied.push(desc.clone());
                    Protected::Uncorrectable(desc)
                }
                ProtectionLevel::Parity => {
                    mem.write_u64(addr, word ^ mask);
                    ecc.parity_escapes += 1;
                    applied.push(format!("cycle {now}: parity escape {base} mask {mask:#x}"));
                    Protected::Continue
                }
                ProtectionLevel::SecDed if mask.count_ones() > 2 => {
                    mem.write_u64(addr, word ^ mask);
                    ecc.unprotected += group.len() as u64;
                    applied.push(format!(
                        "cycle {now}: {} flips passed {base} mask {mask:#x}",
                        mask.count_ones()
                    ));
                    Protected::Continue
                }
                ProtectionLevel::SecDed => {
                    // Run the real codec against the real word so the model
                    // is grounded in the (72,64) code, not a flip count.
                    let check = secded_encode(word);
                    match secded_decode(word ^ mask, check) {
                        SecDedOutcome::CorrectedData(orig) => {
                            debug_assert_eq!(orig, word, "SEC-DED must restore the stored word");
                            ecc.corrected += 1;
                            applied.push(format!(
                                "cycle {now}: secded corrected {base} bit {}",
                                mask.trailing_zeros()
                            ));
                            Protected::Continue
                        }
                        SecDedOutcome::DoubleError => {
                            ecc.detected_uncorrectable += 1;
                            let desc = format!(
                                "cycle {now}: secded detected double-bit {base} mask {mask:#x}"
                            );
                            applied.push(desc.clone());
                            Protected::Uncorrectable(desc)
                        }
                        SecDedOutcome::Clean | SecDedOutcome::CorrectedCheck => Protected::Continue,
                    }
                }
                ProtectionLevel::None => unreachable!("handled above"),
            }
        }
    }
}

/// Runs `workload` on a single core with `nthreads` hardware threads.
///
/// ```
/// use virec_core::CoreConfig;
/// use virec_sim::runner::{run_single, RunOptions};
/// use virec_workloads::{kernels, Layout};
///
/// let w = kernels::stream::reduction(256, Layout::for_core(0));
/// let r = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
/// assert!(r.ipc() > 0.0);
/// assert!(r.stats.instructions > 256);
/// ```
///
/// # Panics
/// Panics with the [`SimError`] display if the run exceeds the configured
/// cycle limit, livelocks, or (with `verify`) diverges from the golden
/// interpreter. Use [`try_run_single`] to handle failures structurally.
pub fn run_single(cfg: CoreConfig, workload: &Workload, opts: &RunOptions) -> RunResult {
    try_run_single(cfg, workload, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Resolves a word-site fault event to the memory word it targets. Returns
/// `(address, description)` or `None` when the target is out of range (or,
/// for `FabricResponse`, when no request is in flight).
fn word_target(
    event: &FaultEvent,
    core: &Core,
    fabric: &Fabric,
    mem: &FlatMem,
    workload: &Workload,
) -> Option<(u64, String)> {
    let mem_end = mem.size() as u64;
    match event.site {
        FaultSite::BackingReg => {
            let nthreads = core.config().nthreads as u64;
            let t = (event.index % nthreads) as usize;
            let r = Reg::new(((event.index / nthreads) % 31) as u8);
            let addr = core.region().reg_addr(t, r);
            (addr + 8 <= mem_end).then(|| (addr, format!("backing-store t{t} {r}")))
        }
        FaultSite::DramLine => {
            let words = (workload.layout.data_size / 8).max(1);
            let addr = workload.layout.data_base + (event.index % words) * 8;
            (addr + 8 <= mem_end).then(|| (addr, format!("dram word {addr:#x}")))
        }
        FaultSite::FabricResponse => {
            let addr = fabric.inflight_addr(event.index as usize)?;
            let line = addr & !63;
            let word = line + (event.bit as u64 % 8) * 8;
            (word + 8 <= mem_end).then(|| {
                (
                    word,
                    format!("fabric response line {line:#x} word {}", event.bit % 8),
                )
            })
        }
        _ => None,
    }
}

/// Applies one fault event to the live machine with no protection in the
/// way. Returns a description when the fault landed, `None` when the
/// targeted structure had nothing to corrupt (e.g. a VRMU site on a banked
/// engine, or no in-flight request).
fn apply_fault(
    event: &FaultEvent,
    core: &mut Core,
    fabric: &Fabric,
    mem: &mut FlatMem,
    workload: &Workload,
) -> Option<String> {
    match event.site {
        FaultSite::TagValue | FaultSite::RollbackSlot | FaultSite::StuckFill => {
            core.inject_fault(engine_fault_of(event)?)
        }
        FaultSite::BackingReg | FaultSite::DramLine | FaultSite::FabricResponse => {
            let (addr, base) = word_target(event, core, fabric, mem, workload)?;
            let v = mem.read_u64(addr);
            mem.write_u64(addr, v ^ (1u64 << (event.bit % 64)));
            Some(format!("{base} bit {}", event.bit % 64))
        }
        // Link upsets are consumed by the CRC/retransmission path in the
        // run loop, never applied raw (the flit payload is timing-only).
        FaultSite::NocLink => None,
    }
}

/// Incremental FNV-1a over the architectural-state byte stream: thread
/// registers in `(thread, allocatable reg)` order, then the data segment.
/// Shared by the timing-side and golden-side digests so the two are
/// directly comparable.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn eat_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.eat(b);
        }
    }

    fn eat_data_segment(&mut self, mem: &FlatMem, workload: &Workload) {
        let data_lo = workload.layout.data_base as usize;
        let data_hi =
            (workload.layout.data_base + workload.layout.data_size).min(mem.size() as u64) as usize;
        for &b in &mem.bytes()[data_lo..data_hi] {
            self.eat(b);
        }
    }
}

/// FNV-1a digest of a finished core's architectural state: every
/// allocatable register of every thread, then the data segment bytes.
/// Used by fault campaigns to distinguish masked faults from silent
/// corruptions, and by the serve layer's per-task cross-check.
pub fn arch_digest(core: &Core, mem: &FlatMem, workload: &Workload, nthreads: usize) -> u64 {
    let mut h = Fnv::new();
    for t in 0..nthreads {
        for r in Reg::allocatable() {
            h.eat_u64(core.arch_reg(t, r, mem));
        }
    }
    h.eat_data_segment(mem, workload);
    h.0
}

/// The [`arch_digest`] a fault-free run of `workload` must produce,
/// computed from a fresh golden-interpreter execution — the reference the
/// serve layer compares completed tasks against without re-running the
/// timing model. Fails with [`SimError::GoldenRunStuck`] if a thread does
/// not halt within `step_cap` interpreter steps.
pub fn golden_arch_digest(
    workload: &Workload,
    nthreads: usize,
    step_cap: u64,
) -> Result<u64, SimError> {
    let mem_size =
        layout::mem_size(1).max((workload.layout.data_base + workload.layout.data_size) as usize);
    let mut gold_mem = FlatMem::new(0, mem_size);
    workload.init_mem(&mut gold_mem);
    let mut ctxs = Vec::with_capacity(nthreads);
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in workload.thread_ctx(t, nthreads) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(workload.program(), &mut gold_mem).run(&mut ctx, step_cap);
        if !matches!(out, ExecOutcome::Halted { .. }) {
            return Err(SimError::GoldenRunStuck {
                thread: t,
                step_cap,
                diag: RunDiagnostics::placeholder(workload.name),
            });
        }
        ctxs.push(ctx);
    }
    let mut h = Fnv::new();
    for ctx in &ctxs {
        for r in Reg::allocatable() {
            h.eat_u64(ctx.get(r));
        }
    }
    h.eat_data_segment(&gold_mem, workload);
    Ok(h.0)
}

/// Step cap for the golden interpreter, derived from the timing run's
/// actual committed-instruction count (with generous slack) instead of a
/// hard-coded constant — a workload that legitimately needs more steps
/// cannot be misreported, and a wedged golden run is detected at a cap
/// proportional to the work actually done.
fn golden_step_cap(committed_instructions: u64) -> u64 {
    committed_instructions
        .saturating_mul(4)
        .saturating_add(100_000)
}

/// Fallible form of [`verify_against_golden`]: compares a finished core's
/// architectural state (registers and data segment) against a fresh
/// golden-interpreter run of the same workload.
pub fn try_verify_against_golden(
    workload: &Workload,
    nthreads: usize,
    core: &Core,
    mem: &FlatMem,
    cycles: u64,
) -> Result<(), SimError> {
    let diag = || RunDiagnostics::capture(workload.name, core, cycles);
    let step_cap = golden_step_cap(core.stats().instructions);
    let mut gold_mem = FlatMem::new(0, mem.size());
    workload.init_mem(&mut gold_mem);
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in workload.thread_ctx(t, nthreads) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(workload.program(), &mut gold_mem).run(&mut ctx, step_cap);
        if !matches!(out, ExecOutcome::Halted { .. }) {
            return Err(SimError::GoldenRunStuck {
                thread: t,
                step_cap,
                diag: diag(),
            });
        }
        for r in Reg::allocatable() {
            let got = core.arch_reg(t, r, mem);
            let want = ctx.get(r);
            if got != want {
                return Err(SimError::GoldenDivergence {
                    site: DivergenceSite::Register {
                        thread: t,
                        reg: r,
                        got,
                        want,
                    },
                    diag: diag(),
                });
            }
        }
    }
    let data_lo = workload.layout.data_base as usize;
    let data_hi =
        (workload.layout.data_base + workload.layout.data_size).min(mem.size() as u64) as usize;
    let got = &mem.bytes()[data_lo..data_hi];
    let want = &gold_mem.bytes()[data_lo..data_hi];
    if got != want {
        let first_mismatch = got
            .iter()
            .zip(want)
            .position(|(a, b)| a != b)
            .map_or(data_lo, |off| data_lo + off);
        return Err(SimError::GoldenDivergence {
            site: DivergenceSite::DataRange {
                lo: data_lo,
                hi: data_hi,
                first_mismatch,
            },
            diag: diag(),
        });
    }
    Ok(())
}

/// Compares a finished core's architectural state (registers and data
/// segment) against a fresh golden-interpreter run of the same workload.
///
/// # Panics
/// Panics on any divergence — a timing model must never change results.
/// Use [`try_verify_against_golden`] to handle divergence structurally.
pub fn verify_against_golden(workload: &Workload, nthreads: usize, core: &Core, mem: &FlatMem) {
    try_verify_against_golden(workload, nthreads, core, mem, core.stats().cycles)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible oracle recording: runs the workload on a banked core with the
/// same thread count under `gate`, returning the recorded schedule.
pub fn try_record_oracle(
    workload: &Workload,
    nthreads: usize,
    fabric: FabricConfig,
    gate: &RunGate,
) -> Result<OracleSchedule, SimError> {
    let cfg = CoreConfig::banked(nthreads);
    let opts = RunOptions {
        fabric,
        verify: false,
        record_oracle: true,
        gate: gate.clone(),
        ..RunOptions::default()
    };
    try_run_single(cfg, workload, &opts).map(|r| r.oracle)
}

/// Records the per-quantum oracle by running the workload on a banked core
/// with the same thread count (the recording substrate for §6.1's exact
/// prefetching comparison).
pub fn record_oracle(workload: &Workload, nthreads: usize, fabric: FabricConfig) -> OracleSchedule {
    try_record_oracle(workload, nthreads, fabric, &RunGate::unbounded())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: run an exact-context prefetching core, recording the oracle
/// first.
pub fn run_prefetch_exact(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
) -> RunResult {
    let oracle = record_oracle(workload, nthreads, fabric);
    let cfg = CoreConfig::prefetch_exact(nthreads, regs_per_thread);
    let opts = RunOptions {
        fabric,
        oracle,
        ..RunOptions::default()
    };
    run_single(cfg, workload, &opts)
}

/// Fallible form of [`run_prefetch_exact`].
pub fn try_run_prefetch_exact(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
) -> Result<RunResult, SimError> {
    try_run_prefetch_exact_gated(
        nthreads,
        regs_per_thread,
        workload,
        fabric,
        &RunGate::unbounded(),
    )
}

/// [`try_run_prefetch_exact`] under a cancellation gate. The same gate —
/// and therefore the same wall-clock deadline — spans both the oracle
/// recording and the replay phase, so the cell's total time is bounded.
pub fn try_run_prefetch_exact_gated(
    nthreads: usize,
    regs_per_thread: usize,
    workload: &Workload,
    fabric: FabricConfig,
    gate: &RunGate,
) -> Result<RunResult, SimError> {
    let oracle = try_record_oracle(workload, nthreads, fabric, gate)?;
    let cfg = CoreConfig::prefetch_exact(nthreads, regs_per_thread);
    let opts = RunOptions {
        fabric,
        oracle,
        gate: gate.clone(),
        ..RunOptions::default()
    };
    try_run_single(cfg, workload, &opts)
}

/// Sanity marker so downstream code can assert which engine a config is.
pub fn engine_label(cfg: &CoreConfig) -> &'static str {
    match cfg.engine {
        EngineKind::ViReC => "virec",
        EngineKind::Banked => "banked",
        EngineKind::Software => "software",
        EngineKind::PrefetchFull => "prefetch_full",
        EngineKind::PrefetchExact => "prefetch_exact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::{kernels, Layout};

    #[test]
    fn banked_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(r.cycles > 0);
        assert!(r.stats.instructions > 256 * 5);
    }

    #[test]
    fn virec_gather_runs_and_verifies() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default());
        assert!(r.stats.rf_misses > 0);
    }

    #[test]
    fn oracle_recording_produces_quanta() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let o = record_oracle(&w, 4, FabricConfig::default());
        assert_eq!(o.sets.len(), 4);
        assert!(
            o.sets.iter().any(|s| s.len() > 1),
            "multiple quanta expected"
        );
    }

    #[test]
    fn prefetch_exact_runs_with_recorded_oracle() {
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let r = run_prefetch_exact(4, 8, &w, FabricConfig::default());
        assert!(r.cycles > 0);
    }

    #[test]
    fn multithreading_beats_single_thread_on_gather() {
        // The core premise: TLP hides memory latency.
        let w = kernels::spatter::gather(1024, Layout::for_core(0));
        let one = run_single(CoreConfig::banked(1), &w, &RunOptions::default());
        let four = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        assert!(
            four.cycles * 2 < one.cycles * 3,
            "4 threads ({}) should clearly beat 1 thread ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn budget_exhaustion_is_typed_not_a_panic() {
        let w = kernels::spatter::gather(512, Layout::for_core(0));
        let mut cfg = CoreConfig::virec(4, 32);
        cfg.max_cycles = 2_000; // far too small for 512 elements
        let err = try_run_single(cfg, &w, &RunOptions::default()).unwrap_err();
        match &err {
            SimError::CycleBudgetExceeded { budget, diag } => {
                assert_eq!(*budget, 2_000);
                assert_eq!(diag.nthreads, 4);
                assert_eq!(diag.last_commit_pc.len(), 4);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        assert_eq!(err.kind(), "cycle_budget");
    }

    #[test]
    fn cancelled_gate_surfaces_as_typed_deadline() {
        use crate::cancel::CancelToken;
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let token = CancelToken::new();
        token.cancel();
        let opts = RunOptions {
            gate: RunGate::new(token, 0),
            ..RunOptions::default()
        };
        let err = try_run_single(CoreConfig::virec(4, 32), &w, &opts).unwrap_err();
        match &err {
            SimError::Deadline { limit_ms, .. } => assert_eq!(*limit_ms, 0),
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert_eq!(err.kind(), "deadline");
        assert!(!err.deadline_expired(), "a cancellation is not an expiry");
    }

    #[test]
    fn expired_deadline_stops_a_long_run() {
        // A deadline that has already passed when the loop starts polling:
        // the run must stop at the first poll with an expired trip.
        let w = kernels::spatter::gather(4096, Layout::for_core(0));
        let gate = RunGate::new(crate::cancel::CancelToken::new(), 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let opts = RunOptions {
            gate,
            ..RunOptions::default()
        };
        let err = try_run_single(CoreConfig::virec(4, 32), &w, &opts).unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(err.deadline_expired());
    }

    #[test]
    fn identical_runs_have_identical_digests() {
        let w = kernels::stream::stream_triad(128, Layout::for_core(0));
        let a = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
        let b = run_single(CoreConfig::virec(4, 24), &w, &RunOptions::default());
        assert_eq!(a.arch_digest, b.arch_digest, "runs are deterministic");
        // A different kernel must not collide.
        let w2 = kernels::stream::reduction(128, Layout::for_core(0));
        let c = run_single(CoreConfig::virec(4, 24), &w2, &RunOptions::default());
        assert_ne!(a.arch_digest, c.arch_digest);
    }

    #[test]
    fn golden_digest_matches_a_clean_run() {
        // The golden-side digest hashes the same byte stream as the
        // timing-side one, so a verified run must reproduce it exactly.
        let w = kernels::spatter::gather(128, Layout::for_core(0));
        let r = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        let g = golden_arch_digest(&w, 4, 1_000_000).expect("golden halts");
        assert_eq!(r.arch_digest, g);
        // And at a non-zero core slot (the serve layer's failover path).
        let w1 = kernels::stream::reduction(128, Layout::for_core(1));
        let g1 = golden_arch_digest(&w1, 4, 1_000_000).expect("golden halts");
        assert_ne!(g, g1, "different slots/kernels must not collide");
    }

    #[test]
    fn engines_agree_on_arch_digest() {
        // The digest is over architectural state, so every engine that
        // verifies against the same golden model must produce the same one.
        let w = kernels::spatter::gather(256, Layout::for_core(0));
        let banked = run_single(CoreConfig::banked(4), &w, &RunOptions::default());
        let virec = run_single(CoreConfig::virec(4, 32), &w, &RunOptions::default());
        assert_eq!(banked.arch_digest, virec.arch_digest);
    }
}
