//! The host-side offload mechanism (§6).
//!
//! Workloads originate on a host processor and are dispatched to near-data
//! processors by shipping each thread's register context through the
//! crossbar into a reserved region of memory next to the target core. The
//! near-memory processor then fetches contexts from that region when the
//! threads are first scheduled. Functionally this is a set of writes into
//! the region; the timing cost on the near-memory side (the fills) is
//! modelled by the context engines.

use virec_core::RegRegion;
use virec_isa::FlatMem;
use virec_workloads::Workload;

/// Writes the initial data segment and all thread contexts for `workload`
/// into memory, and returns the core's register region.
pub fn offload(mem: &mut FlatMem, workload: &Workload, nthreads: usize) -> RegRegion {
    let region = RegRegion::new(workload.layout.region_base, nthreads);
    workload.init_mem(mem);
    for tid in 0..nthreads {
        for (reg, value) in workload.thread_ctx(tid, nthreads) {
            mem.write_u64(region.reg_addr(tid, reg), value);
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::{kernels, Layout};

    #[test]
    fn offload_writes_contexts() {
        let layout = Layout::for_core(0);
        let w = kernels::spatter::gather(64, layout);
        let mut mem = FlatMem::new(0, virec_workloads::layout::mem_size(1));
        let region = offload(&mut mem, &w, 4);
        // Every thread's loop bound must be in its context slot.
        for t in 0..4 {
            let bound_addr = region.reg_addr(t, virec_isa::reg::names::X4);
            assert_eq!(mem.read_u64(bound_addr), 64);
        }
    }
}
