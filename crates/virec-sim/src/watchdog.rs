//! Forward-progress watchdog.
//!
//! Distinguishes two very different failure modes that the old runner
//! collapsed into one "exceeded N cycles" panic:
//!
//! * **livelock** — no instruction has committed for a long window. The
//!   machine is wedged (a lost fill, a scheduling cycle, a stuck MSHR) and
//!   burning more cycles will not help. Detected by [`Watchdog::observe`].
//! * **slow run** — instructions are still committing but the cycle budget
//!   ran out. That is a budget problem, not a correctness problem, and is
//!   reported separately (and retried with a bigger budget by the bench
//!   harness).

/// Cycles without a single committed instruction before the run is declared
/// livelocked. The deepest legitimate commit gaps in this simulator — a
/// cold-start context fetch behind a DRAM queue full of other cores'
/// traffic — are tens of thousands of cycles; a million is three orders of
/// magnitude of slack while still firing long before a 10⁸–10⁹ cycle budget.
pub const DEFAULT_LIVELOCK_CYCLES: u64 = 1_000_000;

/// Tracks committed-instruction counts and flags commit droughts.
#[derive(Clone, Debug)]
pub struct Watchdog {
    threshold: u64,
    last_progress_cycle: u64,
    last_committed: u64,
}

impl Watchdog {
    /// Creates a watchdog that fires after `threshold` cycles without a
    /// commit. A threshold of 0 disables the watchdog.
    pub fn new(threshold: u64) -> Watchdog {
        Watchdog {
            threshold,
            last_progress_cycle: 0,
            last_committed: 0,
        }
    }

    /// The earliest observation cycle at which the watchdog would fire if
    /// no further instruction commits (`None` when disabled). Event-driven
    /// loops must not fast-forward past `deadline() - 1`: the fatal
    /// observation then happens at exactly this cycle with a stall count of
    /// exactly `threshold`, byte-identical to the dense loop. A skipped
    /// span counts as the single observation at its wake cycle — it neither
    /// trips the watchdog early (no observation mid-span reports a partial
    /// drought) nor extends the threshold (the deadline cap guarantees the
    /// firing observation is never jumped over).
    pub fn deadline(&self) -> Option<u64> {
        (self.threshold > 0).then(|| self.last_progress_cycle + self.threshold)
    }

    /// Feeds one cycle's progress. `committed` is the monotonically
    /// non-decreasing total of committed instructions. Returns
    /// `Err(stalled_cycles)` once the commit drought reaches the threshold.
    pub fn observe(&mut self, now: u64, committed: u64) -> Result<(), u64> {
        if committed != self.last_committed {
            self.last_committed = committed;
            self.last_progress_cycle = now;
            return Ok(());
        }
        if self.threshold == 0 {
            return Ok(());
        }
        let stalled = now.saturating_sub(self.last_progress_cycle);
        if stalled >= self.threshold {
            Err(stalled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_resets_the_clock() {
        let mut w = Watchdog::new(10);
        for now in 0..100 {
            // Commit every 5 cycles: never fires.
            w.observe(now, now / 5).unwrap();
        }
    }

    #[test]
    fn drought_fires_at_threshold() {
        let mut w = Watchdog::new(10);
        w.observe(0, 1).unwrap();
        for now in 1..10 {
            w.observe(now, 1).unwrap();
        }
        assert_eq!(w.observe(10, 1), Err(10));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut w = Watchdog::new(0);
        for now in 0..10_000 {
            w.observe(now, 0).unwrap();
        }
        assert_eq!(w.deadline(), None);
    }

    #[test]
    fn deadline_tracks_progress() {
        let mut w = Watchdog::new(10);
        assert_eq!(w.deadline(), Some(10));
        w.observe(3, 1).unwrap();
        assert_eq!(w.deadline(), Some(13), "progress pushes the deadline out");
        w.observe(7, 1).unwrap();
        assert_eq!(w.deadline(), Some(13), "droughts do not move it");
    }

    #[test]
    fn skip_to_deadline_fires_exactly_like_dense() {
        // A fast-forwarded span observed once at the capped wake cycle
        // reports the same stall count as dense per-cycle observation.
        let mut dense = Watchdog::new(10);
        dense.observe(0, 1).unwrap();
        let mut fired = None;
        for now in 1..=20 {
            if let Err(stalled) = dense.observe(now, 1) {
                fired = Some((now, stalled));
                break;
            }
        }
        let mut skip = Watchdog::new(10);
        skip.observe(0, 1).unwrap();
        let wake = skip.deadline().unwrap();
        assert_eq!(skip.observe(wake, 1), Err(10));
        assert_eq!(fired, Some((wake, 10)));
    }
}
