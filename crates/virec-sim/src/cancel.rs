//! Cooperative cancellation and wall-clock deadlines.
//!
//! Long sweeps need two things the cycle-accurate watchdogs cannot give
//! them: a bound on *wall-clock* time per cell (a cell that is merely slow
//! in real time, not livelocked in simulated time, must still degrade to a
//! structured row) and a way for the process to stop cleanly on SIGINT /
//! SIGTERM without losing completed work.
//!
//! * [`CancelToken`] — a shareable atomic flag. Setting it is async-signal
//!   safe, so the interrupt handler can flip it directly.
//! * [`RunGate`] — a per-cell gate combining a token with an optional
//!   wall-clock deadline. Simulation step loops call [`RunGate::poll`]
//!   every cycle; the gate only consults the clock every
//!   [`GATE_POLL_CYCLES`] cycles, so the check is free in the hot loop.
//! * [`interrupt_tokens`] — installs the process-wide SIGINT/SIGTERM
//!   handler (once) and returns the `(drain, abort)` token pair: the first
//!   signal sets *drain* (workers finish their current cell and claim no
//!   more), a second sets *abort* (in-flight cells are cancelled through
//!   their gates as well).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Cycles between full gate checks in the simulation step loops. A check
/// reads one atomic and (if a deadline is set) the monotonic clock; at
/// 8192-cycle granularity the overhead is unmeasurable while a deadline
/// still trips within microseconds of real time.
pub const GATE_POLL_CYCLES: u64 = 8192;

/// A shareable cancellation flag. Cloning shares the flag; any clone can
/// cancel, every clone observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Sets the flag. Idempotent and async-signal safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Why a gate tripped.
#[derive(Clone, Copy, Debug)]
pub struct GateTrip {
    /// Wall-clock milliseconds since the gate was created.
    pub elapsed_ms: u64,
    /// The configured deadline in milliseconds (0 if none was set).
    pub limit_ms: u64,
    /// True when the wall-clock deadline expired; false when the token was
    /// cancelled externally (SIGINT abort).
    pub expired: bool,
}

/// A per-run cancellation gate: an externally cancellable token plus an
/// optional wall-clock deadline whose clock starts when the gate is built.
#[derive(Clone, Debug)]
pub struct RunGate {
    token: CancelToken,
    start: Instant,
    limit: Option<Duration>,
}

impl Default for RunGate {
    fn default() -> Self {
        RunGate::unbounded()
    }
}

impl RunGate {
    /// A gate with the given token and a deadline of `limit_ms`
    /// milliseconds (0 disables the deadline). The clock starts now.
    pub fn new(token: CancelToken, limit_ms: u64) -> RunGate {
        RunGate {
            token,
            start: Instant::now(),
            limit: (limit_ms > 0).then(|| Duration::from_millis(limit_ms)),
        }
    }

    /// A gate that never trips on its own (fresh token, no deadline).
    pub fn unbounded() -> RunGate {
        RunGate::new(CancelToken::new(), 0)
    }

    /// The gate's token (cancel it to trip the gate from outside).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The configured deadline in milliseconds (0 if none).
    pub fn limit_ms(&self) -> u64 {
        self.limit.map_or(0, |d| d.as_millis() as u64)
    }

    /// Wall-clock milliseconds since the gate was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Full check: `Some` once the token is cancelled or the deadline has
    /// expired.
    pub fn trip(&self) -> Option<GateTrip> {
        if self.token.is_cancelled() {
            return Some(GateTrip {
                elapsed_ms: self.elapsed_ms(),
                limit_ms: self.limit_ms(),
                expired: false,
            });
        }
        match self.limit {
            Some(limit) if self.start.elapsed() >= limit => Some(GateTrip {
                elapsed_ms: self.elapsed_ms(),
                limit_ms: self.limit_ms(),
                expired: true,
            }),
            _ => None,
        }
    }

    /// Cheap periodic check for step loops: performs [`RunGate::trip`]
    /// only when `cycle` is a multiple of [`GATE_POLL_CYCLES`].
    pub fn poll(&self, cycle: u64) -> Option<GateTrip> {
        if !cycle.is_multiple_of(GATE_POLL_CYCLES) {
            return None;
        }
        self.trip()
    }

    /// Schedule-based variant of [`RunGate::poll`] for event-driven loops
    /// that may fast-forward the cycle counter: checks once `cycle` reaches
    /// `*next` and advances the schedule. Starting from `next = 0` this
    /// reproduces the dense cadence (0, 8192, …) exactly while guaranteeing
    /// a skipped span cannot starve cancellation — the first iteration at
    /// or past a due poll always performs the check.
    pub fn poll_due(&self, cycle: u64, next: &mut u64) -> Option<GateTrip> {
        if cycle < *next {
            return None;
        }
        *next = cycle + GATE_POLL_CYCLES;
        self.trip()
    }
}

struct InterruptState {
    drain: CancelToken,
    abort: CancelToken,
    hits: AtomicUsize,
}

static INTERRUPT: OnceLock<InterruptState> = OnceLock::new();

extern "C" fn on_signal(_signum: i32) {
    // Only atomics: the handler must stay async-signal safe.
    if let Some(s) = INTERRUPT.get() {
        if s.hits.fetch_add(1, Ordering::SeqCst) == 0 {
            s.drain.cancel();
        } else {
            s.drain.cancel();
            s.abort.cancel();
        }
    }
}

#[cfg(unix)]
fn install_handler() {
    // `signal(2)` from the already-linked C library; no crate dependency.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_handler() {}

/// Installs the SIGINT/SIGTERM handler (once per process) and returns the
/// `(drain, abort)` token pair: the first signal cancels *drain* — workers
/// finish their current cell, the journal is flushed, no new cells start —
/// and any further signal also cancels *abort*, which trips every
/// in-flight cell's [`RunGate`].
pub fn interrupt_tokens() -> (CancelToken, CancelToken) {
    let s = INTERRUPT.get_or_init(|| {
        install_handler();
        InterruptState {
            drain: CancelToken::new(),
            abort: CancelToken::new(),
            hits: AtomicUsize::new(0),
        }
    });
    (s.drain.clone(), s.abort.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn unbounded_gate_never_trips() {
        let g = RunGate::unbounded();
        assert!(g.trip().is_none());
        assert_eq!(g.limit_ms(), 0);
    }

    #[test]
    fn cancelled_token_trips_immediately() {
        let t = CancelToken::new();
        t.cancel();
        let g = RunGate::new(t, 0);
        let trip = g.trip().expect("cancelled token must trip");
        assert!(!trip.expired);
        assert_eq!(trip.limit_ms, 0);
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let g = RunGate::new(CancelToken::new(), 1);
        std::thread::sleep(Duration::from_millis(10));
        let trip = g.trip().expect("1 ms deadline must expire");
        assert!(trip.expired);
        assert_eq!(trip.limit_ms, 1);
        assert!(trip.elapsed_ms >= 1);
    }

    #[test]
    fn poll_only_checks_on_the_mask() {
        let t = CancelToken::new();
        t.cancel();
        let g = RunGate::new(t, 0);
        assert!(g.poll(1).is_none(), "off-mask cycles are free");
        assert!(g.poll(GATE_POLL_CYCLES).is_some());
        assert!(g.poll(0).is_some(), "cycle 0 is checked");
    }
}
