#![warn(missing_docs)]

//! # virec-sim
//!
//! Full-system simulation: one or more near-memory cores attached to the
//! shared crossbar/DRAM fabric, the task-level offload mechanism that ships
//! thread contexts to each core's reserved region (§6), and the experiment
//! runner used by every figure reproduction.
//!
//! * [`offload`] — the host side: writes initial register contexts into the
//!   reserved region of memory, the image ViReC's fills read on first
//!   schedule.
//! * [`runner`] — single-core experiments with optional golden verification
//!   and oracle recording for exact-context prefetching.
//! * [`system`] — multi-core systems sharing the fabric (Figure 11).
//! * [`experiment`] — the declarative experiment layer: keyed cell grids
//!   ([`ExperimentSpec`]) executed by a worker-pool [`Executor`] with
//!   deterministic collection and JSON result emission.
//! * [`report`] — plain-text table/CSV emission for the figure binaries.
//! * [`error`] — typed simulation errors ([`SimError`]) with per-run
//!   diagnostics; every runner has a `try_` form returning `Result`.
//! * [`watchdog`] — forward-progress monitoring that separates livelock
//!   from slow runs.
//! * [`fault`] — deterministic seeded fault injection and campaign
//!   classification against the golden checker.
//! * [`ecc`] — the SEC-DED/parity protection model: a (72,64) extended
//!   Hamming codec plus the per-site coverage map injected faults are
//!   routed through before they corrupt anything.
//! * [`cancel`] — cooperative cancellation tokens, per-cell wall-clock
//!   deadline gates, and the process-wide SIGINT/SIGTERM drain/abort pair.
//! * [`journal`] — the append-only, fsync'd cell journal behind
//!   crash-safe `--resume` sweeps.
//! * [`serve`] — the fault-tolerant streaming task service: a seeded
//!   arrival process dispatched through a bounded admission queue onto the
//!   multi-core offload path, with per-task deadlines, retry/backoff, core
//!   quarantine with failover, and typed load shedding under overload.

pub mod cancel;
pub mod ecc;
pub mod error;
pub mod experiment;
pub mod fault;
pub mod journal;
pub mod offload;
pub mod ras;
pub mod report;
pub mod runner;
pub mod serve;
pub mod system;
pub mod watchdog;

pub use cancel::{interrupt_tokens, CancelToken, GateTrip, RunGate};
pub use ecc::{EccStats, ProtectionConfig, ProtectionLevel};
pub use error::{DivergenceSite, RunDiagnostics, SimError};
pub use experiment::{
    builder, CellCtx, CellData, CellOutcome, CellResult, CellSpec, Executor, ExperimentResult,
    ExperimentSpec, Job, RetryPolicy, WorkloadBuilder,
};
pub use fault::{
    parse_sites, run_campaign, run_campaign_with, CampaignOptions, CampaignReport, FaultClass,
    FaultEvent, FaultPlan, FaultSite, InjectionOutcome, InjectionRecord,
};
pub use journal::JournalConfig;
pub use ras::{CeTracker, RasConfig, RasStats, RetiredRegion, Scrubber};
pub use runner::{
    arch_digest, golden_arch_digest, run_single, try_run_single, try_run_single_traced,
    try_verify_against_golden, verify_against_golden, RunOptions, RunResult,
};
pub use serve::{
    run_service, RejectReason, ServeConfig, ServeFaultPlan, ServeReport, TaskOutcome, TaskService,
};
pub use system::{System, SystemConfig, SystemConfigError, SystemResult};
pub use watchdog::{Watchdog, DEFAULT_LIVELOCK_CYCLES};
