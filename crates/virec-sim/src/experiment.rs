//! Declarative experiment layer: named grids of simulation cells executed
//! on a worker pool with deterministic collection.
//!
//! Every figure reproduction follows the same shape — build a grid of
//! `(workload, configuration)` cells, run each one, derive relative
//! performance and geomeans, print tables. This module factors that shape
//! into three pieces:
//!
//! * [`ExperimentSpec`] — a named list of keyed [`CellSpec`]s. Cells carry
//!   workload *constructors* (not pre-built [`Workload`]s), so every worker
//!   builds its own instance and the whole spec is `Send + Sync`.
//! * [`Executor`] — runs cells on a `std::thread` pool (`jobs` workers).
//!   Results are keyed and re-sorted into declaration order, so the output
//!   of a parallel run is byte-identical to a serial one.
//! * [`ExperimentResult`] — keyed access to per-cell outcomes, failure
//!   reporting, and machine-readable JSON emission for `results/`.
//!
//! A failing cell (budget exhaustion, livelock, divergence, even a panic)
//! degrades to a structured [`CellOutcome::Failed`] row without aborting
//! its siblings. Pure cycle-budget failures are retried with a relaxed
//! budget according to the spec's [`RetryPolicy`].
//!
//! Sweeps are additionally *crash-safe*: with a
//! [`JournalConfig`](crate::journal::JournalConfig) the executor appends
//! each finished cell to an fsync'd journal, replays it on `--resume`
//! (re-running only the remainder, byte-identical output), honours
//! per-cell wall-clock deadlines through each cell's
//! [`RunGate`](crate::cancel::RunGate), and drains cleanly when an
//! interrupt token fires.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cancel::{CancelToken, RunGate};
use crate::error::SimError;
use crate::journal::{self, JournalConfig};
use crate::runner::{try_run_prefetch_exact_gated, try_run_single, RunOptions, RunResult};
use crate::system::{System, SystemConfig, SystemResult};
use virec_core::CoreConfig;
use virec_mem::FabricConfig;
use virec_workloads::{Layout, Workload, WorkloadCtor};

/// A shareable workload constructor: each worker calls it to build its own
/// [`Workload`] instance, which keeps cells ownable per thread.
pub type WorkloadBuilder = Arc<dyn Fn() -> Workload + Send + Sync>;

/// Wraps a suite constructor into a [`WorkloadBuilder`] at a fixed problem
/// size and layout.
pub fn builder(ctor: WorkloadCtor, n: u64, layout: Layout) -> WorkloadBuilder {
    Arc::new(move || ctor(n, layout))
}

/// How budget failures are retried before a cell is declared failed: a
/// bounded geometric schedule. Attempt `k` runs with the budget scaled by
/// `budget_factor^k`, capped at `scale_cap`, for at most `max_retries`
/// re-runs; the schedule stops early once the cap is reached (another
/// attempt at the same budget cannot succeed).
///
/// The defaults reproduce the historical sweep behaviour: one retry with a
/// 4× relaxed `max_cycles`. Retries apply to [`Job::Single`] and
/// [`Job::System`] cells (the kinds whose budget the executor can scale);
/// prefetch-exact and custom cells fail on their first budget error.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum number of relaxed re-runs after cycle-budget failures.
    pub max_retries: u32,
    /// Budget multiplier applied on each retry (compounding).
    pub budget_factor: u64,
    /// Upper bound on the cumulative budget multiplier.
    pub scale_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 1,
            budget_factor: 4,
            scale_cap: 256,
        }
    }
}

impl RetryPolicy {
    /// No retries: every budget failure is immediately a failed row.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            budget_factor: 1,
            scale_cap: 1,
        }
    }

    /// The cumulative budget scale to try after an attempt at `scale`
    /// failed, or `None` when the schedule is exhausted (the cap is
    /// reached, or the factor is 1 and another attempt would re-run the
    /// identical budget).
    pub fn next_scale(&self, scale: u64) -> Option<u64> {
        let next = scale
            .saturating_mul(self.budget_factor.max(1))
            .min(self.scale_cap.max(1));
        (next > scale).then_some(next)
    }
}

/// What a cell runs. All variants are `Send + Sync`, so the executor can
/// hand any cell to any worker.
#[derive(Clone)]
pub enum Job {
    /// A fallible single-core run ([`try_run_single`]).
    Single {
        /// Builds the worker-local workload instance.
        build: WorkloadBuilder,
        /// Core configuration (its `max_cycles` is scaled on retries).
        cfg: CoreConfig,
        /// Run options (fabric, verification, faults, …).
        opts: RunOptions,
    },
    /// Oracle recording plus an exact-context prefetching run
    /// ([`try_run_prefetch_exact`]).
    PrefetchExact {
        /// Builds the worker-local workload instance.
        build: WorkloadBuilder,
        /// Hardware thread count.
        nthreads: usize,
        /// Physical registers per thread for the prefetch core.
        regs_per_thread: usize,
        /// Fabric configuration shared by recording and replay.
        fabric: FabricConfig,
    },
    /// A multi-core system run ([`System::try_run`]); every core runs
    /// `ctor(n, Layout::for_core(i))`.
    System {
        /// System (cores + fabric) configuration; the per-core
        /// `max_cycles` is scaled on retries.
        cfg: SystemConfig,
        /// Workload constructor (a plain `fn`, inherently `Send`).
        ctor: WorkloadCtor,
        /// Problem size per core.
        n: u64,
    },
    /// Anything else — area-model evaluations, compiled-kernel drives,
    /// campaign wrappers. Must be deterministic; budget retries do not
    /// apply. The closure receives the cell's [`CellCtx`] and should call
    /// [`CellCtx::check`] periodically if it can run long.
    Custom(Arc<CustomFn>),
}

/// The closure type behind [`Job::Custom`].
pub type CustomFn = dyn Fn(&CellCtx) -> Result<CellData, SimError> + Send + Sync;

/// Execution context handed to custom cells: the cell's key and its
/// cancellation gate.
pub struct CellCtx<'a> {
    /// The cell's key (labels deadline diagnostics).
    pub key: &'a str,
    /// The cell's wall-clock-deadline / cancellation gate.
    pub gate: &'a RunGate,
}

impl CellCtx<'_> {
    /// Cooperative cancellation point: returns a typed
    /// [`SimError::Deadline`] once the cell's gate has tripped. Cheap
    /// enough to call inside loops.
    pub fn check(&self) -> Result<(), SimError> {
        match self.gate.trip() {
            Some(trip) => Err(SimError::Deadline {
                elapsed_ms: trip.elapsed_ms,
                limit_ms: trip.limit_ms,
                diag: crate::error::RunDiagnostics::placeholder(self.key),
            }),
            None => Ok(()),
        }
    }
}

/// One keyed cell of an experiment grid.
#[derive(Clone)]
pub struct CellSpec {
    /// Unique, stable key (also the JSON row label and sort identity).
    pub key: String,
    /// What the cell runs.
    pub job: Job,
}

/// A named, declarative experiment: keys plus jobs, executed by an
/// [`Executor`].
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Experiment name (used for the JSON file name in `results/`).
    pub name: String,
    /// Budget-retry policy applied to every cell.
    pub retry: RetryPolicy,
    meta: Vec<(String, String)>,
    cells: Vec<CellSpec>,
    keys: HashMap<String, usize>,
}

impl ExperimentSpec {
    /// An empty spec with the default retry policy.
    pub fn new(name: &str) -> ExperimentSpec {
        ExperimentSpec {
            name: name.to_string(),
            retry: RetryPolicy::default(),
            meta: Vec::new(),
            cells: Vec::new(),
            keys: HashMap::new(),
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> ExperimentSpec {
        self.retry = retry;
        self
    }

    /// Records a provenance key/value pair — problem size, thread count,
    /// any knob that changes the numbers. Metadata is carried into the
    /// result JSON and into the journal fingerprint, so an archived file
    /// states the configuration it was produced under and a journal
    /// recorded at a different configuration is refused on resume.
    /// Setting an existing key replaces its value.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl ToString) {
        let key = key.into();
        let value = value.to_string();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// The recorded provenance metadata, in declaration order.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Adds a cell.
    ///
    /// # Panics
    /// Panics if `key` was already declared — keys are the identity that
    /// makes parallel collection deterministic, so duplicates are bugs.
    pub fn push(&mut self, key: impl Into<String>, job: Job) {
        let key = key.into();
        assert!(
            self.keys.insert(key.clone(), self.cells.len()).is_none(),
            "duplicate experiment cell key {key:?}"
        );
        self.cells.push(CellSpec { key, job });
    }

    /// Declares a single-core run cell.
    pub fn single(
        &mut self,
        key: impl Into<String>,
        build: WorkloadBuilder,
        cfg: CoreConfig,
        opts: &RunOptions,
    ) {
        self.push(
            key,
            Job::Single {
                build,
                cfg,
                opts: opts.clone(),
            },
        );
    }

    /// Declares an exact-context prefetching cell.
    pub fn prefetch_exact(
        &mut self,
        key: impl Into<String>,
        build: WorkloadBuilder,
        nthreads: usize,
        regs_per_thread: usize,
        fabric: FabricConfig,
    ) {
        self.push(
            key,
            Job::PrefetchExact {
                build,
                nthreads,
                regs_per_thread,
                fabric,
            },
        );
    }

    /// Declares a multi-core system cell.
    pub fn system(
        &mut self,
        key: impl Into<String>,
        cfg: SystemConfig,
        ctor: WorkloadCtor,
        n: u64,
    ) {
        self.push(key, Job::System { cfg, ctor, n });
    }

    /// Declares a custom cell.
    pub fn custom(
        &mut self,
        key: impl Into<String>,
        f: impl Fn(&CellCtx) -> Result<CellData, SimError> + Send + Sync + 'static,
    ) {
        self.push(key, Job::Custom(Arc::new(f)));
    }

    /// Number of declared cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been declared.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The declared cells, in order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }
}

/// The payload of a completed cell.
#[derive(Clone, Debug)]
pub enum CellData {
    /// A verified single-core run.
    Run(Box<RunResult>),
    /// A multi-core system run.
    System(Box<SystemResult>),
    /// Named numeric metrics (area models, derived measurements).
    Metrics(Vec<(String, f64)>),
    /// Named descriptive fields (configuration listings).
    Fields(Vec<(String, String)>),
}

impl CellData {
    /// Builds a metrics payload from `(name, value)` pairs.
    pub fn metrics<const N: usize>(pairs: [(&str, f64); N]) -> CellData {
        CellData::Metrics(pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect())
    }

    /// Builds a fields payload from `(name, value)` pairs.
    pub fn fields<const N: usize>(pairs: [(&str, String); N]) -> CellData {
        CellData::Fields(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    /// Total cycles, when the payload carries them (a run, a system run,
    /// or a metric literally named `cycles`).
    pub fn cycles(&self) -> Option<u64> {
        match self {
            CellData::Run(r) => Some(r.cycles),
            CellData::System(s) => Some(s.cycles),
            CellData::Metrics(_) => self.metric("cycles").map(|v| v as u64),
            CellData::Fields(_) => None,
        }
    }

    /// A named metric (for [`CellData::Metrics`] payloads).
    pub fn metric(&self, name: &str) -> Option<f64> {
        match self {
            CellData::Metrics(m) => m.iter().find(|(k, _)| k == name).map(|(_, v)| *v),
            _ => None,
        }
    }

    /// A named descriptive field (for [`CellData::Fields`] payloads).
    pub fn field(&self, name: &str) -> Option<&str> {
        match self {
            CellData::Fields(f) => f.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str()),
            _ => None,
        }
    }
}

/// Outcome of one cell: a payload or a structured failure row.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell completed.
    Ok(CellData),
    /// The cell failed; siblings are unaffected.
    Failed {
        /// Machine-readable kind (`cycle_budget`, `livelock`, …, `panic`).
        kind: &'static str,
        /// Full error line.
        error: String,
        /// True if the failure survived at least one relaxed budget retry.
        retried: bool,
    },
    /// The cell was never executed: the sweep drained (SIGINT, or a test
    /// interruption) before a worker claimed it. Skipped cells are not
    /// journaled, so a resumed run executes them.
    Skipped,
}

/// One collected result row.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's key, copied from the spec.
    pub key: String,
    /// What happened.
    pub outcome: CellOutcome,
}

impl CellResult {
    /// The payload if the cell completed.
    pub fn data(&self) -> Option<&CellData> {
        match &self.outcome {
            CellOutcome::Ok(d) => Some(d),
            CellOutcome::Failed { .. } | CellOutcome::Skipped => None,
        }
    }
}

/// Results of an executed experiment, in declaration order.
pub struct ExperimentResult {
    /// Experiment name (copied from the spec).
    pub name: String,
    /// Provenance metadata (copied from the spec).
    pub meta: Vec<(String, String)>,
    /// Per-cell results, in the spec's declaration order.
    pub cells: Vec<CellResult>,
    /// Worker count the run used.
    pub jobs: usize,
    /// True when the sweep drained before every cell ran (some cells are
    /// [`CellOutcome::Skipped`]); the final JSON should not be written and
    /// the journal is left in place for `--resume`.
    pub interrupted: bool,
    index: HashMap<String, usize>,
}

impl ExperimentResult {
    /// The result row for `key`.
    ///
    /// # Panics
    /// Panics on an undeclared key — a figure asking for a cell it never
    /// declared is a bug, not a runtime condition.
    pub fn cell(&self, key: &str) -> &CellResult {
        let i = *self
            .index
            .get(key)
            .unwrap_or_else(|| panic!("experiment {:?} has no cell {key:?}", self.name));
        &self.cells[i]
    }

    /// The payload of `key`, if it completed.
    pub fn data(&self, key: &str) -> Option<&CellData> {
        self.cell(key).data()
    }

    /// The single-core run result of `key`, if it completed with one.
    pub fn run(&self, key: &str) -> Option<&RunResult> {
        match self.data(key) {
            Some(CellData::Run(r)) => Some(r),
            _ => None,
        }
    }

    /// The system run result of `key`, if it completed with one.
    pub fn system(&self, key: &str) -> Option<&SystemResult> {
        match self.data(key) {
            Some(CellData::System(s)) => Some(s),
            _ => None,
        }
    }

    /// Cycles of `key`, if available.
    pub fn cycles(&self, key: &str) -> Option<u64> {
        self.data(key).and_then(CellData::cycles)
    }

    /// A named metric of `key`, if available.
    pub fn metric(&self, key: &str, name: &str) -> Option<f64> {
        self.data(key).and_then(|d| d.metric(name))
    }

    /// A named descriptive field of `key`, if available.
    pub fn field(&self, key: &str, name: &str) -> Option<&str> {
        self.data(key).and_then(|d| d.field(name))
    }

    /// `(key, formatted error)` for every failed cell, in declaration
    /// order.
    pub fn failures(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .filter_map(|c| match &c.outcome {
                CellOutcome::Failed {
                    kind,
                    error,
                    retried,
                } => {
                    let suffix = if *retried {
                        " (after budget retry)"
                    } else {
                        ""
                    };
                    Some((c.key.clone(), format!("[{kind}{suffix}] {error}")))
                }
                CellOutcome::Ok(_) | CellOutcome::Skipped => None,
            })
            .collect()
    }

    /// True if every cell completed successfully (none failed, none
    /// skipped by an interruption).
    pub fn all_ok(&self) -> bool {
        self.failed() == 0 && self.skipped() == 0
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Failed { .. }))
            .count()
    }

    /// Number of cells skipped by an interrupted (drained) sweep.
    pub fn skipped(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Skipped))
            .count()
    }

    /// Prints the failure rows (no-op when the sweep was clean).
    pub fn print_failures(&self) {
        let failures = self.failures();
        if failures.is_empty() {
            return;
        }
        println!("\n{} failed configuration(s):", failures.len());
        for (key, error) in &failures {
            println!("  {key}: {error}");
        }
    }

    /// Machine-readable JSON rows, in declaration order. Deliberately
    /// excludes wall-clock timing so a parallel run's output is
    /// byte-identical to a serial one.
    ///
    /// The header carries the spec's provenance metadata (problem size
    /// and friends, see [`ExperimentSpec::set_meta`]) plus the journal
    /// fingerprint over name, cell keys, and metadata — so a results
    /// file states what configuration produced it instead of being
    /// indistinguishable from a run at a different size.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.cells.len() + 64);
        out.push_str("{\n  \"experiment\": ");
        json_string(&mut out, &self.name);
        out.push_str(",\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            out.push_str(if i == 0 { "" } else { ", " });
            json_string(&mut out, k);
            out.push_str(": ");
            json_string(&mut out, v);
        }
        let fingerprint = journal::spec_fingerprint(
            &self.name,
            self.cells.iter().map(|c| c.key.as_str()),
            self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        );
        out.push_str(&format!(
            "}},\n  \"fingerprint\": \"{fingerprint:016x}\",\n  \"cells\": ["
        ));
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"key\": ");
            json_string(&mut out, &c.key);
            match &c.outcome {
                CellOutcome::Ok(d) => {
                    out.push_str(", \"status\": \"ok\"");
                    json_cell_data(&mut out, d);
                }
                CellOutcome::Failed {
                    kind,
                    error,
                    retried,
                } => {
                    out.push_str(", \"status\": \"failed\", \"error_kind\": ");
                    json_string(&mut out, kind);
                    out.push_str(&format!(", \"retried\": {retried}, \"error\": "));
                    // Keep only the structured first line; livelock dumps
                    // span pages and belong in stderr, not result rows.
                    json_string(&mut out, error.lines().next().unwrap_or(""));
                }
                CellOutcome::Skipped => out.push_str(", \"status\": \"skipped\""),
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`ExperimentResult::to_json`] to `<dir>/<name>.json`,
    /// creating the directory if needed. Returns the written path.
    ///
    /// The write is atomic (temp file, fsync, rename): a crash mid-write
    /// can never leave truncated JSON for a later resume to trip over.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let tmp = dir.join(format!(".tmp.{}.json", self.name));
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for JSON: finite shortest-roundtrip, non-finite as
/// null (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_cell_data(out: &mut String, d: &CellData) {
    match d {
        CellData::Run(r) => {
            out.push_str(&format!(
                ", \"cycles\": {}, \"instructions\": {}, \"ipc\": {}, \
                 \"context_switches\": {}, \"rf_hits\": {}, \"rf_misses\": {}, \
                 \"rf_hit_rate\": {}, \"arch_digest\": \"{:#018x}\"",
                r.cycles,
                r.stats.instructions,
                json_f64(r.ipc()),
                r.stats.context_switches,
                r.stats.rf_hits,
                r.stats.rf_misses,
                json_f64(r.stats.rf_hit_rate()),
                r.arch_digest,
            ));
        }
        CellData::System(s) => {
            out.push_str(&format!(
                ", \"cycles\": {}, \"ncores\": {}, \"total_ipc\": {}, \
                 \"mean_core_ipc\": {}, \"mean_queue_delay\": {}",
                s.cycles,
                s.per_core.len(),
                json_f64(s.total_ipc()),
                json_f64(s.mean_core_ipc()),
                json_f64(s.mean_queue_delay()),
            ));
        }
        CellData::Metrics(m) => {
            for (k, v) in m {
                out.push_str(", ");
                json_string(out, k);
                out.push_str(": ");
                out.push_str(&json_f64(*v));
            }
        }
        CellData::Fields(f) => {
            for (k, v) in f {
                out.push_str(", ");
                json_string(out, k);
                out.push_str(": ");
                json_string(out, v);
            }
        }
    }
}

/// Runs an [`ExperimentSpec`] on a pool of worker threads.
///
/// Cells are claimed from a shared queue and executed concurrently; each
/// result is stored at its cell's declaration index, so the collected
/// [`ExperimentResult`] — and everything rendered from it — is identical
/// for any worker count.
///
/// With [`Executor::run_journaled`] the pool is additionally crash-safe:
/// finished cells are appended to an fsync'd journal and replayed on
/// resume. [`Executor::with_interrupts`] wires in the SIGINT drain/abort
/// token pair and [`Executor::with_deadline_ms`] bounds each cell's
/// wall-clock time.
pub struct Executor {
    jobs: usize,
    drain: CancelToken,
    abort: CancelToken,
    deadline_ms: u64,
    gated: bool,
    interrupt_after: Option<usize>,
}

impl Executor {
    /// A pool with `jobs` workers (clamped to at least 1). `jobs == 1`
    /// executes inline on the calling thread, with no pool at all.
    pub fn new(jobs: usize) -> Executor {
        Executor {
            jobs: jobs.max(1),
            drain: CancelToken::new(),
            abort: CancelToken::new(),
            deadline_ms: 0,
            gated: false,
            interrupt_after: None,
        }
    }

    /// Installs a `(drain, abort)` cancellation pair — usually from
    /// [`crate::cancel::interrupt_tokens`]. Once `drain` cancels, workers
    /// finish their current cell and claim no more; `abort` additionally
    /// trips every in-flight cell's gate.
    pub fn with_interrupts(mut self, drain: CancelToken, abort: CancelToken) -> Executor {
        self.drain = drain;
        self.abort = abort;
        self.gated = true;
        self
    }

    /// Sets a per-cell wall-clock deadline in milliseconds (0 disables
    /// it). A cell past its deadline degrades to a structured `deadline`
    /// failure row; siblings are unaffected.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Executor {
        self.deadline_ms = deadline_ms;
        self.gated = self.gated || deadline_ms > 0;
        self
    }

    /// Deterministic interruption for tests and CI smoke runs: drain the
    /// sweep after `n` cells complete in this run, exactly as if SIGINT
    /// had arrived (fully deterministic with one worker).
    pub fn with_interrupt_after(mut self, n: usize) -> Executor {
        self.interrupt_after = Some(n);
        self
    }

    /// Executes every cell and collects results in declaration order.
    pub fn run(&self, spec: &ExperimentSpec) -> ExperimentResult {
        self.run_journaled(spec, None)
            .expect("journal-free runs perform no I/O")
    }

    /// Executes the spec with optional crash-safe journaling.
    ///
    /// With a [`JournalConfig`], every finished cell is appended to
    /// `<dir>/<name>.journal.jsonl` and fsync'd before it counts as
    /// complete. When `resume` is set and a matching journal exists, its
    /// outcomes are replayed verbatim — replayed cells are *not*
    /// re-executed — and only the remainder runs; the collected result
    /// (tables, JSON) is byte-identical to an uninterrupted run. The
    /// journal is deleted after a complete (non-interrupted) sweep.
    ///
    /// `Err` is returned only for journal I/O that cannot be recovered
    /// (e.g. the results directory is not writable).
    pub fn run_journaled(
        &self,
        spec: &ExperimentSpec,
        journal_cfg: Option<&JournalConfig>,
    ) -> std::io::Result<ExperimentResult> {
        // A worker that panics mid-`lock` poisons the mutex; every cell
        // body already runs under `catch_unwind` (a panic becomes a
        // `Failed` row), so the data behind a poisoned lock is still
        // consistent — recover it instead of letting one bad cell convert
        // the collector's unwrap into a second, sweep-killing panic.
        fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
        let n = spec.cells.len();
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let mut writer: Option<Mutex<journal::JournalWriter>> = None;
        if let Some(jc) = journal_cfg {
            let fingerprint = journal::spec_fingerprint(
                &spec.name,
                spec.cells.iter().map(|c| c.key.as_str()),
                spec.meta.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            );
            let path = journal::journal_path(&jc.dir, &spec.name);
            let mut replayed = false;
            if jc.resume {
                match journal::load(&path, &spec.name, fingerprint) {
                    journal::JournalLoad::Loaded {
                        records,
                        skipped_lines,
                    } => {
                        if skipped_lines > 0 {
                            eprintln!(
                                "journal {}: skipped {skipped_lines} corrupt record(s)",
                                path.display()
                            );
                        }
                        let mut applied = 0usize;
                        for (key, outcome) in records {
                            match spec.keys.get(&key) {
                                Some(&i) => {
                                    *relock(&slots[i]) = Some(outcome);
                                    applied += 1;
                                }
                                None => eprintln!(
                                    "journal {}: ignoring unknown cell {key:?}",
                                    path.display()
                                ),
                            }
                        }
                        eprintln!(
                            "resume: replaying {applied}/{n} journaled cell(s) of {}",
                            spec.name
                        );
                        replayed = true;
                    }
                    journal::JournalLoad::Mismatch => {
                        eprintln!(
                            "journal {}: belongs to a different spec; starting fresh",
                            path.display()
                        );
                    }
                    journal::JournalLoad::CorruptHeader => {
                        eprintln!(
                            "journal {}: corrupt or truncated header; starting fresh",
                            path.display()
                        );
                    }
                    journal::JournalLoad::Missing => {}
                }
            }
            let w = if replayed {
                journal::JournalWriter::append_to(&path)?
            } else {
                journal::JournalWriter::create(&jc.dir, &spec.name, fingerprint)?
            };
            writer = Some(Mutex::new(w));
        }

        let pending: Vec<usize> = (0..n).filter(|&i| relock(&slots[i]).is_none()).collect();
        let next = AtomicUsize::new(0);
        let completions = AtomicUsize::new(0);
        {
            let worker = || loop {
                if self.drain.is_cancelled() {
                    break;
                }
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(k) else {
                    break;
                };
                let cell = &spec.cells[i];
                // One gate per cell: the deadline clock spans every retry
                // and (for prefetch cells) both the record and replay
                // phases.
                let gate = RunGate::new(self.abort.clone(), self.deadline_ms);
                let (outcome, journalable) = execute_cell(cell, spec.retry, &gate, self.gated);
                if journalable {
                    if let Some(w) = &writer {
                        let line = journal::record_line(&cell.key, &outcome);
                        if let Err(e) = relock(w).append(&line) {
                            eprintln!("journal append failed for {}: {e}", cell.key);
                        }
                    }
                }
                *relock(&slots[i]) = Some(outcome);
                let done = completions.fetch_add(1, Ordering::Relaxed) + 1;
                if self.interrupt_after.is_some_and(|limit| done >= limit) {
                    self.drain.cancel();
                }
            };
            let workers = self.jobs.min(pending.len().max(1));
            if workers <= 1 {
                worker();
            } else {
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(worker);
                    }
                });
            }
        }

        let mut interrupted = false;
        let cells: Vec<CellResult> = spec
            .cells
            .iter()
            .zip(slots)
            .map(|(c, slot)| CellResult {
                key: c.key.clone(),
                outcome: slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        interrupted = true;
                        CellOutcome::Skipped
                    }),
            })
            .collect();

        // A complete sweep no longer needs its journal; an interrupted one
        // keeps it so `--resume` can pick up where this run stopped.
        if !interrupted {
            if let Some(jc) = journal_cfg {
                let _ = std::fs::remove_file(journal::journal_path(&jc.dir, &spec.name));
            }
        }

        Ok(ExperimentResult {
            name: spec.name.clone(),
            meta: spec.meta.clone(),
            cells,
            jobs: self.jobs,
            interrupted,
            index: spec.keys.clone(),
        })
    }
}

/// Runs one cell with graceful degradation: typed errors and panics both
/// become failure rows, and budget failures of scalable jobs are retried
/// per the policy. The second return value says whether the outcome is
/// *journalable*: failures caused by an external cancellation (as opposed
/// to an expired per-cell deadline) describe the interrupted process, not
/// the cell, and must re-run on resume.
fn execute_cell(
    cell: &CellSpec,
    retry: RetryPolicy,
    gate: &RunGate,
    gated: bool,
) -> (CellOutcome, bool) {
    let job = &cell.job;
    let attempt = |scale: u64| -> Result<CellData, SimError> {
        match job {
            Job::Single { build, cfg, opts } => {
                let w = build();
                let mut cfg = *cfg;
                cfg.max_cycles = cfg.max_cycles.saturating_mul(scale);
                let mut opts = opts.clone();
                if gated {
                    // Executor-managed gating overrides any gate the spec
                    // put in the cell's RunOptions.
                    opts.gate = gate.clone();
                }
                try_run_single(cfg, &w, &opts).map(|r| CellData::Run(Box::new(r)))
            }
            Job::PrefetchExact {
                build,
                nthreads,
                regs_per_thread,
                fabric,
            } => {
                let w = build();
                try_run_prefetch_exact_gated(*nthreads, *regs_per_thread, &w, *fabric, gate)
                    .map(|r| CellData::Run(Box::new(r)))
            }
            Job::System { cfg, ctor, n } => {
                let mut cfg = *cfg;
                cfg.core.max_cycles = cfg.core.max_cycles.saturating_mul(scale);
                System::new(cfg, *ctor, *n)
                    .try_run_gated(gate)
                    .map(|r| CellData::System(Box::new(r)))
            }
            Job::Custom(f) => f(&CellCtx {
                key: &cell.key,
                gate,
            }),
        }
    };
    let scalable = matches!(job, Job::Single { .. } | Job::System { .. });
    let mut scale = 1u64;
    let mut retried = false;
    let mut retries_left = if scalable { retry.max_retries } else { 0 };
    loop {
        match catch_unwind(AssertUnwindSafe(|| attempt(scale))) {
            Ok(Ok(data)) => return (CellOutcome::Ok(data), true),
            Ok(Err(SimError::CycleBudgetExceeded { .. }))
                if retries_left > 0 && retry.next_scale(scale).is_some() =>
            {
                retries_left -= 1;
                retried = true;
                scale = retry.next_scale(scale).expect("checked in the guard");
            }
            Ok(Err(e)) => {
                let journalable =
                    !matches!(e.root_cause(), SimError::Deadline { .. }) || e.deadline_expired();
                return (
                    CellOutcome::Failed {
                        kind: e.kind(),
                        error: e.to_string(),
                        retried,
                    },
                    journalable,
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("cell panicked");
                return (
                    CellOutcome::Failed {
                        kind: "panic",
                        error: msg.to_string(),
                        retried,
                    },
                    true,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::kernels;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn specs_are_shareable_across_workers() {
        assert_send_sync::<ExperimentSpec>();
        assert_send_sync::<Job>();
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new("unit");
        let b = builder(kernels::spatter::gather, 128, Layout::for_core(0));
        spec.single(
            "gather/virec",
            b.clone(),
            CoreConfig::virec(4, 32),
            &RunOptions::default(),
        );
        spec.single(
            "gather/banked",
            b,
            CoreConfig::banked(4),
            &RunOptions::default(),
        );
        spec.custom("area", |_| {
            Ok(CellData::metrics([("mm2", 1.5), ("cycles", 10.0)]))
        });
        spec
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let spec = tiny_spec();
        let serial = Executor::new(1).run(&spec);
        let parallel = Executor::new(4).run(&spec);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(
            serial.cycles("gather/virec"),
            parallel.cycles("gather/virec")
        );
        assert!(serial.all_ok());
        // Declaration order is preserved.
        let keys: Vec<&str> = parallel.cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["gather/virec", "gather/banked", "area"]);
    }

    #[test]
    fn metrics_cells_expose_named_values() {
        let res = Executor::new(2).run(&tiny_spec());
        assert_eq!(res.metric("area", "mm2"), Some(1.5));
        assert_eq!(res.cycles("area"), Some(10));
        assert_eq!(res.metric("area", "absent"), None);
    }

    #[test]
    fn failing_cell_degrades_without_aborting_siblings() {
        let mut spec = ExperimentSpec::new("unit_fail").with_retry(RetryPolicy {
            max_retries: 1,
            budget_factor: 2,
            ..RetryPolicy::default()
        });
        let b = builder(kernels::spatter::gather, 256, Layout::for_core(0));
        let mut starved = CoreConfig::virec(4, 32);
        starved.max_cycles = 50; // hopeless even at 2x
        spec.single("starved", b.clone(), starved, &RunOptions::default());
        spec.single(
            "healthy",
            b,
            CoreConfig::virec(4, 32),
            &RunOptions::default(),
        );
        spec.custom("panics", |_| panic!("boom"));
        let res = Executor::new(3).run(&spec);
        match &res.cell("starved").outcome {
            CellOutcome::Failed { kind, retried, .. } => {
                assert_eq!(*kind, "cycle_budget");
                assert!(*retried, "budget failures are retried first");
            }
            other => panic!("a 50-cycle budget cannot complete gather: {other:?}"),
        }
        match &res.cell("panics").outcome {
            CellOutcome::Failed { kind, error, .. } => {
                assert_eq!(*kind, "panic");
                assert!(error.contains("boom"));
            }
            other => panic!("panicking cell must fail: {other:?}"),
        }
        assert!(res.run("healthy").is_some(), "siblings must complete");
        assert_eq!(res.failed(), 2);
        assert!(!res.all_ok());
        assert_eq!(res.failures().len(), 2);
    }

    #[test]
    fn retry_policy_none_fails_immediately() {
        let mut spec = ExperimentSpec::new("unit_noretry").with_retry(RetryPolicy::none());
        let b = builder(kernels::spatter::gather, 256, Layout::for_core(0));
        let mut starved = CoreConfig::virec(4, 32);
        starved.max_cycles = 50;
        spec.single("starved", b, starved, &RunOptions::default());
        match &Executor::new(1).run(&spec).cell("starved").outcome {
            CellOutcome::Failed { retried, .. } => {
                assert!(!retried, "RetryPolicy::none must not retry")
            }
            other => panic!("cannot complete in 50 cycles: {other:?}"),
        }
    }

    #[test]
    fn retry_schedule_is_bounded_geometric() {
        let p = RetryPolicy::default();
        assert_eq!(p.next_scale(1), Some(4), "default first retry is 4x");
        assert_eq!(p.next_scale(64), Some(256));
        assert_eq!(p.next_scale(256), None, "the cap exhausts the schedule");
        assert_eq!(RetryPolicy::none().next_scale(1), None);
        let deep = RetryPolicy {
            max_retries: 8,
            budget_factor: 2,
            scale_cap: 16,
        };
        assert_eq!(deep.next_scale(1), Some(2));
        assert_eq!(deep.next_scale(8), Some(16));
        assert_eq!(deep.next_scale(16), None);
    }

    #[test]
    fn interrupt_after_drains_and_marks_skipped() {
        let mut spec = ExperimentSpec::new("unit_drain");
        for k in ["a", "b", "c", "d"] {
            spec.custom(k, |_| Ok(CellData::metrics([("cycles", 1.0)])));
        }
        let res = Executor::new(1).with_interrupt_after(2).run(&spec);
        assert!(res.interrupted);
        assert_eq!(res.skipped(), 2);
        assert!(!res.all_ok());
        assert!(matches!(res.cell("a").outcome, CellOutcome::Ok(_)));
        assert!(matches!(res.cell("d").outcome, CellOutcome::Skipped));
        let js = res.to_json();
        assert_eq!(js.matches("\"status\": \"skipped\"").count(), 2, "{js}");
    }

    #[test]
    #[should_panic(expected = "duplicate experiment cell key")]
    fn duplicate_keys_are_rejected() {
        let mut spec = ExperimentSpec::new("dup");
        spec.custom("k", |_| Ok(CellData::Metrics(Vec::new())));
        spec.custom("k", |_| Ok(CellData::Metrics(Vec::new())));
    }

    #[test]
    fn meta_lands_in_json_header_and_fingerprint() {
        let mut spec = ExperimentSpec::new("meta_unit");
        spec.set_meta("n", 512u64);
        spec.custom("c", |_| Ok(CellData::metrics([("cycles", 1.0)])));
        let js512 = Executor::new(1).run(&spec).to_json();
        assert!(js512.contains("\"meta\": {\"n\": \"512\"}"), "{js512}");
        assert!(js512.contains("\"fingerprint\": \""), "{js512}");

        // set_meta on an existing key replaces the value, and the emitted
        // fingerprint moves with it: files from different problem sizes
        // are distinguishable from their headers alone.
        spec.set_meta("n", 4096u64);
        assert_eq!(spec.meta(), [("n".to_string(), "4096".to_string())]);
        let js4096 = Executor::new(1).run(&spec).to_json();
        assert!(js4096.contains("\"meta\": {\"n\": \"4096\"}"), "{js4096}");
        let fp = |js: &str| {
            js.lines()
                .find(|l| l.contains("\"fingerprint\""))
                .expect("header emits a fingerprint")
                .to_string()
        };
        assert_ne!(fp(&js512), fp(&js4096));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut spec = ExperimentSpec::new("json \"quoted\"");
        spec.custom("fields", |_| {
            Ok(CellData::fields([("desc", "a\"b\\c\nd".to_string())]))
        });
        let res = Executor::new(1).run(&spec);
        let js = res.to_json();
        assert!(
            js.contains("\"experiment\": \"json \\\"quoted\\\"\""),
            "{js}"
        );
        assert!(js.contains("\"desc\": \"a\\\"b\\\\c\\nd\""), "{js}");
        assert!(js.contains("\"status\": \"ok\""));
    }
}
